//! 2-D convolution.

use crate::layer::{Layer, Param};
use rpol_tensor::rng::Pcg32;
use rpol_tensor::scratch::ScratchArena;
use rpol_tensor::{gemm, Tensor};

/// A 2-D convolution with square kernels, symmetric zero padding and a
/// configurable stride. The paper's AMLayer and residual blocks use
/// 3×3 / padding 1 / stride 1 ([`Conv2d::new`]); stride-2 variants
/// ([`Conv2d::with_stride`]) provide ResNet-style downsampling.
///
/// Input `[N, C, H, W]`, weight `[OC, C, K, K]`, bias `[OC]`, output
/// `[N, OC, (H + 2·pad − K)/S + 1, (W + 2·pad − K)/S + 1]`.
///
/// # Examples
///
/// ```
/// use rpol_nn::prelude::*;
/// use rpol_tensor::{rng::Pcg32, Tensor};
///
/// let mut rng = Pcg32::seed_from(0);
/// let mut conv = Conv2d::new(3, 8, 3, 1, &mut rng);
/// let x = Tensor::ones(&[2, 3, 8, 8]);
/// let y = conv.forward(&x, false);
/// assert_eq!(y.shape().dims(), &[2, 8, 8, 8]); // same-size with pad 1
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    kernel: usize,
    pad: usize,
    stride: usize,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with He-normal initialization.
    ///
    /// # Panics
    ///
    /// Panics if any of `in_channels`, `out_channels`, `kernel` is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        pad: usize,
        rng: &mut Pcg32,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0 && kernel > 0,
            "zero-sized convolution"
        );
        let fan_in = in_channels * kernel * kernel;
        let scale = (2.0 / fan_in as f32).sqrt();
        let mut weight = Tensor::randn(&[out_channels, in_channels, kernel, kernel], rng);
        weight.scale(scale);
        Self {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            kernel,
            pad,
            stride: 1,
            cached_input: None,
        }
    }

    /// Creates a strided convolution (He-normal init).
    ///
    /// # Panics
    ///
    /// Panics if any of the dimensions or `stride` is zero.
    pub fn with_stride(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        pad: usize,
        stride: usize,
        rng: &mut Pcg32,
    ) -> Self {
        assert!(stride > 0, "zero stride");
        let mut conv = Self::new(in_channels, out_channels, kernel, pad, rng);
        conv.stride = stride;
        conv
    }

    /// Creates a convolution from explicit weights.
    ///
    /// # Panics
    ///
    /// Panics unless `weight` is rank 4 with square kernel and `bias`
    /// matches the output channel count.
    pub fn from_parts(weight: Tensor, bias: Tensor, pad: usize) -> Self {
        assert_eq!(weight.shape().rank(), 4, "conv weight must be rank 4");
        let kernel = weight.shape().dim(2);
        assert_eq!(weight.shape().dim(3), kernel, "kernel must be square");
        assert_eq!(
            bias.shape().dims(),
            &[weight.shape().dim(0)],
            "bias mismatch"
        );
        Self {
            weight: Param::new(weight),
            bias: Param::new(bias),
            kernel,
            pad,
            stride: 1,
            cached_input: None,
        }
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.weight.value.shape().dim(0)
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.weight.value.shape().dim(1)
    }

    /// Direct access to the weight parameter; RPoL's AMLayer freezes and
    /// spectrally normalizes these weights in place.
    pub fn weight_mut(&mut self) -> &mut Param {
        &mut self.weight
    }

    /// Direct access to the weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.pad - self.kernel) / self.stride + 1;
        let ow = (w + 2 * self.pad - self.kernel) / self.stride + 1;
        (oh, ow)
    }

    /// Forward body shared by the plain and arena entry points. The
    /// convolution is lowered to one GEMM per sample: `im2col` gathers the
    /// receptive fields into a `[C·K·K, OH·OW]` matrix whose row order
    /// `(ci, ky, kx)` matches the tap order of the original loop nest, the
    /// output slab is pre-filled with the bias, and `gemm_into` accumulates
    /// `weight · col` on top — so each output element's reduction chain is
    /// `bias + Σ taps` in the original order. Padded taps contribute
    /// `weight · 0.0`, which is bitwise-invisible to a chain that can never
    /// hold `-0.0`.
    fn forward_with(&mut self, input: &Tensor, train: bool, arena: &mut ScratchArena) -> Tensor {
        assert_eq!(input.shape().rank(), 4, "conv expects [N, C, H, W]");
        let (n, c, h, w) = (
            input.shape().dim(0),
            input.shape().dim(1),
            input.shape().dim(2),
            input.shape().dim(3),
        );
        assert_eq!(c, self.in_channels(), "conv channel mismatch");
        assert!(
            h + 2 * self.pad >= self.kernel && w + 2 * self.pad >= self.kernel,
            "input smaller than kernel"
        );
        if train {
            self.cached_input = Some(input.clone());
        }
        let (oh, ow) = self.out_hw(h, w);
        let oc = self.out_channels();
        let k = self.kernel;
        let (ckk, ohow) = (c * k * k, oh * ow);
        let x = input.data();
        let wgt = self.weight.value.data();
        let bias = self.bias.value.data();
        let threads = gemm::default_threads();
        let mut col = arena.take_zeroed(ckk * ohow);
        let mut out = arena.take_zeroed(n * oc * ohow);
        for ni in 0..n {
            let x_s = &x[ni * c * h * w..][..c * h * w];
            im2col(x_s, c, h, w, oh, ow, k, self.pad, self.stride, &mut col);
            let out_s = &mut out[ni * oc * ohow..][..oc * ohow];
            for (oci, row) in out_s.chunks_exact_mut(ohow).enumerate() {
                row.fill(bias[oci]);
            }
            gemm::gemm_into(
                oc,
                ohow,
                ckk,
                wgt,
                gemm::Trans::No,
                &col,
                gemm::Trans::No,
                out_s,
                threads,
            );
        }
        arena.recycle(col);
        Tensor::from_vec(&[n, oc, oh, ow], out)
    }

    /// Backward body shared by the plain and arena entry points; three
    /// GEMM-shaped products, each arranged to reproduce the original
    /// tap-by-tap accumulation order bitwise:
    ///
    /// * `db[oci]` accumulates `grad_out` element-by-element in
    ///   `(ni, oy, ox)` order, directly into the persistent gradient;
    /// * `dW += g · colᵀ` per sample (samples ascending), with the
    ///   persistent gradient preloaded as C so cross-call accumulation
    ///   keeps the original chain;
    /// * `dx = Wrot · colg` per sample into fresh zeros, where `Wrot` holds
    ///   the 180°-rotated kernels laid out `[C, OC·K·K]` and `colg` gathers
    ///   the stride-dilated, padded gradient — for a fixed input cell the
    ///   original contributions arrive in `(oci ↑, oy ↑, ox ↑)` order,
    ///   which is exactly ascending rotated-tap order.
    ///
    /// Dropping the original `go == 0.0` skip is bitwise-safe: skipped
    /// contributions become `±0.0` adds, and none of these accumulators can
    /// reach `-0.0` (exact cancellation rounds to `+0.0`).
    fn backward_with(&mut self, grad_out: &Tensor, arena: &mut ScratchArena) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("backward before forward on Conv2d");
        let (n, c, h, w) = (
            input.shape().dim(0),
            input.shape().dim(1),
            input.shape().dim(2),
            input.shape().dim(3),
        );
        let (oh, ow) = self.out_hw(h, w);
        let oc = self.out_channels();
        let k = self.kernel;
        assert_eq!(grad_out.shape().dims(), &[n, oc, oh, ow], "grad shape");
        let (ckk, ohow, hw) = (c * k * k, oh * ow, h * w);
        let x = input.data();
        let g = grad_out.data();
        let wgt = self.weight.value.data();
        let dw = self.weight.grad.data_mut();
        let db = self.bias.grad.data_mut();
        let threads = gemm::default_threads();

        // db: element-by-element in (ni, oci, oy, ox) order, matching the
        // original accumulation chain per output channel.
        for ni in 0..n {
            for (oci, dbv) in db.iter_mut().enumerate() {
                for &go in &g[(ni * oc + oci) * ohow..][..ohow] {
                    *dbv += go;
                }
            }
        }

        // Rotated kernels: wrot[ci][(oci·K + kyr)·K + kxr] = w[oci, ci, K−1−kyr, K−1−kxr].
        let mut wrot = arena.take_zeroed(c * oc * k * k);
        for ci in 0..c {
            let dst = &mut wrot[ci * oc * k * k..][..oc * k * k];
            for oci in 0..oc {
                for kyr in 0..k {
                    for kxr in 0..k {
                        dst[(oci * k + kyr) * k + kxr] =
                            wgt[((oci * c + ci) * k + (k - 1 - kyr)) * k + (k - 1 - kxr)];
                    }
                }
            }
        }

        let mut col = arena.take_zeroed(ckk * ohow);
        let mut colg = arena.take_zeroed(oc * k * k * hw);
        let mut dx = arena.take_zeroed(n * c * hw);
        for ni in 0..n {
            let x_s = &x[ni * c * hw..][..c * hw];
            let g_s = &g[ni * oc * ohow..][..oc * ohow];
            // dW += g_s · colᵀ, preloading the persistent gradient.
            im2col(x_s, c, h, w, oh, ow, k, self.pad, self.stride, &mut col);
            gemm::gemm_into(
                oc,
                ckk,
                ohow,
                g_s,
                gemm::Trans::No,
                &col,
                gemm::Trans::Yes,
                dw,
                threads,
            );
            // dx_s = Wrot · colg into fresh zeros.
            im2col_grad(g_s, oc, oh, ow, h, w, k, self.pad, self.stride, &mut colg);
            let dx_s = &mut dx[ni * c * hw..][..c * hw];
            gemm::gemm_into(
                c,
                hw,
                oc * k * k,
                &wrot,
                gemm::Trans::No,
                &colg,
                gemm::Trans::No,
                dx_s,
                threads,
            );
        }
        arena.recycle(wrot);
        arena.recycle(col);
        arena.recycle(colg);
        self.cached_input = Some(input);
        Tensor::from_vec(&[n, c, h, w], dx)
    }
}

/// Gathers the receptive fields of one `[C, H, W]` sample into
/// `col[(ci·K + ky)·K + kx][oy·OW + ox]`. Only in-bounds taps are written;
/// the caller provides a zeroed buffer and the valid-tap set depends only
/// on geometry, so the buffer can be reused across samples.
#[allow(clippy::too_many_arguments)]
fn im2col(
    x: &[f32],
    c: usize,
    h: usize,
    w: usize,
    oh: usize,
    ow: usize,
    k: usize,
    pad: usize,
    stride: usize,
    col: &mut [f32],
) {
    let ohow = oh * ow;
    for ci in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = &mut col[((ci * k + ky) * k + kx) * ohow..][..ohow];
                for oy in 0..oh {
                    let iy = oy * stride + ky;
                    if iy < pad || iy >= h + pad {
                        continue;
                    }
                    let xrow = (ci * h + (iy - pad)) * w;
                    let dst = &mut row[oy * ow..][..ow];
                    for (ox, d) in dst.iter_mut().enumerate() {
                        let ix = ox * stride + kx;
                        if ix < pad || ix >= w + pad {
                            continue;
                        }
                        *d = x[xrow + ix - pad];
                    }
                }
            }
        }
    }
}

/// Gathers one sample's output gradient `[OC, OH, OW]` into the
/// stride-dilated, padded form `colg[(oci·K + kyr)·K + kxr][iy·W + ix]`
/// used by the input-gradient GEMM: entry `(p', r)` holds
/// `g[oci, oy, ox]` when the rotated tap `(K−1−kyr, K−1−kxr)` at input
/// cell `(iy, ix)` maps onto a valid output cell, else stays zero. Valid
/// positions depend only on geometry, so the caller's zeroed buffer can be
/// reused across samples.
#[allow(clippy::too_many_arguments)]
fn im2col_grad(
    g: &[f32],
    oc: usize,
    oh: usize,
    ow: usize,
    h: usize,
    w: usize,
    k: usize,
    pad: usize,
    stride: usize,
    colg: &mut [f32],
) {
    let hw = h * w;
    for oci in 0..oc {
        for kyr in 0..k {
            let ky = k - 1 - kyr;
            for kxr in 0..k {
                let kx = k - 1 - kxr;
                let row = &mut colg[((oci * k + kyr) * k + kxr) * hw..][..hw];
                for iy in 0..h {
                    let t = iy + pad;
                    if t < ky || !(t - ky).is_multiple_of(stride) {
                        continue;
                    }
                    let oy = (t - ky) / stride;
                    if oy >= oh {
                        continue;
                    }
                    let grow = (oci * oh + oy) * ow;
                    let dst = &mut row[iy * w..][..w];
                    for (ix, d) in dst.iter_mut().enumerate() {
                        let u = ix + pad;
                        if u < kx || !(u - kx).is_multiple_of(stride) {
                            continue;
                        }
                        let ox = (u - kx) / stride;
                        if ox >= ow {
                            continue;
                        }
                        *d = g[grow + ox];
                    }
                }
            }
        }
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut arena = ScratchArena::new();
        self.forward_with(input, train, &mut arena)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut arena = ScratchArena::new();
        self.backward_with(grad_out, &mut arena)
    }

    fn forward_scratch(&mut self, input: &Tensor, train: bool, arena: &mut ScratchArena) -> Tensor {
        self.forward_with(input, train, arena)
    }

    fn backward_scratch(&mut self, grad_out: &Tensor, arena: &mut ScratchArena) -> Tensor {
        self.backward_with(grad_out, arena)
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.weight);
        f(&self.bias);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_passthrough() {
        // 1x1 kernel with weight 1: output == input per channel.
        let weight = Tensor::ones(&[1, 1, 1, 1]);
        let bias = Tensor::zeros(&[1]);
        let mut conv = Conv2d::from_parts(weight, bias, 0);
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1., 2., 3., 4.]);
        let y = conv.forward(&x, false);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_3x3_sum_kernel() {
        // All-ones 3x3 kernel with pad 1 computes neighbourhood sums.
        let weight = Tensor::ones(&[1, 1, 3, 3]);
        let bias = Tensor::zeros(&[1]);
        let mut conv = Conv2d::from_parts(weight, bias, 1);
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let y = conv.forward(&x, false);
        // Corners see 4 neighbours, edges 6, center 9.
        assert_eq!(y.data(), &[4., 6., 4., 6., 9., 6., 4., 6., 4.]);
    }

    #[test]
    fn shape_with_padding() {
        let mut rng = Pcg32::seed_from(0);
        let mut conv = Conv2d::new(3, 5, 3, 1, &mut rng);
        let x = Tensor::ones(&[2, 3, 8, 8]);
        assert_eq!(conv.forward(&x, false).shape().dims(), &[2, 5, 8, 8]);
        let mut conv0 = Conv2d::new(3, 5, 3, 0, &mut rng);
        assert_eq!(conv0.forward(&x, false).shape().dims(), &[2, 5, 6, 6]);
    }

    #[test]
    fn gradient_check() {
        let mut rng = Pcg32::seed_from(7);
        let mut conv = Conv2d::new(2, 3, 3, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 4, 4], &mut rng);
        let y = conv.forward(&x, true);
        let grad_out = y.map(|v| 2.0 * v);
        conv.zero_grads();
        let dx = conv.backward(&grad_out);

        let eps = 1e-2f32;
        let loss = |c: &mut Conv2d, xv: &Tensor| -> f32 {
            c.forward(xv, false).data().iter().map(|v| v * v).sum()
        };

        // Input gradient at a few coordinates.
        for idx in [0usize, 5, 17, 31] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let numeric = (loss(&mut conv, &xp) - loss(&mut conv, &xm)) / (2.0 * eps);
            let got = dx.data()[idx];
            assert!(
                (numeric - got).abs() < 0.05 * numeric.abs().max(1.0),
                "dx[{idx}]: numeric {numeric} vs analytic {got}"
            );
        }

        // Weight gradient at a few coordinates.
        let mut analytic = Vec::new();
        conv.visit_params(&mut |p| analytic.push(p.grad.clone()));
        for idx in [0usize, 9, 26] {
            let mut plus = conv.clone();
            plus.weight_mut().value.data_mut()[idx] += eps;
            let mut minus = conv.clone();
            minus.weight_mut().value.data_mut()[idx] -= eps;
            let numeric = (loss(&mut plus, &x) - loss(&mut minus, &x)) / (2.0 * eps);
            let got = analytic[0].data()[idx];
            assert!(
                (numeric - got).abs() < 0.05 * numeric.abs().max(1.0),
                "dw[{idx}]: numeric {numeric} vs analytic {got}"
            );
        }
    }

    #[test]
    fn param_count() {
        let mut rng = Pcg32::seed_from(0);
        let conv = Conv2d::new(3, 8, 3, 1, &mut rng);
        assert_eq!(conv.param_count(), 3 * 8 * 9 + 8);
    }

    #[test]
    fn stride_halves_spatial_dims() {
        let mut rng = Pcg32::seed_from(1);
        let mut conv = Conv2d::with_stride(3, 6, 3, 1, 2, &mut rng);
        let x = Tensor::ones(&[1, 3, 8, 8]);
        assert_eq!(conv.forward(&x, false).shape().dims(), &[1, 6, 4, 4]);
    }

    #[test]
    fn stride_2_subsamples_stride_1_outputs() {
        // A stride-2 conv output equals the stride-1 output sampled at
        // every other position.
        let mut rng = Pcg32::seed_from(2);
        let mut s1 = Conv2d::new(2, 3, 3, 1, &mut rng);
        let mut s2 = s1.clone();
        s2.stride = 2;
        let x = Tensor::randn(&[1, 2, 6, 6], &mut rng);
        let y1 = s1.forward(&x, false);
        let y2 = s2.forward(&x, false);
        for oc in 0..3 {
            for oy in 0..3 {
                for ox in 0..3 {
                    assert_eq!(
                        y2.at(&[0, oc, oy, ox]),
                        y1.at(&[0, oc, 2 * oy, 2 * ox]),
                        "({oc},{oy},{ox})"
                    );
                }
            }
        }
    }

    #[test]
    fn strided_gradient_check() {
        let mut rng = Pcg32::seed_from(9);
        let mut conv = Conv2d::with_stride(2, 2, 3, 1, 2, &mut rng);
        let x = Tensor::randn(&[1, 2, 6, 6], &mut rng);
        let y = conv.forward(&x, true);
        let grad_out = y.map(|v| 2.0 * v);
        conv.zero_grads();
        let dx = conv.backward(&grad_out);
        let eps = 1e-2f32;
        let loss = |c: &mut Conv2d, xv: &Tensor| -> f32 {
            c.forward(xv, false).data().iter().map(|v| v * v).sum()
        };
        for idx in [0usize, 13, 31, 50, 71] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let numeric = (loss(&mut conv, &xp) - loss(&mut conv, &xm)) / (2.0 * eps);
            let got = dx.data()[idx];
            assert!(
                (numeric - got).abs() < 0.05 * numeric.abs().max(1.0),
                "dx[{idx}]: numeric {numeric} vs analytic {got}"
            );
        }
    }
}
