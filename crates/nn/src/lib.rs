//! From-scratch deep-learning substrate for the RPoL reproduction.
//!
//! The paper trains PyTorch ResNets on CIFAR; this crate provides the
//! minimal equivalent needed to exercise RPoL's protocol end-to-end on a
//! CPU: explicit-gradient layers (no autograd), the four optimizers the
//! paper evaluates (SGD, SGDM, RMSprop, Adam), softmax cross-entropy, and
//! seeded synthetic image datasets standing in for CIFAR-10/100.
//!
//! Everything is deterministic given its seeds — a hard requirement, since
//! RPoL's verifier must be able to *replay* a training step bit-for-bit
//! (reproduction error is then injected explicitly by `rpol-sim`, never by
//! accident).
//!
//! # Examples
//!
//! Train a tiny classifier for a few steps:
//!
//! ```
//! use rpol_nn::prelude::*;
//! use rpol_tensor::rng::Pcg32;
//!
//! let mut rng = Pcg32::seed_from(0);
//! let data = SyntheticImages::generate(&ImageSpec::tiny(), 64, &mut rng);
//! let mut model = Sequential::new(vec![
//!     Box::new(Flatten::new()),
//!     Box::new(Dense::new(data.spec().pixel_count(), 16, &mut rng)),
//!     Box::new(Relu::new()),
//!     Box::new(Dense::new(16, data.spec().classes, &mut rng)),
//! ]);
//! let mut opt = Sgd::new(0.1);
//! let (x, y) = data.batch(&[0, 1, 2, 3]);
//! let logits = model.forward(&x, true);
//! let (loss, grad) = softmax_cross_entropy(&logits, &y);
//! assert!(loss > 0.0);
//! model.backward(&grad);
//! model.step(&mut opt);
//! ```

pub mod activation;
pub mod conv;
pub mod data;
pub mod dense;
pub mod dropout;
pub mod layer;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod norm;
pub mod optim;
pub mod pool;
pub mod residual;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::activation::{Relu, Tanh};
    pub use crate::conv::Conv2d;
    pub use crate::data::{ImageSpec, SyntheticImages};
    pub use crate::dense::Dense;
    pub use crate::dropout::Dropout;
    pub use crate::layer::{Flatten, Layer, Param};
    pub use crate::loss::{mse, softmax_cross_entropy};
    pub use crate::metrics::accuracy;
    pub use crate::model::Sequential;
    pub use crate::optim::{Adam, Optimizer, RmsProp, Sgd, SgdMomentum};
    pub use crate::pool::{AvgPool2, GlobalAvgPool, MaxPool2};
    pub use crate::residual::Residual;
}
