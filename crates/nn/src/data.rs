//! Synthetic image datasets standing in for CIFAR-10/100 (see DESIGN.md).
//!
//! The paper's datasets matter to the protocol in exactly two ways: they
//! provide (a) i.i.d. sub-datasets for pool workers and the manager's
//! calibration shard, and (b) a learnable signal so accuracy curves are
//! meaningful. `SyntheticImages` reproduces both: each class is a Gaussian
//! cluster around a seeded class prototype "image", optionally passed
//! through a mild nonlinearity so linear models cannot saturate instantly.

use rpol_tensor::rng::Pcg32;
use rpol_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Geometry and difficulty of a synthetic image dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImageSpec {
    /// Number of classes (10 for the CIFAR-10 stand-in, 20 for the
    /// CIFAR-100 stand-in scaled to CPU budgets).
    pub classes: usize,
    /// Channels (CIFAR: 3).
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Within-class noise standard deviation; larger is harder.
    pub noise: f32,
    /// Seed for class prototypes — tasks with the same seed share the same
    /// underlying distribution, so shards drawn with different RNGs are
    /// i.i.d. in the paper's sense.
    pub task_seed: u64,
}

impl ImageSpec {
    /// The "CIFAR-10-like" task used by most experiments: 10 classes of
    /// 3×8×8 images (CIFAR geometry scaled down 4× for CPU training).
    /// Noise is tuned so a mini-ResNet plateaus around the paper's
    /// CIFAR-10 accuracy band rather than saturating instantly.
    pub fn cifar10_like() -> Self {
        Self {
            classes: 10,
            channels: 3,
            height: 8,
            width: 8,
            noise: 2.5,
            task_seed: 0xC1FA_0010,
        }
    }

    /// The "CIFAR-100-like" task: more classes, same geometry, harder.
    pub fn cifar100_like() -> Self {
        Self {
            classes: 20,
            channels: 3,
            height: 8,
            width: 8,
            noise: 3.2,
            task_seed: 0xC1FA_0100,
        }
    }

    /// A minimal spec for fast unit tests and doc examples.
    pub fn tiny() -> Self {
        Self {
            classes: 4,
            channels: 1,
            height: 4,
            width: 4,
            noise: 0.3,
            task_seed: 7,
        }
    }

    /// Pixels per image (`channels · height · width`).
    pub fn pixel_count(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Validates the spec.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions or non-positive noise.
    pub fn validate(&self) {
        assert!(self.classes > 1, "need at least 2 classes");
        assert!(
            self.channels > 0 && self.height > 0 && self.width > 0,
            "zero-sized images"
        );
        assert!(self.noise > 0.0 && self.noise.is_finite(), "invalid noise");
    }
}

/// A labelled synthetic image dataset.
///
/// # Examples
///
/// ```
/// use rpol_nn::data::{ImageSpec, SyntheticImages};
/// use rpol_tensor::rng::Pcg32;
///
/// let mut rng = Pcg32::seed_from(1);
/// let data = SyntheticImages::generate(&ImageSpec::tiny(), 40, &mut rng);
/// assert_eq!(data.len(), 40);
/// let shards = data.shard(4);
/// assert!(shards.iter().all(|s| s.len() == 10));
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticImages {
    spec: ImageSpec,
    /// Flattened images, one row of `pixel_count` floats each.
    images: Vec<Vec<f32>>,
    labels: Vec<usize>,
}

impl SyntheticImages {
    /// Generates `n` samples with labels cycling through the classes, then
    /// shuffled with `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the spec is invalid.
    pub fn generate(spec: &ImageSpec, n: usize, rng: &mut Pcg32) -> Self {
        spec.validate();
        assert!(n > 0, "empty dataset");
        // Class prototypes from the task seed: every shard of the same task
        // sees the same class structure (i.i.d. shards).
        let mut proto_rng = Pcg32::seed_from(spec.task_seed);
        let pixels = spec.pixel_count();
        let prototypes: Vec<Vec<f32>> = (0..spec.classes)
            .map(|_| (0..pixels).map(|_| proto_rng.next_normal() * 1.5).collect())
            .collect();

        let mut images = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % spec.classes;
            let proto = &prototypes[label];
            let img: Vec<f32> = proto
                .iter()
                .map(|&p| {
                    let raw = p + rng.next_normal() * spec.noise;
                    // Mild nonlinearity keeps the task from being linearly
                    // separable at zero effort.
                    raw.tanh() + 0.1 * raw
                })
                .collect();
            images.push(img);
            labels.push(label);
        }
        // Shuffle sample order (labels follow their images).
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        let images = order.iter().map(|&i| images[i].clone()).collect();
        let labels = order.iter().map(|&i| labels[i]).collect();
        Self {
            spec: *spec,
            images,
            labels,
        }
    }

    /// The dataset's spec.
    pub fn spec(&self) -> &ImageSpec {
        &self.spec
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the dataset is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// The label of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Assembles a batch `[B, C, H, W]` plus labels from sample indices.
    /// Indices may repeat (sampling with replacement).
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or any index is out of range.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        assert!(!indices.is_empty(), "empty batch");
        let spec = &self.spec;
        let pixels = spec.pixel_count();
        let mut data = Vec::with_capacity(indices.len() * pixels);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "sample index {i} out of range");
            data.extend_from_slice(&self.images[i]);
            labels.push(self.labels[i]);
        }
        (
            Tensor::from_vec(
                &[indices.len(), spec.channels, spec.height, spec.width],
                data,
            ),
            labels,
        )
    }

    /// The whole dataset as one batch (for evaluation).
    pub fn full_batch(&self) -> (Tensor, Vec<usize>) {
        let indices: Vec<usize> = (0..self.len()).collect();
        self.batch(&indices)
    }

    /// Splits into `n` equal contiguous shards — the manager's "randomly
    /// shuffle, then divide equally" (§III-A). Samples are already
    /// shuffled, so contiguous shards are i.i.d.; a trailing remainder of
    /// fewer than `n` samples is dropped to keep shards equal.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or there are fewer than `n` samples.
    pub fn shard(&self, n: usize) -> Vec<SyntheticImages> {
        assert!(n > 0, "need at least one shard");
        assert!(self.len() >= n, "fewer samples than shards");
        let per = self.len() / n;
        (0..n)
            .map(|s| SyntheticImages {
                spec: self.spec,
                images: self.images[s * per..(s + 1) * per].to_vec(),
                labels: self.labels[s * per..(s + 1) * per].to_vec(),
            })
            .collect()
    }

    /// Splits off the last `count` samples as a held-out set, returning
    /// `(train, test)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < count < len`.
    pub fn split_off(&self, count: usize) -> (SyntheticImages, SyntheticImages) {
        assert!(count > 0 && count < self.len(), "invalid split size");
        let cut = self.len() - count;
        (
            SyntheticImages {
                spec: self.spec,
                images: self.images[..cut].to_vec(),
                labels: self.labels[..cut].to_vec(),
            },
            SyntheticImages {
                spec: self.spec,
                images: self.images[cut..].to_vec(),
                labels: self.labels[cut..].to_vec(),
            },
        )
    }

    /// Dataset size in bytes as raw `f32` pixels (for storage accounting).
    pub fn byte_size(&self) -> usize {
        self.len() * self.spec.pixel_count() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_seeded() {
        let spec = ImageSpec::tiny();
        let a = SyntheticImages::generate(&spec, 20, &mut Pcg32::seed_from(1));
        let b = SyntheticImages::generate(&spec, 20, &mut Pcg32::seed_from(1));
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.images[0], b.images[0]);
        let c = SyntheticImages::generate(&spec, 20, &mut Pcg32::seed_from(2));
        assert_ne!(a.images[0], c.images[0]);
    }

    #[test]
    fn labels_cover_all_classes() {
        let spec = ImageSpec::cifar10_like();
        let data = SyntheticImages::generate(&spec, 100, &mut Pcg32::seed_from(3));
        let mut seen = vec![false; spec.classes];
        for &l in data.labels() {
            seen[l] = true;
        }
        assert!(seen.iter().all(|&s| s), "missing classes");
    }

    #[test]
    fn batch_geometry() {
        let spec = ImageSpec::tiny();
        let data = SyntheticImages::generate(&spec, 16, &mut Pcg32::seed_from(4));
        let (x, y) = data.batch(&[0, 5, 5, 9]);
        assert_eq!(x.shape().dims(), &[4, 1, 4, 4]);
        assert_eq!(y.len(), 4);
        assert_eq!(y[1], y[2]);
    }

    #[test]
    fn shards_are_equal_and_disjoint() {
        let spec = ImageSpec::tiny();
        let data = SyntheticImages::generate(&spec, 103, &mut Pcg32::seed_from(5));
        let shards = data.shard(5);
        assert_eq!(shards.len(), 5);
        assert!(shards.iter().all(|s| s.len() == 20));
        // Disjoint: first images differ across shards with high probability.
        for i in 0..5 {
            for j in i + 1..5 {
                assert_ne!(shards[i].images[0], shards[j].images[0]);
            }
        }
    }

    #[test]
    fn shards_have_similar_class_balance() {
        let spec = ImageSpec::cifar10_like();
        let data = SyntheticImages::generate(&spec, 1000, &mut Pcg32::seed_from(6));
        for shard in data.shard(5) {
            for class in 0..spec.classes {
                let count = shard.labels().iter().filter(|&&l| l == class).count();
                // 20 expected per class per 200-sample shard.
                assert!((8..=35).contains(&count), "class {class}: {count}");
            }
        }
    }

    #[test]
    fn split_off_sizes() {
        let spec = ImageSpec::tiny();
        let data = SyntheticImages::generate(&spec, 50, &mut Pcg32::seed_from(7));
        let (train, test) = data.split_off(10);
        assert_eq!(train.len(), 40);
        assert_eq!(test.len(), 10);
    }

    #[test]
    fn same_task_seed_same_distribution() {
        // Two independently generated datasets of the same task must share
        // class prototypes: per-class means should be close.
        let spec = ImageSpec::tiny();
        let a = SyntheticImages::generate(&spec, 400, &mut Pcg32::seed_from(8));
        let b = SyntheticImages::generate(&spec, 400, &mut Pcg32::seed_from(9));
        let class_mean = |d: &SyntheticImages, class: usize| -> f32 {
            let rows: Vec<&Vec<f32>> = d
                .images
                .iter()
                .zip(d.labels())
                .filter(|(_, &l)| l == class)
                .map(|(img, _)| img)
                .collect();
            rows.iter().map(|r| r[0]).sum::<f32>() / rows.len() as f32
        };
        for class in 0..spec.classes {
            let (ma, mb) = (class_mean(&a, class), class_mean(&b, class));
            assert!((ma - mb).abs() < 0.3, "class {class}: {ma} vs {mb}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_batch_index_rejected() {
        let data = SyntheticImages::generate(&ImageSpec::tiny(), 4, &mut Pcg32::seed_from(0));
        data.batch(&[4]);
    }
}
