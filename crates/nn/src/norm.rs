//! Layer normalization.
//!
//! Real ResNets use BatchNorm, but BatchNorm keeps *running statistics*
//! that mutate outside the parameter vector — state that RPoL's
//! checkpoint-replay verification cannot bind or reproduce. LayerNorm is
//! the replay-friendly alternative: it normalizes each sample's features
//! on the fly (stateless) with learnable gain and bias, so a checkpoint's
//! flat weight vector fully determines the computation.

use crate::layer::{Layer, Param};
use rpol_tensor::Tensor;

/// Per-sample layer normalization over the feature dimension of `[N, F]`
/// inputs, with learnable elementwise gain `γ` and bias `β`.
///
/// # Examples
///
/// ```
/// use rpol_nn::norm::LayerNorm;
/// use rpol_nn::layer::Layer;
/// use rpol_tensor::Tensor;
///
/// let mut ln = LayerNorm::new(4);
/// let x = Tensor::from_vec(&[1, 4], vec![1.0, 2.0, 3.0, 4.0]);
/// let y = ln.forward(&x, false);
/// // Unit gain / zero bias: output is standardized.
/// assert!(y.mean().abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gain: Param,
    bias: Param,
    eps: f32,
    /// Cached `(input, mean, inv_std)` per row for backward.
    cache: Option<(Tensor, Vec<f32>, Vec<f32>)>,
}

impl LayerNorm {
    /// Creates a LayerNorm over `features`-wide rows (γ = 1, β = 0).
    ///
    /// # Panics
    ///
    /// Panics if `features == 0`.
    pub fn new(features: usize) -> Self {
        assert!(features > 0, "zero-width LayerNorm");
        Self {
            gain: Param::new(Tensor::ones(&[features])),
            bias: Param::new(Tensor::zeros(&[features])),
            eps: 1e-5,
            cache: None,
        }
    }

    /// Feature width.
    pub fn features(&self) -> usize {
        self.gain.value.len()
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.shape().rank(), 2, "LayerNorm expects [N, F]");
        let (n, f) = (input.shape().dim(0), input.shape().dim(1));
        assert_eq!(f, self.features(), "feature width mismatch");
        let x = input.data();
        let gain = self.gain.value.data();
        let bias = self.bias.value.data();
        let mut out = vec![0.0f32; n * f];
        let mut means = Vec::with_capacity(n);
        let mut inv_stds = Vec::with_capacity(n);
        for i in 0..n {
            let row = &x[i * f..(i + 1) * f];
            let mean = row.iter().sum::<f32>() / f as f32;
            let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / f as f32;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            for j in 0..f {
                out[i * f + j] = (row[j] - mean) * inv_std * gain[j] + bias[j];
            }
            means.push(mean);
            inv_stds.push(inv_std);
        }
        if train {
            self.cache = Some((input.clone(), means, inv_stds));
        }
        Tensor::from_vec(&[n, f], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (input, means, inv_stds) = self
            .cache
            .as_ref()
            .expect("backward before forward on LayerNorm");
        let (n, f) = (input.shape().dim(0), input.shape().dim(1));
        let x = input.data();
        let g = grad_out.data();
        let gain = self.gain.value.data();
        let dgain = self.gain.grad.data_mut();
        let dbias = self.bias.grad.data_mut();
        let mut dx = vec![0.0f32; n * f];
        for i in 0..n {
            let mean = means[i];
            let inv_std = inv_stds[i];
            let row = &x[i * f..(i + 1) * f];
            let grow = &g[i * f..(i + 1) * f];
            // x̂_j and the two reduction terms of the LayerNorm gradient.
            let mut sum_gy = 0.0f32;
            let mut sum_gy_xhat = 0.0f32;
            for j in 0..f {
                let xhat = (row[j] - mean) * inv_std;
                let gy = grow[j] * gain[j];
                sum_gy += gy;
                sum_gy_xhat += gy * xhat;
                dgain[j] += grow[j] * xhat;
                dbias[j] += grow[j];
            }
            for j in 0..f {
                let xhat = (row[j] - mean) * inv_std;
                let gy = grow[j] * gain[j];
                dx[i * f + j] = inv_std * (gy - sum_gy / f as f32 - xhat * sum_gy_xhat / f as f32);
            }
        }
        Tensor::from_vec(&[n, f], dx)
    }

    fn visit_params(&self, func: &mut dyn FnMut(&Param)) {
        func(&self.gain);
        func(&self.bias);
    }

    fn visit_params_mut(&mut self, func: &mut dyn FnMut(&mut Param)) {
        func(&mut self.gain);
        func(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpol_tensor::rng::Pcg32;

    #[test]
    fn output_standardized_with_identity_params() {
        let mut ln = LayerNorm::new(8);
        let mut rng = Pcg32::seed_from(1);
        let x = Tensor::randn(&[4, 8], &mut rng);
        let y = ln.forward(&x, false);
        for i in 0..4 {
            let row = &y.data()[i * 8..(i + 1) * 8];
            let mean = row.iter().sum::<f32>() / 8.0;
            let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-5, "row {i} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {i} var {var}");
        }
    }

    #[test]
    fn shift_and_scale_invariance() {
        // LayerNorm(a·x + b) == LayerNorm(x) for scalar a > 0, b.
        let mut ln = LayerNorm::new(6);
        let x = Tensor::from_vec(&[1, 6], vec![1., 2., 3., 4., 5., 6.]);
        let x2 = x.map(|v| 3.0 * v + 7.0);
        let y1 = ln.forward(&x, false);
        let y2 = ln.forward(&x2, false);
        for (a, b) in y1.data().iter().zip(y2.data()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn gradient_check() {
        let mut ln = LayerNorm::new(5);
        let mut rng = Pcg32::seed_from(3);
        // Non-identity params to exercise all gradient paths.
        ln.gain.value = Tensor::rand_uniform(&[5], 0.5, 1.5, &mut rng);
        ln.bias.value = Tensor::rand_uniform(&[5], -0.5, 0.5, &mut rng);
        let x = Tensor::randn(&[2, 5], &mut rng);
        let y = ln.forward(&x, true);
        let grad_out = y.map(|v| 2.0 * v);
        ln.zero_grads();
        let dx = ln.backward(&grad_out);

        let eps = 1e-3f32;
        let loss = |l: &mut LayerNorm, xv: &Tensor| -> f32 {
            l.forward(xv, false).data().iter().map(|v| v * v).sum()
        };
        for idx in [0usize, 3, 7, 9] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let numeric = (loss(&mut ln, &xp) - loss(&mut ln, &xm)) / (2.0 * eps);
            let got = dx.data()[idx];
            assert!(
                (numeric - got).abs() < 0.05 * numeric.abs().max(0.5),
                "dx[{idx}]: numeric {numeric} vs analytic {got}"
            );
        }
        // Gain gradient check at one coordinate.
        let mut analytic = Vec::new();
        ln.visit_params(&mut |p| analytic.push(p.grad.clone()));
        let mut plus = ln.clone();
        plus.gain.value.data_mut()[2] += eps;
        let mut minus = ln.clone();
        minus.gain.value.data_mut()[2] -= eps;
        let numeric = (loss(&mut plus, &x) - loss(&mut minus, &x)) / (2.0 * eps);
        assert!(
            (numeric - analytic[0].data()[2]).abs() < 0.05 * numeric.abs().max(0.5),
            "dgain: {numeric} vs {}",
            analytic[0].data()[2]
        );
    }

    #[test]
    fn param_count_is_two_f() {
        let ln = LayerNorm::new(16);
        assert_eq!(ln.param_count(), 32);
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn width_checked() {
        LayerNorm::new(4).forward(&Tensor::ones(&[1, 5]), false);
    }
}
