//! Property-based numeric gradient checks: for random layer shapes,
//! weights and inputs, analytic backward passes must agree with central
//! finite differences on the scalar loss `L = Σ y²`.

use proptest::prelude::*;
use rpol_nn::activation::{Relu, Tanh};
use rpol_nn::conv::Conv2d;
use rpol_nn::dense::Dense;
use rpol_nn::layer::Layer;
use rpol_nn::norm::LayerNorm;
use rpol_nn::residual::Residual;
use rpol_tensor::rng::Pcg32;
use rpol_tensor::Tensor;

const EPS: f32 = 1e-2;

/// Central-difference input-gradient check at a few coordinates.
fn check_input_gradient(layer: &mut dyn Layer, x: &Tensor, tolerance: f32) -> Result<(), String> {
    let y = layer.forward(x, true);
    let grad_out = y.map(|v| 2.0 * v);
    layer.zero_grads();
    let dx = layer.backward(&grad_out);

    let loss = |l: &mut dyn Layer, xv: &Tensor| -> f32 {
        l.forward(xv, false).data().iter().map(|v| v * v).sum()
    };
    let stride = (x.len() / 5).max(1);
    for idx in (0..x.len()).step_by(stride) {
        let mut xp = x.clone();
        xp.data_mut()[idx] += EPS;
        let mut xm = x.clone();
        xm.data_mut()[idx] -= EPS;
        let numeric = (loss(layer, &xp) - loss(layer, &xm)) / (2.0 * EPS);
        let got = dx.data()[idx];
        let scale = numeric.abs().max(1.0);
        if (numeric - got).abs() > tolerance * scale {
            return Err(format!(
                "input grad mismatch at {idx}: numeric {numeric} vs analytic {got}"
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dense_gradients(
        seed in any::<u64>(),
        in_f in 2usize..8,
        out_f in 2usize..8,
        batch in 1usize..4
    ) {
        let mut rng = Pcg32::seed_from(seed);
        let mut layer = Dense::new(in_f, out_f, &mut rng);
        let x = Tensor::randn(&[batch, in_f], &mut rng);
        check_input_gradient(&mut layer, &x, 0.05).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn conv_gradients(
        seed in any::<u64>(),
        channels in 1usize..3,
        out_ch in 1usize..3,
        hw in 3usize..6
    ) {
        let mut rng = Pcg32::seed_from(seed);
        let mut layer = Conv2d::new(channels, out_ch, 3, 1, &mut rng);
        let x = Tensor::randn(&[1, channels, hw, hw], &mut rng);
        check_input_gradient(&mut layer, &x, 0.08).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn layernorm_gradients(seed in any::<u64>(), features in 2usize..10, batch in 1usize..4) {
        let mut rng = Pcg32::seed_from(seed);
        let mut layer = LayerNorm::new(features);
        let x = Tensor::randn(&[batch, features], &mut rng);
        check_input_gradient(&mut layer, &x, 0.08).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn residual_dense_gradients(seed in any::<u64>(), width in 2usize..8, batch in 1usize..4) {
        let mut rng = Pcg32::seed_from(seed);
        let mut layer = Residual::new(Box::new(Dense::new(width, width, &mut rng)));
        let x = Tensor::randn(&[batch, width], &mut rng);
        check_input_gradient(&mut layer, &x, 0.05).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn tanh_gradients(seed in any::<u64>(), width in 1usize..16) {
        let mut rng = Pcg32::seed_from(seed);
        let mut layer = Tanh::new();
        let x = Tensor::randn(&[1, width], &mut rng);
        check_input_gradient(&mut layer, &x, 0.05).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn relu_gradients_away_from_kink(seed in any::<u64>(), width in 1usize..16) {
        let mut rng = Pcg32::seed_from(seed);
        let mut layer = Relu::new();
        // Keep inputs away from the non-differentiable point at 0 so the
        // finite difference is valid.
        let x = Tensor::randn(&[1, width], &mut rng)
            .map(|v| if v.abs() < 0.1 { v.signum() * 0.5 } else { v });
        check_input_gradient(&mut layer, &x, 0.05).map_err(TestCaseError::fail)?;
    }
}
