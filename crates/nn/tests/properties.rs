//! Property-based tests for the neural-network substrate.

use proptest::prelude::*;
use rpol_nn::prelude::*;
use rpol_tensor::rng::Pcg32;
use rpol_tensor::Tensor;

fn small_model(seed: u64) -> Sequential {
    let mut rng = Pcg32::seed_from(seed);
    Sequential::new(vec![
        Box::new(Dense::new(6, 10, &mut rng)),
        Box::new(Relu::new()),
        Box::new(Dense::new(10, 4, &mut rng)),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn flatten_load_roundtrip_preserves_forward(seed1 in any::<u64>(), seed2 in any::<u64>()) {
        let mut m1 = small_model(seed1);
        let mut m2 = small_model(seed2);
        m2.load_params(&m1.flatten_params());
        let mut rng = Pcg32::seed_from(seed1 ^ seed2);
        let x = Tensor::randn(&[3, 6], &mut rng);
        prop_assert_eq!(m1.forward(&x, false), m2.forward(&x, false));
    }

    #[test]
    fn softmax_ce_gradient_sums_to_zero_per_row(
        logits in proptest::collection::vec(-8.0f32..8.0, 12),
        labels in proptest::collection::vec(0usize..4, 3)
    ) {
        let t = Tensor::from_vec(&[3, 4], logits);
        let (loss, grad) = softmax_cross_entropy(&t, &labels);
        prop_assert!(loss.is_finite() && loss >= 0.0);
        for row in 0..3 {
            let s: f32 = grad.data()[row * 4..(row + 1) * 4].iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {row} sums to {s}");
        }
    }

    #[test]
    fn loss_decreases_on_gradient_step(seed in any::<u64>()) {
        // One small SGD step along the gradient cannot increase the loss
        // on a smooth-enough problem; property-check it on random batches.
        let mut model = small_model(seed);
        let mut rng = Pcg32::seed_from(seed ^ 0x11);
        let x = Tensor::randn(&[8, 6], &mut rng);
        let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
        let logits = model.forward(&x, true);
        let (before, grad) = softmax_cross_entropy(&logits, &labels);
        model.backward(&grad);
        let mut opt = Sgd::new(0.01);
        model.step(&mut opt);
        let logits = model.forward(&x, false);
        let (after, _) = softmax_cross_entropy(&logits, &labels);
        prop_assert!(after <= before + 1e-4, "{before} -> {after}");
    }

    #[test]
    fn frozen_params_never_move(seed in any::<u64>()) {
        let mut model = small_model(seed);
        // Freeze the first layer.
        let mut idx = 0;
        model.visit_params_mut(&mut |p| {
            if idx < 2 {
                p.frozen = true;
            }
            idx += 1;
        });
        let before = model.flatten_params();
        let mut rng = Pcg32::seed_from(seed ^ 0x22);
        let x = Tensor::randn(&[4, 6], &mut rng);
        let labels = vec![0, 1, 2, 3];
        for _ in 0..3 {
            let logits = model.forward(&x, true);
            let (_, grad) = softmax_cross_entropy(&logits, &labels);
            model.backward(&grad);
            let mut opt = Sgd::new(0.1);
            model.step(&mut opt);
        }
        let after = model.flatten_params();
        // First-layer weights (first 6*10 + 10 values) unchanged.
        prop_assert_eq!(&before[..70], &after[..70]);
        prop_assert_ne!(&before[70..], &after[70..], "trainable part should move");
    }

    #[test]
    fn relu_output_nonnegative(xs in proptest::collection::vec(-100.0f32..100.0, 8)) {
        let mut relu = Relu::new();
        let y = relu.forward(&Tensor::from_vec(&[1, 8], xs), false);
        prop_assert!(y.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn accuracy_bounded_and_exact_on_onehot(labels in proptest::collection::vec(0usize..5, 1..20)) {
        // Build logits that exactly encode the labels.
        let n = labels.len();
        let mut data = vec![0.0f32; n * 5];
        for (i, &l) in labels.iter().enumerate() {
            data[i * 5 + l] = 1.0;
        }
        let logits = Tensor::from_vec(&[n, 5], data);
        prop_assert_eq!(accuracy(&logits, &labels), 1.0);
    }

    #[test]
    fn dataset_sharding_partitions_samples(
        n in 10usize..200, shards in 1usize..10
    ) {
        prop_assume!(n >= shards);
        let spec = ImageSpec::tiny();
        let data = SyntheticImages::generate(&spec, n, &mut Pcg32::seed_from(42));
        let parts = data.shard(shards);
        prop_assert_eq!(parts.len(), shards);
        let per = n / shards;
        prop_assert!(parts.iter().all(|p| p.len() == per));
    }

    #[test]
    fn optimizers_keep_finite_weights(
        lr in 0.001f32..0.5, steps in 1usize..30, seed in any::<u64>()
    ) {
        let mut model = small_model(seed);
        let mut rng = Pcg32::seed_from(seed ^ 0x33);
        let x = Tensor::randn(&[4, 6], &mut rng);
        let labels = vec![0, 1, 2, 3];
        let mut opt = SgdMomentum::new(lr, 0.9);
        for _ in 0..steps {
            let logits = model.forward(&x, true);
            let (_, grad) = softmax_cross_entropy(&logits, &labels);
            model.backward(&grad);
            model.step(&mut opt);
        }
        prop_assert!(model.flatten_params().iter().all(|w| w.is_finite()));
    }
}
