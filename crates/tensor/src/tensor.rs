//! Dense, row-major `f32` n-d arrays.

use crate::gemm;
use crate::rng::Pcg32;
use crate::shape::Shape;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A dense, row-major `f32` tensor.
///
/// `Tensor` is the carrier type for model weights, gradients, activations
/// and checkpoint payloads throughout the workspace. It favours explicit,
/// panicking shape checks (per C-VALIDATE) over silent broadcasting: the
/// training code in `rpol-nn` always knows its shapes statically.
///
/// # Examples
///
/// ```
/// use rpol_tensor::Tensor;
///
/// let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
/// let b = Tensor::ones(&[2, 2]);
/// let c = &a + &b;
/// assert_eq!(c.data(), &[2.0, 3.0, 4.0, 5.0]);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Self {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor of ones.
    pub fn ones(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Self {
            shape,
            data: vec![1.0; len],
        }
    }

    /// Creates a tensor filled with a constant.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Self {
            shape,
            data: vec![value; len],
        }
    }

    /// Creates a tensor from raw data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the number of elements implied
    /// by `dims`.
    pub fn from_vec(dims: &[usize], data: Vec<f32>) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {shape} ({} elements)",
            data.len(),
            shape.len()
        );
        Self { shape, data }
    }

    /// Creates a tensor of i.i.d. standard-normal draws.
    pub fn randn(dims: &[usize], rng: &mut Pcg32) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.len()).map(|_| rng.next_normal()).collect();
        Self { shape, data }
    }

    /// Creates a tensor of uniform draws in `[lo, hi)`.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut Pcg32) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.len()).map(|_| rng.uniform(lo, hi)).collect();
        Self { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A view of the raw data in row-major order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// A mutable view of the raw data in row-major order.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its raw data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Writes the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.len(),
            self.data.len(),
            "cannot reshape {} elements into {shape}",
            self.data.len()
        );
        Self {
            shape,
            data: self.data.clone(),
        }
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two tensors elementwise.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        self.check_same_shape(other);
        Self {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self += alpha * other`, the BLAS `axpy` primitive used by every
    /// optimizer in the workspace.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Self) {
        self.check_same_shape(other);
        for (x, &y) in self.data.iter_mut().zip(&other.data) {
            *x += alpha * y;
        }
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// The sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// The mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.len() as f32
    }

    /// The dot product of the flattened tensors.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn dot(&self, other: &Self) -> f32 {
        assert_eq!(self.len(), other.len(), "dot length mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// The Euclidean (L2) norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// The Euclidean distance between two same-length tensors, computed in
    /// `f64` to keep checkpoint-distance measurements stable for very long
    /// weight vectors.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn euclidean_distance(&self, other: &Self) -> f32 {
        assert_eq!(self.len(), other.len(), "distance length mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| {
                let d = (a - b) as f64;
                d * d
            })
            .sum::<f64>()
            .sqrt() as f32
    }

    /// The index of the maximum element (first on ties).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty (cannot happen by construction).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Matrix multiplication for rank-2 tensors: `[m,k] x [k,n] -> [m,n]`.
    ///
    /// Runs on the cache-blocked packed kernel in [`crate::gemm`]; the
    /// result is bitwise identical to the naive reference kernel
    /// ([`crate::gemm::matmul_naive`]) and to itself under any thread
    /// count, which the checkpoint-commitment protocol depends on.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank 2 with compatible inner
    /// dimensions.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(self.shape.rank(), 2, "matmul lhs must be rank 2");
        assert_eq!(other.shape.rank(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        let (k2, n) = (other.shape.dim(0), other.shape.dim(1));
        assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
        let out = gemm::matmul(
            m,
            n,
            k,
            &self.data,
            gemm::Trans::No,
            &other.data,
            gemm::Trans::No,
            gemm::default_threads(),
        );
        Tensor::from_vec(&[m, n], out)
    }

    /// Fused `self · otherᵀ` for rank-2 tensors: `[m,k] x [n,k] -> [m,n]`.
    ///
    /// Bitwise equal to `self.matmul(&other.transpose())` without ever
    /// materializing the transpose — the kernel reads `other` rows as
    /// packed B columns directly.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank 2 with matching inner (last)
    /// dimensions.
    pub fn matmul_nt(&self, other: &Self) -> Self {
        assert_eq!(self.shape.rank(), 2, "matmul_nt lhs must be rank 2");
        assert_eq!(other.shape.rank(), 2, "matmul_nt rhs must be rank 2");
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        let (n, k2) = (other.shape.dim(0), other.shape.dim(1));
        assert_eq!(k, k2, "matmul_nt inner dimension mismatch: {k} vs {k2}");
        let out = gemm::matmul(
            m,
            n,
            k,
            &self.data,
            gemm::Trans::No,
            &other.data,
            gemm::Trans::Yes,
            gemm::default_threads(),
        );
        Tensor::from_vec(&[m, n], out)
    }

    /// Fused `selfᵀ · other` for rank-2 tensors: `[k,m] x [k,n] -> [m,n]`.
    ///
    /// Bitwise equal to `self.transpose().matmul(other)` without ever
    /// materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank 2 with matching outer (first)
    /// dimensions.
    pub fn matmul_tn(&self, other: &Self) -> Self {
        assert_eq!(self.shape.rank(), 2, "matmul_tn lhs must be rank 2");
        assert_eq!(other.shape.rank(), 2, "matmul_tn rhs must be rank 2");
        let (k, m) = (self.shape.dim(0), self.shape.dim(1));
        let (k2, n) = (other.shape.dim(0), other.shape.dim(1));
        assert_eq!(k, k2, "matmul_tn inner dimension mismatch: {k} vs {k2}");
        let out = gemm::matmul(
            m,
            n,
            k,
            &self.data,
            gemm::Trans::Yes,
            &other.data,
            gemm::Trans::No,
            gemm::default_threads(),
        );
        Tensor::from_vec(&[m, n], out)
    }

    /// Matrix multiplication that skips zero elements of `self` row-wise —
    /// the former default kernel, kept as an explicit entry point for
    /// genuinely sparse left operands (e.g. masked or pruned matrices).
    /// For finite inputs the result is bitwise identical to
    /// [`Tensor::matmul`]; it is only a performance trade-off.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank 2 with compatible inner
    /// dimensions.
    pub fn matmul_sparse(&self, other: &Self) -> Self {
        assert_eq!(self.shape.rank(), 2, "matmul lhs must be rank 2");
        assert_eq!(other.shape.rank(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        let (k2, n) = (other.shape.dim(0), other.shape.dim(1));
        assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
        let out = gemm::matmul_naive(m, n, k, &self.data, &other.data);
        Tensor::from_vec(&[m, n], out)
    }

    /// Matrix–vector product for a rank-2 tensor and a rank-1 tensor:
    /// `[m,k] x [k] -> [m]`.
    ///
    /// # Panics
    ///
    /// Panics on rank or dimension mismatch.
    pub fn matvec(&self, v: &Self) -> Self {
        assert_eq!(self.shape.rank(), 2, "matvec lhs must be rank 2");
        assert_eq!(v.shape.rank(), 1, "matvec rhs must be rank 1");
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        assert_eq!(k, v.len(), "matvec dimension mismatch");
        let mut out = vec![0.0f32; m];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.data[i * k..(i + 1) * k]
                .iter()
                .zip(&v.data)
                .map(|(&a, &b)| a * b)
                .sum();
        }
        Tensor::from_vec(&[m], out)
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// Cache-blocked: the matrix is walked in square tiles so both the
    /// read and the strided write stay within a few cache lines, instead
    /// of streaming one side with an `n`-element stride.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is rank 2.
    pub fn transpose(&self) -> Self {
        const TB: usize = 32;
        assert_eq!(self.shape.rank(), 2, "transpose requires rank 2");
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; m * n];
        for i0 in (0..m).step_by(TB) {
            let i1 = (i0 + TB).min(m);
            for j0 in (0..n).step_by(TB) {
                let j1 = (j0 + TB).min(n);
                for i in i0..i1 {
                    let src = &self.data[i * n..];
                    for j in j0..j1 {
                        out[j * m + i] = src[j];
                    }
                }
            }
        }
        Tensor::from_vec(&[n, m], out)
    }

    fn check_same_shape(&self, other: &Self) {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {} vs {}",
            self.shape, other.shape
        );
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len() <= 8 {
            write!(f, "Tensor({}, {:?})", self.shape, self.data)
        } else {
            write!(
                f,
                "Tensor({}, [{:.4}, {:.4}, .. {} elems])",
                self.shape,
                self.data[0],
                self.data[1],
                self.data.len()
            )
        }
    }
}

impl Add for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a + b)
    }
}

impl Sub for &Tensor {
    type Output = Tensor;
    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a - b)
    }
}

impl Mul<f32> for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: f32) -> Tensor {
        self.map(|x| x * rhs)
    }
}

impl AddAssign<&Tensor> for Tensor {
    fn add_assign(&mut self, rhs: &Tensor) {
        self.axpy(1.0, rhs);
    }
}

impl SubAssign<&Tensor> for Tensor {
    fn sub_assign(&mut self, rhs: &Tensor) {
        self.axpy(-1.0, rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.len(), 6);
        assert_eq!(t.sum(), 21.0);
        assert!((t.mean() - 3.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_length_checked() {
        Tensor::from_vec(&[2, 2], vec![1.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]);
        let id = Tensor::from_vec(&[2, 2], vec![1., 0., 0., 1.]);
        assert_eq!(a.matmul(&id), a);
        assert_eq!(id.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let v = Tensor::from_vec(&[3], vec![1., 0., -1.]);
        let got = a.matvec(&v);
        assert_eq!(got.data(), &[-2.0, -2.0]);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Pcg32::seed_from(5);
        let a = Tensor::randn(&[3, 4], &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn axpy_and_ops() {
        let mut a = Tensor::from_vec(&[3], vec![1., 2., 3.]);
        let b = Tensor::from_vec(&[3], vec![10., 20., 30.]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[6., 12., 18.]);
        let c = &a - &b;
        assert_eq!(c.data(), &[-4., -8., -12.]);
        let d = &c * 0.25;
        assert_eq!(d.data(), &[-1., -2., -3.]);
    }

    #[test]
    fn euclidean_distance_basic() {
        let a = Tensor::from_vec(&[2], vec![0., 0.]);
        let b = Tensor::from_vec(&[2], vec![3., 4.]);
        assert!((a.euclidean_distance(&b) - 5.0).abs() < 1e-6);
        assert_eq!(a.euclidean_distance(&a), 0.0);
    }

    #[test]
    fn norm_matches_distance_from_zero() {
        let mut rng = Pcg32::seed_from(9);
        let a = Tensor::randn(&[100], &mut rng);
        let z = Tensor::zeros(&[100]);
        assert!((a.norm() - a.euclidean_distance(&z)).abs() < 1e-4);
    }

    #[test]
    fn argmax_first_on_ties() {
        let t = Tensor::from_vec(&[4], vec![1., 5., 5., 2.]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.shape().dims(), &[3, 2]);
    }

    #[test]
    fn randn_is_seeded() {
        let mut r1 = Pcg32::seed_from(1);
        let mut r2 = Pcg32::seed_from(1);
        assert_eq!(Tensor::randn(&[10], &mut r1), Tensor::randn(&[10], &mut r2));
    }
}
