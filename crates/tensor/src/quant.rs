//! Deterministic bf16-pattern weight quantization (DESIGN.md §13).
//!
//! RPoLv3 shrinks the commit/verify data plane by quantizing checkpoint
//! weights to the **bfloat16 bit pattern**: the top 16 bits of the IEEE
//! `f32` encoding (sign, the full 8-bit exponent, the 7 highest mantissa
//! bits), obtained by truncation. Truncation — rather than
//! round-to-nearest — is chosen deliberately:
//!
//! * it is a pure bit operation, so the mapping is trivially deterministic
//!   across hosts, ISAs and thread counts;
//! * it is **idempotent**: a value whose low 16 bits are already zero maps
//!   to itself, so `quantize ∘ dequantize` is the identity on the
//!   quantized lattice and re-quantizing a checkpoint never drifts;
//! * it is monotone (round-toward-zero), so quantization preserves the
//!   total order of weights.
//!
//! A quantized weight is stored as the `u16` holding those top 16 bits;
//! its exact `f32` image is that `u16` shifted back up with a zero low
//! half. Everything downstream — SHA-256 commitment digests, the
//! GEMM-lowered LSH projections, the packed wire blocks — operates on
//! either the 2-byte lattice points or their exact `f32` images, so the
//! whole pipeline stays byte-deterministic while halving the bytes
//! hashed, projected and shipped.

/// Quantizes one weight to its bf16 bit pattern (truncation).
#[inline]
pub fn quantize_bf16(x: f32) -> u16 {
    (x.to_bits() >> 16) as u16
}

/// The exact `f32` image of a bf16 lattice point (low 16 bits zero).
#[inline]
pub fn dequantize_bf16(q: u16) -> f32 {
    f32::from_bits((q as u32) << 16)
}

/// `true` when every element already lies on the bf16 lattice — i.e. the
/// slice is its own quantized image and 2-byte packing is lossless.
pub fn is_bf16_lattice(weights: &[f32]) -> bool {
    weights.iter().all(|w| w.to_bits() & 0xFFFF == 0)
}

/// Quantizes a slice to packed `u16` lattice points.
pub fn quantize_slice(weights: &[f32]) -> Vec<u16> {
    weights.iter().map(|&w| quantize_bf16(w)).collect()
}

/// Expands packed lattice points back to their exact `f32` images.
pub fn dequantize_slice(quants: &[u16]) -> Vec<f32> {
    quants.iter().map(|&q| dequantize_bf16(q)).collect()
}

/// Snaps a slice onto the bf16 lattice in place (`quantize ∘ dequantize`
/// fused, staying in `f32`) — the checkpoint-boundary projection RPoLv3
/// training and replay both apply, so worker and verifier walk the same
/// lattice trajectory.
pub fn snap_to_bf16(weights: &mut [f32]) {
    for w in weights.iter_mut() {
        *w = f32::from_bits(w.to_bits() & 0xFFFF_0000);
    }
}

/// Returns the bf16-lattice image of a slice (non-destructive
/// [`snap_to_bf16`]).
pub fn bf16_image(weights: &[f32]) -> Vec<f32> {
    let mut out = weights.to_vec();
    snap_to_bf16(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg32;

    #[test]
    fn truncation_round_trips_exactly() {
        let mut rng = Pcg32::seed_from(21);
        for _ in 0..1000 {
            let x = rng.next_normal();
            let q = quantize_bf16(x);
            let dq = dequantize_bf16(q);
            // Idempotent: the image is a fixed point.
            assert_eq!(quantize_bf16(dq), q);
            assert_eq!(dequantize_bf16(quantize_bf16(dq)), dq);
            // Truncation rounds toward zero and keeps the sign.
            assert!(dq.abs() <= x.abs());
            assert_eq!(dq.is_sign_negative(), x.is_sign_negative());
        }
    }

    #[test]
    fn snap_matches_pack_unpack() {
        let mut rng = Pcg32::seed_from(22);
        let weights: Vec<f32> = (0..257).map(|_| rng.next_normal()).collect();
        let mut snapped = weights.clone();
        snap_to_bf16(&mut snapped);
        assert_eq!(snapped, dequantize_slice(&quantize_slice(&weights)));
        assert!(is_bf16_lattice(&snapped));
        assert!(!is_bf16_lattice(&weights) || weights.iter().all(|w| *w == 0.0));
    }

    #[test]
    fn special_values_survive() {
        for x in [0.0f32, -0.0, f32::INFINITY, f32::NEG_INFINITY] {
            assert_eq!(dequantize_bf16(quantize_bf16(x)).to_bits(), x.to_bits());
        }
        assert!(dequantize_bf16(quantize_bf16(f32::NAN)).is_nan());
    }
}
