//! Summary statistics and distribution tests.
//!
//! The paper's adaptive LSH calibration (§V-C) rests on the empirical claim
//! that per-checkpoint reproduction errors follow a normal distribution
//! (validated by a Kolmogorov–Smirnov test in §VII-C). This module provides
//! the statistics the manager needs: mean/standard deviation, the standard
//! normal CDF (also used in the p-stable LSH collision-probability model),
//! and a one-sample KS normality test.

/// The mean of a sample.
///
/// # Panics
///
/// Panics if the sample is empty.
pub fn mean(xs: &[f32]) -> f32 {
    assert!(!xs.is_empty(), "mean of empty sample");
    (xs.iter().map(|&x| x as f64).sum::<f64>() / xs.len() as f64) as f32
}

/// The population standard deviation of a sample.
///
/// # Panics
///
/// Panics if the sample is empty.
pub fn std_dev(xs: &[f32]) -> f32 {
    let m = mean(xs) as f64;
    let var = xs.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / xs.len() as f64;
    var.sqrt() as f32
}

/// The maximum of a sample.
///
/// # Panics
///
/// Panics if the sample is empty.
pub fn max(xs: &[f32]) -> f32 {
    assert!(!xs.is_empty(), "max of empty sample");
    xs.iter().copied().fold(f32::NEG_INFINITY, f32::max)
}

/// The minimum of a sample.
///
/// # Panics
///
/// Panics if the sample is empty.
pub fn min(xs: &[f32]) -> f32 {
    assert!(!xs.is_empty(), "min of empty sample");
    xs.iter().copied().fold(f32::INFINITY, f32::min)
}

/// The error function `erf(x)`, via the Abramowitz–Stegun 7.1.26
/// approximation (|error| ≤ 1.5e-7), sufficient for LSH probability
/// modelling and KS testing.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// The standard normal CDF `Φ(x)`.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// The standard normal PDF `φ(x)`.
pub fn norm_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Result of a one-sample Kolmogorov–Smirnov test against a normal
/// distribution fitted to the sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// The KS statistic: the supremum distance between the empirical CDF
    /// and the fitted normal CDF.
    pub statistic: f64,
    /// Approximate p-value via the asymptotic Kolmogorov distribution.
    pub p_value: f64,
}

impl KsResult {
    /// Whether the normality hypothesis survives at the given significance
    /// level (i.e. `p_value > alpha`).
    pub fn is_normal(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

/// One-sample KS test of `xs` against `N(mean, std)` fitted from the sample.
///
/// This mirrors the paper's use of the KS test to statistically confirm
/// that reproduction errors are normally distributed (§VII-C). The p-value
/// uses the asymptotic Kolmogorov series and is approximate for small
/// samples; the workspace uses it as a yes/no normality gate, not for
/// precise inference.
///
/// # Panics
///
/// Panics if the sample has fewer than 3 points or zero variance.
pub fn ks_normality_test(xs: &[f32]) -> KsResult {
    assert!(xs.len() >= 3, "KS test needs at least 3 samples");
    let m = mean(xs) as f64;
    let s = std_dev(xs) as f64;
    assert!(s > 0.0, "KS test on constant sample");
    let mut sorted: Vec<f64> = xs.iter().map(|&x| x as f64).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in KS sample"));
    let n = sorted.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let cdf = norm_cdf((x - m) / s);
        let ecdf_hi = (i as f64 + 1.0) / n;
        let ecdf_lo = i as f64 / n;
        d = d.max((ecdf_hi - cdf).abs()).max((cdf - ecdf_lo).abs());
    }
    // Asymptotic Kolmogorov distribution: Q(λ) = 2 Σ (-1)^{j-1} e^{-2 j² λ²}.
    let lambda = (n.sqrt() + 0.12 + 0.11 / n.sqrt()) * d;
    let mut p = 0.0;
    for j in 1..=100 {
        let j = j as f64;
        let term = 2.0 * (-1.0f64).powi(j as i32 - 1) * (-2.0 * j * j * lambda * lambda).exp();
        p += term;
        if term.abs() < 1e-12 {
            break;
        }
    }
    KsResult {
        statistic: d,
        p_value: p.clamp(0.0, 1.0),
    }
}

/// A running accumulator for mean/std/max without storing the sample,
/// used by the manager when aggregating per-checkpoint reproduction errors.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    max: f64,
    min: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            max: f64::NEG_INFINITY,
            min: f64::INFINITY,
        }
    }

    /// Adds one observation (Welford update).
    pub fn push(&mut self, x: f32) {
        let x = x as f64;
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.max = self.max.max(x);
        self.min = self.min.min(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of observations so far.
    ///
    /// # Panics
    ///
    /// Panics if no observations were added.
    pub fn mean(&self) -> f32 {
        assert!(self.n > 0, "mean of empty accumulator");
        self.mean as f32
    }

    /// Population standard deviation so far.
    ///
    /// # Panics
    ///
    /// Panics if no observations were added.
    pub fn std_dev(&self) -> f32 {
        assert!(self.n > 0, "std of empty accumulator");
        (self.m2 / self.n as f64).sqrt() as f32
    }

    /// Maximum so far.
    ///
    /// # Panics
    ///
    /// Panics if no observations were added.
    pub fn max(&self) -> f32 {
        assert!(self.n > 0, "max of empty accumulator");
        self.max as f32
    }

    /// Minimum so far.
    ///
    /// # Panics
    ///
    /// Panics if no observations were added.
    pub fn min(&self) -> f32 {
        assert!(self.n > 0, "min of empty accumulator");
        self.min as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg32;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-6);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn erf_reference_values() {
        assert!(erf(0.0).abs() < 1e-9);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-6);
    }

    #[test]
    fn norm_cdf_reference_values() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((norm_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((norm_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn ks_accepts_normal_sample() {
        let mut rng = Pcg32::seed_from(42);
        let xs: Vec<f32> = (0..500).map(|_| rng.normal(3.0, 0.5)).collect();
        let ks = ks_normality_test(&xs);
        assert!(ks.is_normal(0.05), "normal sample rejected: {ks:?}");
    }

    #[test]
    fn ks_rejects_uniform_sample() {
        let mut rng = Pcg32::seed_from(42);
        let xs: Vec<f32> = (0..2000).map(|_| rng.uniform(0.0, 1.0)).collect();
        let ks = ks_normality_test(&xs);
        assert!(!ks.is_normal(0.05), "uniform sample accepted: {ks:?}");
    }

    #[test]
    fn ks_rejects_bimodal_sample() {
        let mut rng = Pcg32::seed_from(7);
        let xs: Vec<f32> = (0..1000)
            .map(|i| {
                if i % 2 == 0 {
                    rng.normal(-4.0, 0.3)
                } else {
                    rng.normal(4.0, 0.3)
                }
            })
            .collect();
        assert!(!ks_normality_test(&xs).is_normal(0.05));
    }

    #[test]
    fn running_stats_matches_batch() {
        let mut rng = Pcg32::seed_from(3);
        let xs: Vec<f32> = (0..1000).map(|_| rng.normal(1.0, 2.0)).collect();
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert!((rs.mean() - mean(&xs)).abs() < 1e-4);
        assert!((rs.std_dev() - std_dev(&xs)).abs() < 1e-4);
        assert_eq!(rs.max(), max(&xs));
        assert_eq!(rs.min(), min(&xs));
        assert_eq!(rs.count(), 1000);
    }
}
