//! A recycling pool for `f32` working buffers.
//!
//! Training loops allocate and drop an activation-sized `Vec<f32>` per
//! layer per step; [`ScratchArena`] keeps those allocations alive between
//! uses so steady-state forward/backward passes run allocation-free. The
//! arena only manages memory — values written through it are identical to
//! fresh allocations, so it is invisible to checkpoint digests.

/// A bounded pool of reusable `Vec<f32>` buffers.
///
/// # Examples
///
/// ```
/// use rpol_tensor::scratch::ScratchArena;
///
/// let mut arena = ScratchArena::new();
/// let buf = arena.take_zeroed(128);
/// assert!(buf.iter().all(|&v| v == 0.0));
/// arena.recycle(buf);
/// // The next request reuses the same allocation.
/// let again = arena.take_empty(64);
/// assert!(again.capacity() >= 128);
/// ```
#[derive(Debug, Default)]
pub struct ScratchArena {
    pool: Vec<Vec<f32>>,
}

/// Buffers retained at most; beyond this the smallest is dropped so the
/// pool tracks the working set instead of growing without bound.
const MAX_POOLED: usize = 16;

impl ScratchArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands out an empty buffer with at least `capacity` reserved,
    /// preferring the pooled buffer whose capacity fits best.
    pub fn take_empty(&mut self, capacity: usize) -> Vec<f32> {
        let best = self
            .pool
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= capacity)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i)
            .or_else(|| {
                // Nothing big enough: grow the largest rather than leak
                // a small one back into the pool later.
                self.pool
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, b)| b.capacity())
                    .map(|(i, _)| i)
            });
        match best {
            Some(i) => {
                let mut buf = self.pool.swap_remove(i);
                buf.clear();
                buf.reserve(capacity);
                buf
            }
            None => Vec::with_capacity(capacity),
        }
    }

    /// Hands out a buffer of exactly `len` zeros.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.take_empty(len);
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the pool for reuse.
    pub fn recycle(&mut self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        self.pool.push(buf);
        if self.pool.len() > MAX_POOLED {
            if let Some(i) = self
                .pool
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| b.capacity())
                .map(|(i, _)| i)
            {
                self.pool.swap_remove(i);
            }
        }
    }

    /// Number of buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_allocations() {
        let mut arena = ScratchArena::new();
        let buf = arena.take_zeroed(100);
        let ptr = buf.as_ptr();
        arena.recycle(buf);
        let again = arena.take_zeroed(80);
        assert_eq!(again.as_ptr(), ptr, "allocation should be reused");
        assert_eq!(again.len(), 80);
        assert!(again.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn zeroed_after_dirty_use() {
        let mut arena = ScratchArena::new();
        let mut buf = arena.take_zeroed(4);
        buf.fill(7.5);
        arena.recycle(buf);
        assert!(arena.take_zeroed(4).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pool_stays_bounded() {
        let mut arena = ScratchArena::new();
        let bufs: Vec<_> = (0..MAX_POOLED + 8).map(|i| vec![0.0f32; i + 1]).collect();
        for b in bufs {
            arena.recycle(b);
        }
        assert!(arena.pooled() <= MAX_POOLED);
    }
}
