//! Deterministic pseudo-random number generators.
//!
//! Every piece of randomness that takes part in the RPoL protocol — model
//! initialization, AMLayer weights, LSH projection vectors, batch selection —
//! must be reproducible by a remote verifier from a seed. These generators
//! are therefore fully deterministic and platform-independent (integer-only
//! state transitions; floating-point values are derived the same way on
//! every platform).

/// SplitMix64: a tiny, high-quality 64-bit generator.
///
/// Used both directly and as a seeder for [`Pcg32`]. The state transition is
/// the standard Vigna construction.
///
/// # Examples
///
/// ```
/// use rpol_tensor::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// PCG32 (XSH-RR variant): the workhorse generator for the workspace.
///
/// Deterministic, seedable, `O(1)` state. All floating-point sampling
/// (uniform, normal) is implemented on top of its integer output so results
/// are bit-identical across platforms.
///
/// # Examples
///
/// ```
/// use rpol_tensor::rng::Pcg32;
///
/// let mut rng = Pcg32::seed_from(123);
/// let x = rng.next_f32();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
    /// Cached second output of the Box–Muller transform.
    cached_normal: Option<f32>,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;

impl Pcg32 {
    /// Creates a generator from an explicit state/stream pair.
    pub fn new(state: u64, stream: u64) -> Self {
        let mut rng = Self {
            state: 0,
            inc: (stream << 1) | 1,
            cached_normal: None,
        };
        rng.state = rng.inc.wrapping_add(state);
        rng.next_u32();
        rng
    }

    /// Creates a generator from a single seed, expanding it with
    /// [`SplitMix64`].
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let state = sm.next_u64();
        let stream = sm.next_u64();
        Self::new(state, stream)
    }

    /// Returns the next 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Returns the next 64-bit output (two 32-bit draws).
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Returns a uniform draw in `[0, 1)` with 24 bits of precision.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Returns a uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.next_f32()
    }

    /// Returns an unbiased uniform integer in `[0, bound)` using Lemire
    /// rejection.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's nearly-divisionless method with rejection.
        loop {
            let x = self.next_u32();
            let m = (x as u64).wrapping_mul(bound as u64);
            let low = m as u32;
            if low >= bound || low >= (u32::MAX - bound + 1) % bound {
                return (m >> 32) as u32;
            }
        }
    }

    /// Returns a standard-normal draw via the Box–Muller transform.
    ///
    /// Deterministic given the generator state; the paired output is cached
    /// so consecutive calls consume uniform draws two at a time.
    pub fn next_normal(&mut self) -> f32 {
        if let Some(z) = self.cached_normal.take() {
            return z;
        }
        // Avoid u1 == 0 which would produce -inf.
        let mut u1 = self.next_f64();
        while u1 <= f64::EPSILON {
            u1 = self.next_f64();
        }
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        let z0 = (r * theta.cos()) as f32;
        let z1 = (r * theta.sin()) as f32;
        self.cached_normal = Some(z1);
        z0
    }

    /// Returns a normal draw with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or non-finite.
    pub fn normal(&mut self, mean: f32, std_dev: f32) -> f32 {
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "invalid std dev {std_dev}"
        );
        mean + std_dev * self.next_normal()
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u32 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_known_vector() {
        // First output for seed 0 of the reference SplitMix64.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn pcg_streams_differ() {
        let mut a = Pcg32::new(42, 1);
        let mut b = Pcg32::new(42, 2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(
            same < 4,
            "streams should be nearly disjoint, {same} collisions"
        );
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = Pcg32::seed_from(7);
        for _ in 0..1000 {
            let x = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn next_below_unbiased_smoke() {
        let mut rng = Pcg32::seed_from(11);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.next_below(5) as usize] += 1;
        }
        for &c in &counts {
            // Each bucket should hold ~10_000 draws.
            assert!((8_500..11_500).contains(&c), "biased bucket: {counts:?}");
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = Pcg32::seed_from(3);
        let n = 100_000;
        let xs: Vec<f32> = (0..n).map(|_| rng.next_normal()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Pcg32::seed_from(17);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input in order"
        );
    }
}
