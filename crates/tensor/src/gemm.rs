//! Cache-blocked, packed GEMM kernels with a bitwise-deterministic
//! reduction order.
//!
//! RPoL's verification protocol hashes the exact `f32` bytes of model
//! checkpoints, so every kernel here preserves the reduction order of the
//! original reference kernel: each output element `C[i,j]` is produced by
//! one accumulator chain `((init + a₀·b₀) + a₁·b₁) + …` over the shared
//! dimension in strictly ascending order. The blocking, packing and
//! threading below are arranged so that this chain is *identical* no
//! matter how the work is tiled or sharded:
//!
//! * K is split into `KC` blocks processed in ascending order; the partial
//!   sum is stored to `C` between blocks and reloaded, which is exact for
//!   `f32` round trips, so the chain is unbroken.
//! * The micro-kernel unrolls across M and N only — never across K — so
//!   there is exactly one accumulator per output element.
//! * Packed panels are zero-padded at the M/N edges; padded lanes compute
//!   `±0.0` contributions that are never written back.
//! * The multi-threaded path shards disjoint *row ranges* of `C` onto the
//!   process-wide [`rpol_exec::shared`] executor; each element's chain
//!   involves only its own row of A, so the result is bitwise identical
//!   for any thread count or pool width (see `tests/gemm_properties.rs`),
//!   and no GEMM call ever spawns an OS thread of its own.
//!
//! Rust never contracts `a * b + c` into an FMA without explicit opt-in,
//! so mul-then-add rounding matches the reference kernel exactly.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Micro-kernel tile rows (M-unroll); 8 independent accumulator rows keep
/// the add-latency chain covered on wide cores.
pub const MR: usize = 8;
/// Micro-kernel tile columns (N-unroll); 16-wide so the inner loop maps to
/// whole SIMD registers under autovectorization (one ZMM, two YMM, or four
/// XMM per accumulator row depending on the dispatched ISA tier).
pub const NR: usize = 16;
/// Row-block size: `MC × KC` packed A panels stay L2-resident.
pub const MC: usize = 64;
/// Depth-block size: one `KC × NR` packed B panel is 8 KiB, L1-resident.
pub const KC: usize = 256;
/// Column-block size for packed B.
pub const NC: usize = 512;

/// Whether an operand is used as stored (`No`) or logically transposed
/// (`Yes`). Transposition is fused into packing — no transposed copy of
/// the operand is ever materialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the operand transposed.
    Yes,
}

static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads GEMM entry points use by default: the value
/// of `RPOL_GEMM_THREADS` if set, else available parallelism capped at 8.
/// The result is bitwise identical for any setting.
pub fn default_threads() -> usize {
    let cached = THREADS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::env::var("RPOL_GEMM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get().min(8))
                .unwrap_or(1)
        });
    THREADS.store(n, Ordering::Relaxed);
    n
}

/// Overrides the default GEMM thread count (for benchmarks and tests).
pub fn set_default_threads(n: usize) {
    THREADS.store(n.max(1), Ordering::Relaxed);
}

/// `C[m,n] = A·B` with zero-initialized C. `a`/`b` are row-major with
/// shapes implied by `(m, n, k)` and the `Trans` flags.
#[allow(clippy::too_many_arguments)]
pub fn matmul(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    ta: Trans,
    b: &[f32],
    tb: Trans,
    threads: usize,
) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    gemm_into(m, n, k, a, ta, b, tb, &mut c, threads);
    c
}

/// `C += A·B` into a caller-initialized `C` (`beta = 1` semantics): every
/// element's chain starts from the value already in `C`, which is how the
/// convolution lowering threads bias terms and cross-sample accumulation
/// through without disturbing the reduction order.
///
/// # Panics
///
/// Panics if operand or output slice lengths do not match `(m, n, k)`.
#[allow(clippy::too_many_arguments)]
pub fn gemm_into(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    ta: Trans,
    b: &[f32],
    tb: Trans,
    c: &mut [f32],
    threads: usize,
) {
    assert_eq!(a.len(), m * k, "A operand length");
    assert_eq!(b.len(), k * n, "B operand length");
    assert_eq!(c.len(), m * n, "C output length");
    if m == 0 || n == 0 {
        return;
    }
    // GEMM sits below every layer that could thread a recorder handle, so
    // it reports to the process-wide recorder; the enabled check is one
    // relaxed atomic load when observability is off.
    if rpol_obs::global_enabled() {
        let rec = rpol_obs::global();
        rec.counter_add("tensor.gemm.calls", 1);
        rec.counter_add(
            "tensor.gemm.flops_total",
            2 * (m as u64) * (n as u64) * (k as u64),
        );
    }
    let lda = match ta {
        Trans::No => k,
        Trans::Yes => m,
    };
    let ldb = match tb {
        Trans::No => n,
        Trans::Yes => k,
    };
    // Parallelism only pays off once several row blocks exist; below that
    // (and on single-core hosts) run in place.
    if threads <= 1 || m < 2 * MC {
        gemm_rows(a, lda, ta, b, ldb, tb, c, 0..m, n, k);
        return;
    }
    // Shard disjoint row ranges, MR-aligned so panel packing stays full.
    // The shards run on the process-wide shared executor — `threads` only
    // determines the chunk count, which the row-sharding invariant makes
    // bitwise invisible — so kernels nested under epoch-pipeline tasks
    // reuse long-lived pool workers instead of spawning threads per call.
    let chunk = m.div_ceil(threads).div_ceil(MR) * MR;
    rpol_exec::shared().scope(|scope| {
        let mut rest = c;
        let mut row0 = 0usize;
        while row0 < m {
            let rows = chunk.min(m - row0);
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(rows * n);
            rest = tail;
            let range = row0..row0 + rows;
            scope.spawn(move || gemm_rows(a, lda, ta, b, ldb, tb, head, range, n, k));
            row0 += rows;
        }
    });
}

/// Blocked driver for the C rows `rows`; `c` holds exactly those rows.
#[allow(clippy::too_many_arguments)]
fn gemm_rows(
    a: &[f32],
    lda: usize,
    ta: Trans,
    b: &[f32],
    ldb: usize,
    tb: Trans,
    c: &mut [f32],
    rows: Range<usize>,
    n: usize,
    k: usize,
) {
    let row0 = rows.start;
    let m = rows.len();
    let mut packed_a = Vec::new();
    let mut packed_b = Vec::new();
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        // K blocks ascend so each C element accumulates its chain in order.
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(b, ldb, tb, pc, kc, jc, nc, &mut packed_b);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                pack_a(a, lda, ta, row0 + ic, mc, pc, kc, &mut packed_a);
                for pj in 0..nc.div_ceil(NR) {
                    let jr = jc + pj * NR;
                    let nr = NR.min(jc + nc - jr);
                    let pb = &packed_b[pj * kc * NR..][..kc * NR];
                    for pi in 0..mc.div_ceil(MR) {
                        let ir = ic + pi * MR;
                        let mr = MR.min(ic + mc - ir);
                        let pa = &packed_a[pi * kc * MR..][..kc * MR];
                        let c_tile = &mut c[ir * n + jr..];
                        if mr == MR && nr == NR {
                            microkernel(kc, pa, pb, c_tile, n);
                        } else {
                            microkernel_edge(kc, pa, pb, c_tile, n, mr, nr);
                        }
                    }
                }
            }
        }
    }
}

/// Packs an `mc × kc` block of A into `⌈mc/MR⌉` panels laid out
/// `[panel][p][ii]`, zero-padding the tail panel's missing rows.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    a: &[f32],
    lda: usize,
    ta: Trans,
    i0: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    out: &mut Vec<f32>,
) {
    let panels = mc.div_ceil(MR);
    out.clear();
    out.resize(panels * kc * MR, 0.0);
    for pi in 0..panels {
        let ir = i0 + pi * MR;
        let rows = MR.min(i0 + mc - ir);
        let panel = &mut out[pi * kc * MR..][..kc * MR];
        match ta {
            Trans::No => {
                for ii in 0..rows {
                    let src = &a[(ir + ii) * lda + pc..][..kc];
                    for (p, &v) in src.iter().enumerate() {
                        panel[p * MR + ii] = v;
                    }
                }
            }
            Trans::Yes => {
                for (p, dst) in panel.chunks_exact_mut(MR).enumerate() {
                    let src = &a[(pc + p) * lda + ir..][..rows];
                    dst[..rows].copy_from_slice(src);
                }
            }
        }
    }
}

/// Packs a `kc × nc` block of B into `⌈nc/NR⌉` panels laid out
/// `[panel][p][jj]`, zero-padding the tail panel's missing columns.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    b: &[f32],
    ldb: usize,
    tb: Trans,
    pc: usize,
    kc: usize,
    j0: usize,
    nc: usize,
    out: &mut Vec<f32>,
) {
    let panels = nc.div_ceil(NR);
    out.clear();
    out.resize(panels * kc * NR, 0.0);
    for pj in 0..panels {
        let jr = j0 + pj * NR;
        let cols = NR.min(j0 + nc - jr);
        let panel = &mut out[pj * kc * NR..][..kc * NR];
        match tb {
            Trans::No => {
                for (p, dst) in panel.chunks_exact_mut(NR).enumerate() {
                    let src = &b[(pc + p) * ldb + jr..][..cols];
                    dst[..cols].copy_from_slice(src);
                }
            }
            Trans::Yes => {
                for jj in 0..cols {
                    let src = &b[(jr + jj) * ldb + pc..][..kc];
                    for (p, &v) in src.iter().enumerate() {
                        panel[p * NR + jj] = v;
                    }
                }
            }
        }
    }
}

/// `MR × NR` register-tile kernel body over one packed A/B panel pair.
///
/// The C tile is loaded once, accumulated for `p = 0..kc` with a single
/// accumulator per element (unrolled across the tile, never across K),
/// and stored once — so the chain per element is `c + Σ_p a·b` in strict
/// ascending `p` order. The body is inlined into one wrapper per ISA tier
/// below; wider vectors change only how many of these independent chains
/// advance per instruction, never the arithmetic within a chain (and Rust
/// never contracts `a * b + c` into an FMA), so every tier produces
/// identical bytes.
#[inline(always)]
fn microkernel_body(kc: usize, pa: &[f32], pb: &[f32], c: &mut [f32], ldc: usize) {
    let mut acc = [[0.0f32; NR]; MR];
    for (ii, row) in acc.iter_mut().enumerate() {
        row.copy_from_slice(&c[ii * ldc..][..NR]);
    }
    for p in 0..kc {
        let a = &pa[p * MR..][..MR];
        let b = &pb[p * NR..][..NR];
        for (ii, row) in acc.iter_mut().enumerate() {
            let av = a[ii];
            for (jj, acc_v) in row.iter_mut().enumerate() {
                *acc_v += av * b[jj];
            }
        }
    }
    for (ii, row) in acc.iter().enumerate() {
        c[ii * ldc..][..NR].copy_from_slice(row);
    }
}

/// Baseline-ISA micro-kernel (whatever the crate was compiled for).
fn microkernel_generic(kc: usize, pa: &[f32], pb: &[f32], c: &mut [f32], ldc: usize) {
    microkernel_body(kc, pa, pb, c, ldc);
}

/// AVX2 specialization: each accumulator row is two 256-bit registers,
/// processed as two independent half-tiles so the live register set fits.
/// Per lane the arithmetic is `acc = acc + a·b` via separate `vmulps` /
/// `vaddps` (never FMA), the exact chain of the scalar body.
///
/// # Safety
///
/// Callers must have verified `avx2` support at runtime, and `c` must hold
/// a full `MR × NR` tile at row stride `ldc`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn microkernel_avx2(kc: usize, pa: &[f32], pb: &[f32], c: &mut [f32], ldc: usize) {
    use std::arch::x86_64::*;
    debug_assert!(pa.len() >= kc * MR && pb.len() >= kc * NR);
    debug_assert!(c.len() >= (MR - 1) * ldc + NR);
    let pa = pa.as_ptr();
    let pb = pb.as_ptr();
    for half in 0..2 {
        let off = half * 8;
        let mut acc = [_mm256_setzero_ps(); MR];
        for (ii, a) in acc.iter_mut().enumerate() {
            *a = _mm256_loadu_ps(c.as_ptr().add(ii * ldc + off));
        }
        for p in 0..kc {
            let vb = _mm256_loadu_ps(pb.add(p * NR + off));
            let arow = pa.add(p * MR);
            for (ii, a) in acc.iter_mut().enumerate() {
                let va = _mm256_set1_ps(*arow.add(ii));
                *a = _mm256_add_ps(*a, _mm256_mul_ps(va, vb));
            }
        }
        for (ii, a) in acc.iter().enumerate() {
            _mm256_storeu_ps(c.as_mut_ptr().add(ii * ldc + off), *a);
        }
    }
}

/// AVX-512 specialization: one 512-bit register per accumulator row, MR
/// independent chains in flight. Arithmetic per lane is `vmulps` then
/// `vaddps` (never FMA) — the exact chain of the scalar body.
///
/// # Safety
///
/// Callers must have verified `avx512f` support at runtime, and `c` must
/// hold a full `MR × NR` tile at row stride `ldc`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn microkernel_avx512(kc: usize, pa: &[f32], pb: &[f32], c: &mut [f32], ldc: usize) {
    use std::arch::x86_64::*;
    debug_assert!(pa.len() >= kc * MR && pb.len() >= kc * NR);
    debug_assert!(c.len() >= (MR - 1) * ldc + NR);
    let pa = pa.as_ptr();
    let pb = pb.as_ptr();
    let mut acc = [_mm512_setzero_ps(); MR];
    for (ii, a) in acc.iter_mut().enumerate() {
        *a = _mm512_loadu_ps(c.as_ptr().add(ii * ldc));
    }
    for p in 0..kc {
        let vb = _mm512_loadu_ps(pb.add(p * NR));
        let arow = pa.add(p * MR);
        for (ii, a) in acc.iter_mut().enumerate() {
            let va = _mm512_set1_ps(*arow.add(ii));
            *a = _mm512_add_ps(*a, _mm512_mul_ps(va, vb));
        }
    }
    for (ii, a) in acc.iter().enumerate() {
        _mm512_storeu_ps(c.as_mut_ptr().add(ii * ldc), *a);
    }
}

/// Cached ISA tier: 0 = undetected, 1 = baseline, 2 = AVX2, 3 = AVX-512.
static ISA_TIER: AtomicUsize = AtomicUsize::new(0);

#[cfg(target_arch = "x86_64")]
fn isa_tier() -> usize {
    let cached = ISA_TIER.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let tier = if std::arch::is_x86_feature_detected!("avx512f") {
        3
    } else if std::arch::is_x86_feature_detected!("avx2") {
        2
    } else {
        1
    };
    ISA_TIER.store(tier, Ordering::Relaxed);
    tier
}

#[cfg(not(target_arch = "x86_64"))]
fn isa_tier() -> usize {
    1
}

/// Dispatches to the widest micro-kernel the host supports. All tiers
/// compute bit-identical results; dispatch is a pure speed decision.
#[inline]
fn microkernel(kc: usize, pa: &[f32], pb: &[f32], c: &mut [f32], ldc: usize) {
    match isa_tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: tier 3 is only cached after avx512f was detected.
        3 => unsafe { microkernel_avx512(kc, pa, pb, c, ldc) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: tier 2 is only cached after avx2 was detected.
        2 => unsafe { microkernel_avx2(kc, pa, pb, c, ldc) },
        _ => microkernel_generic(kc, pa, pb, c, ldc),
    }
}

/// Edge wrapper: stages a partial tile through an `MR × NR` buffer so the
/// main kernel always runs full-width; padded lanes start at `0.0`,
/// accumulate `±0.0`, and are discarded on write-back.
fn microkernel_edge(
    kc: usize,
    pa: &[f32],
    pb: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    let mut tile = [0.0f32; MR * NR];
    for ii in 0..mr {
        tile[ii * NR..][..nr].copy_from_slice(&c[ii * ldc..][..nr]);
    }
    microkernel(kc, pa, pb, &mut tile, NR);
    for ii in 0..mr {
        c[ii * ldc..][..nr].copy_from_slice(&tile[ii * NR..][..nr]);
    }
}

/// `C[m,n] = A·Bᵀ` over `f32` operands with **f64 accumulation** — the
/// kernel the p-stable LSH digest computation lowers onto.
///
/// `a` is `[m × k]` row-major (the checkpoints, one per row) and `b` is
/// `[n × k]` row-major used transposed (the `k·l` projection vectors of an
/// LSH family, one per row). Each output element is one f64 accumulator
/// chain `((0 + b₀·a₀) + b₁·a₁) + …` in strictly ascending `k` order with
/// each product computed as `(b[p] as f64) * (a[p] as f64)` — exactly the
/// fold the scalar `rpol-lsh` reference performs, so quantized bucket IDs
/// derived from this kernel are bitwise identical to the scalar path.
/// (Operand order inside the product is preserved too, so even NaN
/// payload propagation matches.) Rust never contracts `x*y + z` into an
/// FMA without explicit opt-in, so the rounding of every step matches.
///
/// The speedup comes from *where* the parallelism sits. The scalar path
/// walks one projection row at a time — a latency-bound serial f64 add
/// chain per digest — and re-streams the DRAM-resident B matrix once per
/// input. Here a 4×8 register tile of C advances per `p`: four A rows ride
/// each pass over eight B rows, so 32 independent chains hide the add
/// latency and B traffic drops 4×, which is the budget for the tall-skinny
/// shapes LSH produces (`k` ≫ `m, n`, all operands bigger than cache). All
/// twelve operand streams are read sequentially; nothing is repacked,
/// since a transposed copy of B would cost more memory traffic than it
/// saves.
///
/// Threading shards disjoint row ranges of C; each chain involves only its
/// own row of A, so results are bitwise identical for any thread count.
///
/// # Panics
///
/// Panics if operand lengths do not match `(m, n, k)`.
pub fn matmul_nt_f64acc(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    threads: usize,
) -> Vec<f64> {
    assert_eq!(a.len(), m * k, "A operand length");
    assert_eq!(b.len(), n * k, "B operand length");
    let mut c = vec![0.0f64; m * n];
    if m == 0 || n == 0 {
        return c;
    }
    if rpol_obs::global_enabled() {
        let rec = rpol_obs::global();
        rec.counter_add("tensor.gemm.calls", 1);
        rec.counter_add(
            "tensor.gemm.flops_total",
            2 * (m as u64) * (n as u64) * (k as u64),
        );
    }
    let tiles = n / 8;
    // Leftover columns past the last full tile: one direct dot, same chain.
    let tail_dot = |arow: &[f32], j: usize| -> f64 {
        let brow = &b[j * k..][..k];
        let mut acc = 0.0f64;
        for p in 0..k {
            acc += brow[p] as f64 * arow[p] as f64;
        }
        acc
    };
    // Four A rows share every B tile pass (the matrices this kernel serves
    // are DRAM-resident, so B traffic — not FLOPs — is the budget); each
    // output element still owns exactly one ascending-p mul-then-add chain
    // in `b·a` operand order.
    let rows_f64acc = |a_rows: &[f32], c_rows: &mut [f64]| {
        let nrows = a_rows.len() / k;
        let mut i = 0;
        while i + 4 <= nrows {
            let ar: [&[f32]; 4] = std::array::from_fn(|r| &a_rows[(i + r) * k..][..k]);
            for t in 0..tiles {
                let br: [&[f32]; 8] = std::array::from_fn(|l| &b[(t * 8 + l) * k..][..k]);
                let mut acc = [[0.0f64; 8]; 4];
                for p in 0..k {
                    let mut s = [0.0f64; 8];
                    for l in 0..8 {
                        s[l] = br[l][p] as f64;
                    }
                    for r in 0..4 {
                        let av = ar[r][p] as f64;
                        for l in 0..8 {
                            acc[r][l] += s[l] * av;
                        }
                    }
                }
                for r in 0..4 {
                    c_rows[(i + r) * n + t * 8..][..8].copy_from_slice(&acc[r]);
                }
            }
            for j in tiles * 8..n {
                for r in 0..4 {
                    c_rows[(i + r) * n + j] = tail_dot(ar[r], j);
                }
            }
            i += 4;
        }
        while i < nrows {
            let arow = &a_rows[i * k..][..k];
            for t in 0..tiles {
                let br: [&[f32]; 8] = std::array::from_fn(|l| &b[(t * 8 + l) * k..][..k]);
                let mut acc = [0.0f64; 8];
                for p in 0..k {
                    let av = arow[p] as f64;
                    for l in 0..8 {
                        acc[l] += br[l][p] as f64 * av;
                    }
                }
                c_rows[i * n + t * 8..][..8].copy_from_slice(&acc);
            }
            for j in tiles * 8..n {
                c_rows[i * n + j] = tail_dot(arow, j);
            }
            i += 1;
        }
    };
    if threads <= 1 || m < 2 {
        rows_f64acc(a, &mut c);
        return c;
    }
    let chunk = m.div_ceil(threads.min(m));
    rpol_exec::shared().scope(|scope| {
        for (a_rows, c_rows) in a.chunks(chunk * k).zip(c.chunks_mut(chunk * n)) {
            scope.spawn(move || rows_f64acc(a_rows, c_rows));
        }
    });
    c
}

/// The original reference kernel (ikj order, one accumulator chain per
/// element, `a == 0.0` rows skipped), kept verbatim as the ground truth
/// the blocked kernels are tested bitwise-equal against, and as the
/// baseline the GEMM benchmarks compare speedups to.
pub fn matmul_naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A operand length");
    assert_eq!(b.len(), k * n, "B operand length");
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg32;

    fn randn(len: usize, rng: &mut Pcg32) -> Vec<f32> {
        (0..len).map(|_| rng.next_normal()).collect()
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn blocked_matches_naive_bitwise() {
        let mut rng = Pcg32::seed_from(11);
        for &(m, n, k) in &[(1, 1, 1), (3, 5, 7), (17, 9, 300), (70, 520, 33)] {
            let a = randn(m * k, &mut rng);
            let b = randn(k * n, &mut rng);
            let fast = matmul(m, n, k, &a, Trans::No, &b, Trans::No, 1);
            let slow = matmul_naive(m, n, k, &a, &b);
            assert_eq!(bits(&fast), bits(&slow), "{m}x{n}x{k}");
        }
    }

    #[test]
    fn fused_transposes_match_explicit() {
        let mut rng = Pcg32::seed_from(12);
        let (m, n, k) = (13, 21, 40);
        let a = randn(m * k, &mut rng);
        let bt = randn(n * k, &mut rng); // stored [n, k]
        let mut b = vec![0.0f32; k * n];
        for j in 0..n {
            for p in 0..k {
                b[p * n + j] = bt[j * k + p];
            }
        }
        let nt = matmul(m, n, k, &a, Trans::No, &bt, Trans::Yes, 1);
        let plain = matmul(m, n, k, &a, Trans::No, &b, Trans::No, 1);
        assert_eq!(bits(&nt), bits(&plain));

        let at = randn(k * m, &mut rng); // stored [k, m]
        let mut a2 = vec![0.0f32; m * k];
        for p in 0..k {
            for i in 0..m {
                a2[i * k + p] = at[p * m + i];
            }
        }
        let tn = matmul(m, n, k, &at, Trans::Yes, &b, Trans::No, 1);
        let plain2 = matmul(m, n, k, &a2, Trans::No, &b, Trans::No, 1);
        assert_eq!(bits(&tn), bits(&plain2));
    }

    #[test]
    fn accumulate_mode_preloads_c() {
        let mut rng = Pcg32::seed_from(13);
        let (m, n, k) = (6, 10, 9);
        let a = randn(m * k, &mut rng);
        let b = randn(k * n, &mut rng);
        let init = randn(m * n, &mut rng);
        let mut c = init.clone();
        gemm_into(m, n, k, &a, Trans::No, &b, Trans::No, &mut c, 1);
        // Reference: same chain starting from the preloaded value.
        for i in 0..m {
            for j in 0..n {
                let mut acc = init[i * n + j];
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                assert_eq!(c[i * n + j].to_bits(), acc.to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn thread_count_is_bitwise_invisible() {
        let mut rng = Pcg32::seed_from(14);
        let (m, n, k) = (3 * MC + 5, 33, 129);
        let a = randn(m * k, &mut rng);
        let b = randn(k * n, &mut rng);
        let single = matmul(m, n, k, &a, Trans::No, &b, Trans::No, 1);
        for threads in [2, 3, 8] {
            let multi = matmul(m, n, k, &a, Trans::No, &b, Trans::No, threads);
            assert_eq!(bits(&single), bits(&multi), "{threads} threads");
        }
    }

    #[test]
    fn threaded_gemm_reuses_the_shared_executor() {
        let mut rng = Pcg32::seed_from(15);
        let (m, n, k) = (2 * MC, 24, 65);
        let a = randn(m * k, &mut rng);
        let b = randn(k * n, &mut rng);
        let serial = matmul(m, n, k, &a, Trans::No, &b, Trans::No, 1);
        let pool_before = std::sync::Arc::as_ptr(rpol_exec::shared());
        for _ in 0..3 {
            let multi = matmul(m, n, k, &a, Trans::No, &b, Trans::No, 4);
            assert_eq!(bits(&serial), bits(&multi));
            let f64acc = matmul_nt_f64acc(m, 9, k, &a, &b[..9 * k], 4);
            let f64ref = matmul_nt_f64acc(m, 9, k, &a, &b[..9 * k], 1);
            assert_eq!(f64acc, f64ref);
        }
        // Every call scheduled onto the same long-lived pool: no per-call
        // thread spawns anywhere in the threaded paths.
        assert_eq!(pool_before, std::sync::Arc::as_ptr(rpol_exec::shared()));
    }
}
