//! Numeric substrate for the RPoL reproduction.
//!
//! This crate provides the small set of numerics the rest of the workspace
//! builds on:
//!
//! * [`Shape`] — dimension bookkeeping for dense arrays,
//! * [`Tensor`] — a dense, row-major `f32` n-d array with the elementwise,
//!   matrix and reduction operations needed for neural-network training,
//! * [`gemm`] — the cache-blocked, packed matrix-multiply backend behind
//!   [`Tensor::matmul`] and its fused-transpose variants; every kernel is
//!   bitwise deterministic across blockings and thread counts because
//!   checkpoint commitments hash exact `f32` bytes,
//! * [`quant`] — the deterministic bf16-pattern weight quantizer behind
//!   RPoLv3's halved commitment and wire bytes,
//! * [`scratch`] — a recycling pool for activation-sized work buffers so
//!   steady-state training steps run allocation-free,
//! * [`rng::Pcg32`] / [`rng::SplitMix64`] — small, fully deterministic
//!   pseudo-random generators (protocol-critical randomness in RPoL must be
//!   reproducible by the verifier, so we do not rely on OS entropy),
//! * [`stats`] — summary statistics, the normal CDF, and a
//!   Kolmogorov–Smirnov normality test used to validate the paper's claim
//!   that DNN reproduction errors are normally distributed (Fig. 4).
//!
//! # Examples
//!
//! ```
//! use rpol_tensor::{Tensor, rng::Pcg32};
//!
//! let mut rng = Pcg32::seed_from(42);
//! let a = Tensor::randn(&[2, 3], &mut rng);
//! let b = Tensor::randn(&[3, 2], &mut rng);
//! let c = a.matmul(&b);
//! assert_eq!(c.shape().dims(), &[2, 2]);
//! ```

pub mod gemm;
pub mod quant;
pub mod rng;
pub mod scratch;
pub mod shape;
pub mod stats;
pub mod tensor;

pub use shape::Shape;
pub use tensor::Tensor;
