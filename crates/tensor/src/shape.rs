//! Dimension bookkeeping for dense row-major arrays.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The dimensions of a dense, row-major tensor.
///
/// A `Shape` is an ordered list of dimension sizes. The empty shape `[]`
/// denotes a scalar with one element.
///
/// # Examples
///
/// ```
/// use rpol_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.offset(&[1, 2, 3]), 23);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero; zero-sized tensors are never
    /// meaningful in this workspace and almost always indicate a bug.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.iter().all(|&d| d > 0),
            "zero-sized dimension in shape {dims:?}"
        );
        Self {
            dims: dims.to_vec(),
        }
    }

    /// Creates a scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Self { dims: Vec::new() }
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// The total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape holds no elements. Always `false` by construction,
    /// present for API completeness alongside [`Shape::len`].
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The size of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }

    /// Computes the linear row-major offset for a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank mismatches or any coordinate is out of range.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.dims.len()
        );
        let mut off = 0;
        for (i, (&ix, &d)) in index.iter().zip(&self.dims).enumerate() {
            assert!(
                ix < d,
                "index {ix} out of range for dimension {i} (size {d})"
            );
            off = off * d + ix;
        }
        off
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    fn offsets_are_row_major() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.offset(&[0, 0]), 0);
        assert_eq!(s.offset(&[0, 2]), 2);
        assert_eq!(s.offset(&[1, 0]), 3);
        assert_eq!(s.offset(&[1, 2]), 5);
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn zero_dim_rejected() {
        Shape::new(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_rejected() {
        Shape::new(&[2, 3]).offset(&[0, 3]);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn wrong_rank_rejected() {
        Shape::new(&[2, 3]).offset(&[1]);
    }

    #[test]
    fn display_and_debug_nonempty() {
        let s = Shape::new(&[4, 5]);
        assert_eq!(format!("{s}"), "[4, 5]");
        assert_eq!(format!("{s:?}"), "Shape[4, 5]");
    }
}
