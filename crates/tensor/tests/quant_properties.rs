//! Property-based tests for the bf16 lattice quantizer (DESIGN.md §13).
//!
//! The RPoLv3 data plane leans on two properties of truncation
//! quantization: it is idempotent (re-quantizing never drifts, so worker
//! and verifier walk the same lattice), and it is a pure per-element bit
//! operation (so any parallel schedule produces the same bytes).

use proptest::prelude::*;
use rpol_exec::Executor;
use rpol_tensor::quant::{
    bf16_image, dequantize_bf16, dequantize_slice, is_bf16_lattice, quantize_bf16, quantize_slice,
    snap_to_bf16,
};

/// Reinterprets raw bit patterns as f32s: covers normals, subnormals,
/// zeros, infinities and NaNs — the quantizer must be total over all.
fn from_bits(patterns: &[u32]) -> Vec<f32> {
    patterns.iter().map(|&b| f32::from_bits(b)).collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|w| w.to_bits()).collect()
}

proptest! {
    #[test]
    fn round_trip_is_idempotent(patterns in proptest::collection::vec(any::<u32>(), 64)) {
        let weights = from_bits(&patterns);
        // One snap lands on the lattice; a second snap is the identity.
        let once = bf16_image(&weights);
        prop_assert!(is_bf16_lattice(&once));
        let twice = bf16_image(&once);
        prop_assert_eq!(bits(&once), bits(&twice));
        // Pack → unpack reproduces the snapped image bit-for-bit, so
        // 2-byte storage of lattice checkpoints is lossless.
        prop_assert_eq!(bits(&dequantize_slice(&quantize_slice(&weights))), bits(&once));
    }

    #[test]
    fn scalar_and_slice_paths_agree(patterns in proptest::collection::vec(any::<u32>(), 33)) {
        let weights = from_bits(&patterns);
        let slice = quantize_slice(&weights);
        for (i, &w) in weights.iter().enumerate() {
            prop_assert_eq!(slice[i], quantize_bf16(w));
            prop_assert_eq!(
                dequantize_bf16(slice[i]).to_bits(),
                w.to_bits() & 0xFFFF_0000
            );
        }
    }

    #[test]
    fn snapping_is_deterministic_across_thread_counts(
        patterns in proptest::collection::vec(any::<u32>(), 96),
    ) {
        let weights = from_bits(&patterns);
        // Serial reference.
        let mut reference = weights.clone();
        snap_to_bf16(&mut reference);
        // Chunked across executors of every width: same bytes, any schedule.
        for threads in [1usize, 2, 8] {
            let exec = Executor::new(threads);
            let chunks: Vec<&[f32]> = weights.chunks(17).collect();
            let snapped: Vec<Vec<f32>> =
                exec.run_indexed(chunks.len(), |i| bf16_image(chunks[i]));
            let flat: Vec<f32> = snapped.into_iter().flatten().collect();
            prop_assert_eq!(bits(&flat), bits(&reference), "threads = {}", threads);
        }
    }
}
