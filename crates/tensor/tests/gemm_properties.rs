//! Bitwise-equivalence properties for the blocked GEMM backend.
//!
//! The blocked/packed/threaded kernels are only admissible if they produce
//! the *exact* bytes of the retained naive reference kernel — RPoL hashes
//! checkpoints, so "numerically close" is not close enough. These tests
//! sweep degenerate, prime, tall-skinny and wide-flat shapes plus
//! proptest-driven random ones, and check that thread count is invisible.

use proptest::prelude::*;
use rpol_tensor::gemm::{self, Trans, MC};
use rpol_tensor::rng::Pcg32;
use rpol_tensor::Tensor;

fn randn(len: usize, rng: &mut Pcg32) -> Vec<f32> {
    (0..len).map(|_| rng.next_normal()).collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Shapes chosen to stress every tiling edge: unit, primes (never aligned
/// to MR/NR/MC/KC/NC), tall-skinny, wide-flat, and exact block multiples.
const SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (1, 1, 513),
    (2, 3, 1),
    (7, 11, 13),
    (31, 37, 41),
    (257, 3, 5),   // tall-skinny
    (3, 1031, 7),  // wide-flat
    (4, 8, 256),   // exact MR × NR × KC
    (64, 512, 64), // exact MC × NC blocks
    (65, 513, 257),
];

#[test]
fn blocked_kernel_is_bitwise_equal_to_naive_reference() {
    let mut rng = Pcg32::seed_from(101);
    for &(m, n, k) in SHAPES {
        let a = randn(m * k, &mut rng);
        let b = randn(k * n, &mut rng);
        let fast = gemm::matmul(m, n, k, &a, Trans::No, &b, Trans::No, 1);
        let slow = gemm::matmul_naive(m, n, k, &a, &b);
        assert_eq!(bits(&fast), bits(&slow), "shape {m}x{n}x{k}");
    }
}

#[test]
fn naive_zero_skip_is_bitwise_invisible() {
    // The reference kernel skips `a == 0.0` rows; the blocked kernel does
    // not. Inputs with many exact zeros must still agree bitwise.
    let mut rng = Pcg32::seed_from(102);
    let (m, n, k) = (23, 29, 31);
    let mut a = randn(m * k, &mut rng);
    for (i, v) in a.iter_mut().enumerate() {
        if i % 3 == 0 {
            *v = 0.0;
        }
    }
    let b = randn(k * n, &mut rng);
    let fast = gemm::matmul(m, n, k, &a, Trans::No, &b, Trans::No, 1);
    let slow = gemm::matmul_naive(m, n, k, &a, &b);
    assert_eq!(bits(&fast), bits(&slow));
}

#[test]
fn thread_count_is_bitwise_invisible_across_shapes() {
    let mut rng = Pcg32::seed_from(103);
    for &(m, n, k) in &[(2 * MC, 17, 19), (3 * MC + 5, 65, 300), (257, 513, 31)] {
        let a = randn(m * k, &mut rng);
        let b = randn(k * n, &mut rng);
        let single = gemm::matmul(m, n, k, &a, Trans::No, &b, Trans::No, 1);
        for threads in [2, 8] {
            let multi = gemm::matmul(m, n, k, &a, Trans::No, &b, Trans::No, threads);
            assert_eq!(bits(&single), bits(&multi), "{m}x{n}x{k} @ {threads}t");
        }
    }
}

#[test]
fn fused_transpose_variants_match_materialized_transpose() {
    let mut rng = Pcg32::seed_from(104);
    for &(m, n, k) in &[(1, 1, 1), (7, 11, 13), (33, 65, 129)] {
        let a = Tensor::from_vec(&[m, k], randn(m * k, &mut rng));
        let b = Tensor::from_vec(&[k, n], randn(k * n, &mut rng));
        let bt = b.transpose(); // stored [n, k]
        let at = a.transpose(); // stored [k, m]
        let plain = a.matmul(&b);
        assert_eq!(
            bits(a.matmul_nt(&bt).data()),
            bits(plain.data()),
            "nt {m}x{n}x{k}"
        );
        assert_eq!(
            bits(at.matmul_tn(&b).data()),
            bits(plain.data()),
            "tn {m}x{n}x{k}"
        );
    }
}

#[test]
fn sparse_entry_point_matches_dense() {
    // matmul_sparse keeps the zero-skip fast path; for finite inputs it
    // must still agree bitwise with the dense kernel.
    let mut rng = Pcg32::seed_from(105);
    let a =
        Tensor::from_vec(&[9, 14], randn(9 * 14, &mut rng)).map(|v| if v < 0.0 { 0.0 } else { v });
    let b = Tensor::from_vec(&[14, 6], randn(14 * 6, &mut rng));
    assert_eq!(bits(a.matmul_sparse(&b).data()), bits(a.matmul(&b).data()));
}

#[test]
fn blocked_transpose_is_an_involution_and_matches_indexing() {
    let mut rng = Pcg32::seed_from(106);
    for &(r, c) in &[(1, 1), (1, 97), (97, 1), (31, 33), (130, 70)] {
        let t = Tensor::from_vec(&[r, c], randn(r * c, &mut rng));
        let tt = t.transpose();
        for i in 0..r {
            for j in 0..c {
                assert_eq!(t.at(&[i, j]).to_bits(), tt.at(&[j, i]).to_bits());
            }
        }
        assert_eq!(bits(tt.transpose().data()), bits(t.data()), "{r}x{c}");
    }
}

proptest! {
    #[test]
    fn random_shapes_match_naive_bitwise(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..60,
        seed in proptest::arbitrary::any::<u32>(),
    ) {
        let mut rng = Pcg32::seed_from(seed as u64);
        let a = randn(m * k, &mut rng);
        let b = randn(k * n, &mut rng);
        let fast = gemm::matmul(m, n, k, &a, Trans::No, &b, Trans::No, 1);
        let slow = gemm::matmul_naive(m, n, k, &a, &b);
        prop_assert_eq!(bits(&fast), bits(&slow));
    }

    /// The f64-accumulating NT kernel must reproduce the exact f64 bits of
    /// the scalar fold `((0 + b₀·a₀) + b₁·a₁) + …` (ascending k, product
    /// written `b·a`) for every output, for any thread count — this is the
    /// chain the LSH digest path commits to.
    #[test]
    fn nt_f64acc_matches_scalar_chain_bitwise(
        m in 1usize..24,
        n in 1usize..48,
        k in 1usize..80,
        seed in proptest::arbitrary::any::<u32>(),
    ) {
        let mut rng = Pcg32::seed_from(0xf64acc ^ seed as u64);
        let a = randn(m * k, &mut rng);
        let b = randn(n * k, &mut rng);
        let one = gemm::matmul_nt_f64acc(m, n, k, &a, &b, 1);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for p in 0..k {
                    acc += b[j * k + p] as f64 * a[i * k + p] as f64;
                }
                prop_assert_eq!(one[i * n + j].to_bits(), acc.to_bits());
            }
        }
        for threads in [2usize, 3, 8] {
            let multi = gemm::matmul_nt_f64acc(m, n, k, &a, &b, threads);
            let ob: Vec<u64> = one.iter().map(|x| x.to_bits()).collect();
            let mb: Vec<u64> = multi.iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(ob, mb, "threads = {}", threads);
        }
    }

    #[test]
    fn random_accumulate_preserves_preloaded_chain(
        m in 1usize..20,
        n in 1usize..20,
        k in 1usize..40,
        seed in proptest::arbitrary::any::<u32>(),
    ) {
        let mut rng = Pcg32::seed_from(0x5eed ^ seed as u64);
        let a = randn(m * k, &mut rng);
        let b = randn(k * n, &mut rng);
        let init = randn(m * n, &mut rng);
        let mut c = init.clone();
        gemm::gemm_into(m, n, k, &a, Trans::No, &b, Trans::No, &mut c, 1);
        for i in 0..m {
            for j in 0..n {
                let mut acc = init[i * n + j];
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                prop_assert_eq!(c[i * n + j].to_bits(), acc.to_bits());
            }
        }
    }
}
