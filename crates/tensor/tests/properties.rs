//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use rpol_tensor::rng::{Pcg32, SplitMix64};
use rpol_tensor::{stats, Shape, Tensor};

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, len)
}

proptest! {
    #[test]
    fn shape_offset_bijective(dims in proptest::collection::vec(1usize..5, 1..4)) {
        let shape = Shape::new(&dims);
        let mut seen = std::collections::HashSet::new();
        let mut index = vec![0usize; dims.len()];
        loop {
            let off = shape.offset(&index);
            prop_assert!(off < shape.len());
            prop_assert!(seen.insert(off), "offset collision at {index:?}");
            // Advance the multi-index odometer.
            let mut i = dims.len();
            loop {
                if i == 0 {
                    break;
                }
                i -= 1;
                index[i] += 1;
                if index[i] < dims[i] {
                    break;
                }
                index[i] = 0;
                if i == 0 {
                    prop_assert_eq!(seen.len(), shape.len());
                    return Ok(());
                }
            }
            if index.iter().all(|&x| x == 0) {
                break;
            }
        }
        prop_assert_eq!(seen.len(), shape.len());
    }

    #[test]
    fn addition_commutes(a in finite_vec(16), b in finite_vec(16)) {
        let ta = Tensor::from_vec(&[4, 4], a);
        let tb = Tensor::from_vec(&[4, 4], b);
        prop_assert_eq!(&ta + &tb, &tb + &ta);
    }

    #[test]
    fn axpy_matches_scalar_math(a in finite_vec(8), b in finite_vec(8), alpha in -10.0f32..10.0) {
        let mut t = Tensor::from_vec(&[8], a.clone());
        let tb = Tensor::from_vec(&[8], b.clone());
        t.axpy(alpha, &tb);
        for i in 0..8 {
            prop_assert!((t.data()[i] - (a[i] + alpha * b[i])).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in finite_vec(6), b in finite_vec(6), c in finite_vec(6)
    ) {
        // A·(B + C) == A·B + A·C for 2x3 · 3x2 shapes.
        let ta = Tensor::from_vec(&[2, 3], a);
        let tb = Tensor::from_vec(&[3, 2], b);
        let tc = Tensor::from_vec(&[3, 2], c);
        let lhs = ta.matmul(&(&tb + &tc));
        let rhs = &ta.matmul(&tb) + &ta.matmul(&tc);
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 0.3 + 1e-3 * x.abs().max(y.abs()),
                "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_preserves_matmul(a in finite_vec(6), b in finite_vec(6)) {
        // (A·B)ᵀ == Bᵀ·Aᵀ.
        let ta = Tensor::from_vec(&[2, 3], a);
        let tb = Tensor::from_vec(&[3, 2], b);
        let lhs = ta.matmul(&tb).transpose();
        let rhs = tb.transpose().matmul(&ta.transpose());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-2);
        }
    }

    #[test]
    fn euclidean_distance_is_a_metric(
        a in finite_vec(10), b in finite_vec(10), c in finite_vec(10)
    ) {
        let ta = Tensor::from_vec(&[10], a);
        let tb = Tensor::from_vec(&[10], b);
        let tc = Tensor::from_vec(&[10], c);
        let dab = ta.euclidean_distance(&tb);
        let dba = tb.euclidean_distance(&ta);
        prop_assert!((dab - dba).abs() < 1e-4, "symmetry");
        prop_assert!(ta.euclidean_distance(&ta) == 0.0, "identity");
        let dac = ta.euclidean_distance(&tc);
        let dcb = tc.euclidean_distance(&tb);
        prop_assert!(dab <= dac + dcb + 1e-3, "triangle inequality");
    }

    #[test]
    fn rng_streams_deterministic(seed in any::<u64>()) {
        let mut a = Pcg32::seed_from(seed);
        let mut b = Pcg32::seed_from(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut s1 = SplitMix64::new(seed);
        let mut s2 = SplitMix64::new(seed);
        prop_assert_eq!(s1.next_u64(), s2.next_u64());
    }

    #[test]
    fn next_below_in_range(seed in any::<u64>(), bound in 1u32..10_000) {
        let mut rng = Pcg32::seed_from(seed);
        for _ in 0..32 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    #[test]
    fn running_stats_matches_batch(xs in proptest::collection::vec(-50.0f32..50.0, 2..50)) {
        let mut rs = stats::RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        prop_assert!((rs.mean() - stats::mean(&xs)).abs() < 1e-2);
        prop_assert!((rs.std_dev() - stats::std_dev(&xs)).abs() < 1e-2);
        prop_assert_eq!(rs.max(), stats::max(&xs));
        prop_assert_eq!(rs.min(), stats::min(&xs));
    }

    #[test]
    fn norm_cdf_monotone_and_bounded(x in -10.0f64..10.0, dx in 0.0f64..5.0) {
        let a = stats::norm_cdf(x);
        let b = stats::norm_cdf(x + dx);
        prop_assert!((0.0..=1.0).contains(&a));
        prop_assert!(b + 1e-12 >= a);
        // Symmetry: Φ(x) + Φ(−x) = 1.
        prop_assert!((stats::norm_cdf(x) + stats::norm_cdf(-x) - 1.0).abs() < 1e-6);
    }
}
