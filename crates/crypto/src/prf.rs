//! The keyed pseudo-random function at the heart of RPoL's determinism.
//!
//! Two protocol components consume PRF output (§V-A, §V-B):
//!
//! 1. **Stochastic-yet-deterministic batch selection.** A worker with nonce
//!    `N_t^w` selects the `n`-th element of training step `m` as
//!    `PRF(N_t^w · m + n) mod |D_w|`. The manager can replay the exact same
//!    selection during verification.
//! 2. **AMLayer weight expansion.** The pool manager's blockchain address
//!    seeds a PRF stream that is expanded into the (non-trainable) weights
//!    of the address-encoded mapping layer, making the layer recomputable
//!    by every consensus node.
//!
//! The PRF is HMAC-SHA-256 in counter mode, which also provides an
//! arbitrary-length keystream (`fill_bytes`) and derived numeric streams.

use crate::hmac::hmac_sha256;
use serde::{Deserialize, Serialize};

/// A keyed PRF based on HMAC-SHA-256.
///
/// # Examples
///
/// ```
/// use rpol_crypto::Prf;
///
/// let prf = Prf::new(b"worker-7-epoch-3");
/// // Deterministic: the verifier recomputes the same indices.
/// assert_eq!(prf.index(5, 10_000), Prf::new(b"worker-7-epoch-3").index(5, 10_000));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Prf {
    key: Vec<u8>,
}

impl Prf {
    /// Creates a PRF keyed by `key`.
    pub fn new(key: &[u8]) -> Self {
        Self { key: key.to_vec() }
    }

    /// Creates a PRF keyed by a 64-bit nonce (the per-worker per-epoch
    /// nonce `N_t^w` from §V-B).
    pub fn from_nonce(nonce: u64) -> Self {
        Self::new(&nonce.to_be_bytes())
    }

    /// Evaluates the PRF on a 128-bit input, returning a 64-bit output.
    pub fn eval(&self, input: u128) -> u64 {
        hmac_sha256(&self.key, &input.to_be_bytes()).to_u64()
    }

    /// The paper's data-selection map: `PRF(input) mod modulus`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus == 0`.
    pub fn index(&self, input: u128, modulus: u64) -> u64 {
        assert!(modulus > 0, "modulus must be positive");
        self.eval(input) % modulus
    }

    /// Fills `out` with keystream bytes for stream id `stream`
    /// (HMAC in counter mode).
    pub fn fill_bytes(&self, stream: u64, out: &mut [u8]) {
        let mut counter: u64 = 0;
        let mut offset = 0;
        while offset < out.len() {
            let mut msg = [0u8; 16];
            msg[..8].copy_from_slice(&stream.to_be_bytes());
            msg[8..].copy_from_slice(&counter.to_be_bytes());
            let block = hmac_sha256(&self.key, &msg);
            let take = (out.len() - offset).min(32);
            out[offset..offset + take].copy_from_slice(&block.as_bytes()[..take]);
            offset += take;
            counter += 1;
        }
    }

    /// Derives a 64-bit seed for stream id `stream`, suitable for seeding a
    /// [`rpol_tensor::rng::Pcg32`]-style generator.
    ///
    /// [`rpol_tensor::rng::Pcg32`]: https://docs.rs/rpol-tensor
    pub fn derive_seed(&self, stream: u64) -> u64 {
        let mut buf = [0u8; 8];
        self.fill_bytes(stream, &mut buf);
        u64::from_be_bytes(buf)
    }
}

/// Computes the §V-B batch for one training step.
///
/// Returns the dataset indices selected for step `m` (0-based) with batch
/// size `batch`, drawn from a sub-dataset of `len` elements:
/// `PRF(N · m + n) mod len` for `n` in `0..batch`. Duplicate indices are
/// possible, exactly as with sampling-with-replacement SGD.
///
/// # Panics
///
/// Panics if `len == 0` or `batch == 0`.
pub fn deterministic_batch(prf: &Prf, step: u64, batch: usize, len: u64) -> Vec<usize> {
    assert!(len > 0, "empty sub-dataset");
    assert!(batch > 0, "empty batch");
    (0..batch as u64)
        // `step + 1` keeps step 0 from degenerating to PRF(n) for every
        // nonce-free position; the multiplication mirrors Eq. PRF(N·m + n).
        .map(|n| prf.index(((step + 1) as u128) << 64 | n as u128, len) as usize)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a = Prf::new(b"seed");
        let b = Prf::new(b"seed");
        for i in 0..20u128 {
            assert_eq!(a.eval(i), b.eval(i));
        }
    }

    #[test]
    fn distinct_keys_distinct_streams() {
        let a = Prf::new(b"k1");
        let b = Prf::new(b"k2");
        let collisions = (0..100u128).filter(|&i| a.eval(i) == b.eval(i)).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn index_in_range() {
        let prf = Prf::from_nonce(42);
        for i in 0..1000u128 {
            assert!(prf.index(i, 77) < 77);
        }
    }

    #[test]
    fn index_roughly_uniform() {
        let prf = Prf::from_nonce(7);
        let mut counts = [0usize; 10];
        for i in 0..50_000u128 {
            counts[prf.index(i, 10) as usize] += 1;
        }
        for &c in &counts {
            assert!((4_300..5_700).contains(&c), "skewed: {counts:?}");
        }
    }

    #[test]
    fn fill_bytes_extends_prefix() {
        let prf = Prf::new(b"stream");
        let mut a = [0u8; 100];
        let mut b = [0u8; 40];
        prf.fill_bytes(3, &mut a);
        prf.fill_bytes(3, &mut b);
        assert_eq!(&a[..40], &b[..]);
        let mut c = [0u8; 40];
        prf.fill_bytes(4, &mut c);
        assert_ne!(&b, &c);
    }

    #[test]
    fn batches_differ_across_steps() {
        let prf = Prf::from_nonce(99);
        let b0 = deterministic_batch(&prf, 0, 32, 10_000);
        let b1 = deterministic_batch(&prf, 1, 32, 10_000);
        assert_ne!(b0, b1);
        assert!(b0.iter().all(|&i| i < 10_000));
        // Replayable by the verifier.
        assert_eq!(b0, deterministic_batch(&Prf::from_nonce(99), 0, 32, 10_000));
    }

    #[test]
    fn batches_differ_across_nonces() {
        let b0 = deterministic_batch(&Prf::from_nonce(1), 0, 16, 1000);
        let b1 = deterministic_batch(&Prf::from_nonce(2), 0, 16, 1000);
        assert_ne!(b0, b1);
    }

    #[test]
    fn derived_seeds_differ_by_stream() {
        let prf = Prf::new(b"x");
        assert_ne!(prf.derive_seed(0), prf.derive_seed(1));
    }
}
