//! Canonical `f32` ↔ little-endian byte framing.
//!
//! Every protocol surface that serializes model weights — checkpoint
//! digests, wire messages, transport frames — hashes or ships the
//! little-endian byte image of an `f32` slice. Doing that one element at a
//! time (`for w in weights { out.put_f32_le(w) }`) costs a bounds check,
//! a 4-byte store and a length bump per weight; for multi-megabyte models
//! the framing alone rivals the hashing it feeds. This module provides the
//! fast path once, for everyone:
//!
//! * on little-endian targets the byte image of `&[f32]` *is* the slice's
//!   memory, so [`f32s_as_le_bytes`] is a zero-copy reinterpretation and
//!   [`copy_f32s_from_le`] is a single `memcpy`;
//! * on big-endian targets the same functions fall back to chunked
//!   conversion, so the wire format is identical everywhere.
//!
//! The reinterpretations are sound because `f32` and `u8` have no invalid
//! bit patterns and `u8` has alignment 1; this is the same contract the
//! `bytemuck` crate enforces for these types, implemented locally because
//! the workspace builds offline.

use std::borrow::Cow;

/// The little-endian byte image of an `f32` slice.
///
/// Zero-copy (`Cow::Borrowed`) on little-endian targets; an owned chunked
/// conversion on big-endian ones. The returned bytes are exactly what
/// `src.iter().flat_map(|x| x.to_le_bytes())` would produce.
///
/// # Examples
///
/// ```
/// use rpol_crypto::bytes::f32s_as_le_bytes;
///
/// let bytes = f32s_as_le_bytes(&[1.0f32]);
/// assert_eq!(&bytes[..], &1.0f32.to_le_bytes());
/// ```
pub fn f32s_as_le_bytes(src: &[f32]) -> Cow<'_, [u8]> {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: u8 has alignment 1 and no invalid bit patterns; the
        // region is exactly the slice's own allocation.
        Cow::Borrowed(unsafe {
            std::slice::from_raw_parts(src.as_ptr().cast::<u8>(), src.len() * 4)
        })
    }
    #[cfg(target_endian = "big")]
    {
        let mut out = Vec::with_capacity(src.len() * 4);
        extend_f32s_le(&mut out, src);
        Cow::Owned(out)
    }
}

/// Appends the little-endian byte image of `src` to `out` in cache-sized
/// chunks (never per-element).
pub fn extend_f32s_le(out: &mut Vec<u8>, src: &[f32]) {
    #[cfg(target_endian = "little")]
    {
        out.extend_from_slice(&f32s_as_le_bytes(src));
    }
    #[cfg(target_endian = "big")]
    {
        out.reserve(src.len() * 4);
        let mut staging = [0u8; 1024];
        for chunk in src.chunks(staging.len() / 4) {
            for (dst, &x) in staging.chunks_exact_mut(4).zip(chunk) {
                dst.copy_from_slice(&x.to_le_bytes());
            }
            out.extend_from_slice(&staging[..chunk.len() * 4]);
        }
    }
}

/// The mutable byte view of an `f32` slice, for bulk-copying little-endian
/// wire bytes straight into place (follow with [`le_fixup_in_place`]).
pub fn f32s_as_bytes_mut(dst: &mut [f32]) -> &mut [u8] {
    // SAFETY: u8 has alignment 1 and no invalid bit patterns, and every
    // bit pattern is a valid f32; the region is the slice's own memory.
    unsafe { std::slice::from_raw_parts_mut(dst.as_mut_ptr().cast::<u8>(), dst.len() * 4) }
}

/// Repairs element order after raw little-endian bytes were copied into an
/// `f32` slice's memory: a no-op on little-endian targets, a byte swap on
/// big-endian ones.
pub fn le_fixup_in_place(dst: &mut [f32]) {
    #[cfg(target_endian = "big")]
    for x in dst.iter_mut() {
        *x = f32::from_bits(x.to_bits().swap_bytes());
    }
    #[cfg(target_endian = "little")]
    let _ = dst;
}

/// Decodes a little-endian byte image into `f32`s, appending to `out`.
///
/// # Panics
///
/// Panics unless `bytes.len()` is a multiple of 4.
pub fn copy_f32s_from_le(bytes: &[u8], out: &mut Vec<f32>) {
    assert!(
        bytes.len().is_multiple_of(4),
        "byte length {} not a multiple of 4",
        bytes.len()
    );
    let n = bytes.len() / 4;
    let start = out.len();
    out.resize(start + n, 0.0);
    let dst = &mut out[start..];
    f32s_as_bytes_mut(dst).copy_from_slice(bytes);
    le_fixup_in_place(dst);
}

/// Appends the packed little-endian **bf16 image** of `src` to `out`: the
/// top 16 bits of each `f32` (sign, exponent, 7 mantissa bits), 2 bytes
/// per weight. For weights already on the bf16 lattice (low 16 bits zero,
/// the RPoLv3 checkpoint invariant) this framing is lossless and exactly
/// halves the bytes hashed and shipped; for arbitrary weights it is the
/// canonical truncating quantizer.
pub fn extend_bf16_le(out: &mut Vec<u8>, src: &[f32]) {
    out.reserve(src.len() * 2);
    let mut staging = [0u8; 1024];
    for chunk in src.chunks(staging.len() / 2) {
        for (dst, &x) in staging.chunks_exact_mut(2).zip(chunk) {
            dst.copy_from_slice(&((x.to_bits() >> 16) as u16).to_le_bytes());
        }
        out.extend_from_slice(&staging[..chunk.len() * 2]);
    }
}

/// The packed little-endian bf16 image of an `f32` slice (see
/// [`extend_bf16_le`]).
pub fn bf16_as_le_bytes(src: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(src.len() * 2);
    extend_bf16_le(&mut out, src);
    out
}

/// Decodes a packed little-endian bf16 image back into exact `f32` lattice
/// points (low 16 bits zero), appending to `out`.
///
/// # Panics
///
/// Panics unless `bytes.len()` is a multiple of 2.
pub fn copy_bf16_from_le(bytes: &[u8], out: &mut Vec<f32>) {
    assert!(
        bytes.len().is_multiple_of(2),
        "byte length {} not a multiple of 2",
        bytes.len()
    );
    out.reserve(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        let q = u16::from_le_bytes([pair[0], pair[1]]);
        out.push(f32::from_bits((q as u32) << 16));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_image_matches_per_element_encoding() {
        let xs = [0.0f32, -1.5, f32::MIN_POSITIVE, 3.25e7, -0.0];
        let expect: Vec<u8> = xs.iter().flat_map(|x| x.to_le_bytes()).collect();
        assert_eq!(&f32s_as_le_bytes(&xs)[..], &expect[..]);
        let mut appended = vec![0xAAu8];
        extend_f32s_le(&mut appended, &xs);
        assert_eq!(&appended[1..], &expect[..]);
    }

    #[test]
    fn roundtrip_preserves_bits() {
        let xs = [f32::NAN, f32::INFINITY, -0.0, 1.0, f32::from_bits(1)];
        let bytes = f32s_as_le_bytes(&xs).into_owned();
        let mut back = Vec::new();
        copy_f32s_from_le(&bytes, &mut back);
        let bits: Vec<u32> = back.iter().map(|x| x.to_bits()).collect();
        let expect: Vec<u32> = xs.iter().map(|x| x.to_bits()).collect();
        assert_eq!(bits, expect);
    }

    #[test]
    fn copy_appends_after_existing() {
        let mut out = vec![7.0f32];
        copy_f32s_from_le(&2.5f32.to_le_bytes(), &mut out);
        assert_eq!(out, [7.0, 2.5]);
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn ragged_byte_length_rejected() {
        copy_f32s_from_le(&[1, 2, 3], &mut Vec::new());
    }

    #[test]
    fn bf16_image_is_lossless_on_the_lattice() {
        let xs: Vec<f32> = [1.0f32, -2.5, 0.0, -0.0, 3.0e-20, f32::INFINITY]
            .iter()
            .map(|x| f32::from_bits(x.to_bits() & 0xFFFF_0000))
            .collect();
        let packed = bf16_as_le_bytes(&xs);
        assert_eq!(packed.len(), xs.len() * 2);
        let mut back = Vec::new();
        copy_bf16_from_le(&packed, &mut back);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back), bits(&xs));
    }

    #[test]
    fn bf16_image_truncates_off_lattice_values() {
        let x = f32::from_bits(0x3F80_1234);
        let mut back = Vec::new();
        copy_bf16_from_le(&bf16_as_le_bytes(&[x]), &mut back);
        assert_eq!(back[0].to_bits(), 0x3F80_0000);
    }

    #[test]
    #[should_panic(expected = "multiple of 2")]
    fn ragged_bf16_byte_length_rejected() {
        copy_bf16_from_le(&[1], &mut Vec::new());
    }
}
