//! Multi-way SHA-256: up to 8 messages compressed in parallel.
//!
//! RPoLv1 commits the SHA-256 of every checkpoint of an epoch, and RPoLv2
//! commits `l` group digests per checkpoint — in both cases the manager
//! and workers hash *many same-length messages* back to back. SHA-256's
//! compression function has a long serial dependency chain inside one
//! message, but independent messages have independent chains, so eight of
//! them can ride the lanes of one 256-bit integer register: every round
//! computes `Σ₁`, `Ch`, `Maj`, … for all eight blocks with one instruction
//! each.
//!
//! Determinism contract: SHA-256 is pure integer arithmetic, so every lane
//! tier produces byte-identical digests to the scalar [`Sha256`] reference
//! by construction — no rounding, no reassociation. The CAVP vector suite
//! and property tests in `tests/cavp.rs` enforce scalar/SIMD agreement
//! anyway, so a transposition bug in the vector path cannot hide.
//!
//! Dispatch: the widest supported tier is detected once at runtime
//! (`avx2` → 8-way vectors; anything else → the scalar compression looped
//! over lanes). Batching still pays without AVX2 — the padded tail blocks
//! are built once per batch instead of once per message.

use crate::bytes::f32s_as_le_bytes;
use crate::sha256::{compress_block, Digest, Sha256, H0};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Messages hashed in lockstep per batch step.
pub const LANES: usize = 8;

/// Cached lane tier: 0 = undetected, 1 = scalar loop, 2 = AVX2 8-way.
static LANE_TIER: AtomicUsize = AtomicUsize::new(0);

fn lane_tier() -> usize {
    let cached = LANE_TIER.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    #[cfg(target_arch = "x86_64")]
    let tier = if std::arch::is_x86_feature_detected!("avx2") {
        2
    } else {
        1
    };
    #[cfg(not(target_arch = "x86_64"))]
    let tier = 1;
    LANE_TIER.store(tier, Ordering::Relaxed);
    tier
}

/// Forces the scalar fallback tier (`wide = false`) or re-enables runtime
/// detection (`wide = true`) — for tests and benchmarks that compare tiers.
pub fn force_scalar_lanes(scalar: bool) {
    LANE_TIER.store(if scalar { 1 } else { 0 }, Ordering::Relaxed);
}

/// Compresses one 64-byte block into each of the 8 lane states, in
/// lockstep. All lanes advance by exactly one block.
fn compress8(states: &mut [[u32; 8]; LANES], blocks: &[&[u8; 64]; LANES]) {
    match lane_tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: tier 2 is only cached after `avx2` was detected.
        2 => unsafe { compress8_avx2(states, blocks) },
        _ => {
            for (state, block) in states.iter_mut().zip(blocks) {
                compress_block(state, block);
            }
        }
    }
}

/// AVX2 8-way compression: one `__m256i` register holds the same working
/// variable for all 8 lanes. Pure integer arithmetic — bitwise identical
/// to [`compress_block`] per lane.
///
/// # Safety
///
/// Callers must have verified `avx2` support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn compress8_avx2(states: &mut [[u32; 8]; LANES], blocks: &[&[u8; 64]; LANES]) {
    use std::arch::x86_64::*;

    // The shift intrinsics take const immediates, so the rotation amount
    // must be a literal — hence a macro rather than a helper fn.
    macro_rules! rotr {
        ($x:expr, $n:literal) => {
            _mm256_or_si256(_mm256_srli_epi32($x, $n), _mm256_slli_epi32($x, 32 - $n))
        };
    }

    // Transpose the 16 big-endian message words of each lane into 16
    // vectors of [lane0..lane7].
    let mut w = [_mm256_setzero_si256(); 64];
    let mut lane_words = [[0u32; 16]; LANES];
    for (lane, block) in blocks.iter().enumerate() {
        for (i, word) in lane_words[lane].iter_mut().enumerate() {
            *word = u32::from_be_bytes(block[i * 4..(i + 1) * 4].try_into().expect("4 bytes"));
        }
    }
    for (i, wi) in w.iter_mut().take(16).enumerate() {
        *wi = _mm256_set_epi32(
            lane_words[7][i] as i32,
            lane_words[6][i] as i32,
            lane_words[5][i] as i32,
            lane_words[4][i] as i32,
            lane_words[3][i] as i32,
            lane_words[2][i] as i32,
            lane_words[1][i] as i32,
            lane_words[0][i] as i32,
        );
    }
    for i in 16..64 {
        let s0 = _mm256_xor_si256(
            _mm256_xor_si256(rotr!(w[i - 15], 7), rotr!(w[i - 15], 18)),
            _mm256_srli_epi32(w[i - 15], 3),
        );
        let s1 = _mm256_xor_si256(
            _mm256_xor_si256(rotr!(w[i - 2], 17), rotr!(w[i - 2], 19)),
            _mm256_srli_epi32(w[i - 2], 10),
        );
        w[i] = _mm256_add_epi32(
            _mm256_add_epi32(w[i - 16], s0),
            _mm256_add_epi32(w[i - 7], s1),
        );
    }

    // Load the transposed working variables a..h.
    let mut vars = [_mm256_setzero_si256(); 8];
    for (r, var) in vars.iter_mut().enumerate() {
        *var = _mm256_set_epi32(
            states[7][r] as i32,
            states[6][r] as i32,
            states[5][r] as i32,
            states[4][r] as i32,
            states[3][r] as i32,
            states[2][r] as i32,
            states[1][r] as i32,
            states[0][r] as i32,
        );
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = vars;

    for (i, &wi) in w.iter().enumerate() {
        let s1 = _mm256_xor_si256(_mm256_xor_si256(rotr!(e, 6), rotr!(e, 11)), rotr!(e, 25));
        let ch = _mm256_xor_si256(_mm256_and_si256(e, f), _mm256_andnot_si256(e, g));
        let temp1 = _mm256_add_epi32(
            _mm256_add_epi32(_mm256_add_epi32(h, s1), _mm256_add_epi32(ch, wi)),
            _mm256_set1_epi32(crate::sha256::K[i] as i32),
        );
        let s0 = _mm256_xor_si256(_mm256_xor_si256(rotr!(a, 2), rotr!(a, 13)), rotr!(a, 22));
        let maj = _mm256_xor_si256(
            _mm256_xor_si256(_mm256_and_si256(a, b), _mm256_and_si256(a, c)),
            _mm256_and_si256(b, c),
        );
        let temp2 = _mm256_add_epi32(s0, maj);
        h = g;
        g = f;
        f = e;
        e = _mm256_add_epi32(d, temp1);
        d = c;
        c = b;
        b = a;
        a = _mm256_add_epi32(temp1, temp2);
    }

    // Scatter the updated variables back into the per-lane states.
    for (r, var) in [a, b, c, d, e, f, g, h].into_iter().enumerate() {
        let mut out = [0u32; LANES];
        _mm256_storeu_si256(out.as_mut_ptr().cast(), var);
        for (lane, &v) in out.iter().enumerate() {
            states[lane][r] = states[lane][r].wrapping_add(v);
        }
    }
}

/// Hashes up to [`LANES`] equal-length messages in lockstep; `msgs` may be
/// shorter than [`LANES`], in which case the trailing lanes duplicate the
/// first message and their digests are discarded.
fn sha256_lockstep(msgs: &[&[u8]], out: &mut [Digest]) {
    debug_assert!(!msgs.is_empty() && msgs.len() <= LANES);
    debug_assert_eq!(msgs.len(), out.len());
    let len = msgs[0].len();
    debug_assert!(msgs.iter().all(|m| m.len() == len));

    let mut states = [H0; LANES];
    let filler = msgs[0];
    let lane_msg = |lane: usize| -> &[u8] {
        if lane < msgs.len() {
            msgs[lane]
        } else {
            filler
        }
    };

    // Full 64-byte blocks, all lanes in lockstep.
    let full_blocks = len / 64;
    for blk in 0..full_blocks {
        let blocks: [&[u8; 64]; LANES] = std::array::from_fn(|lane| {
            lane_msg(lane)[blk * 64..(blk + 1) * 64]
                .try_into()
                .expect("64-byte block")
        });
        compress8(&mut states, &blocks);
    }

    // Padding: identical structure across lanes because lengths agree.
    // One extra block when the tail + 0x80 + 8-byte length fit, else two.
    let rem = len % 64;
    let bit_len = (len as u64).wrapping_mul(8).to_be_bytes();
    let mut tails = [[0u8; 128]; LANES];
    let pad_blocks = if rem < 56 { 1 } else { 2 };
    for (lane, tail) in tails.iter_mut().enumerate() {
        let msg = lane_msg(lane);
        tail[..rem].copy_from_slice(&msg[len - rem..]);
        tail[rem] = 0x80;
        tail[pad_blocks * 64 - 8..pad_blocks * 64].copy_from_slice(&bit_len);
    }
    for blk in 0..pad_blocks {
        let blocks: [&[u8; 64]; LANES] = std::array::from_fn(|lane| {
            tails[lane][blk * 64..(blk + 1) * 64]
                .try_into()
                .expect("64-byte block")
        });
        compress8(&mut states, &blocks);
    }

    for (digest, state) in out.iter_mut().zip(&states) {
        let mut raw = [0u8; 32];
        for (i, word) in state.iter().enumerate() {
            raw[i * 4..(i + 1) * 4].copy_from_slice(&word.to_be_bytes());
        }
        *digest = Digest(raw);
    }
}

/// Hashes a batch of messages, compressing up to [`LANES`] of them in
/// parallel. Digests are byte-identical to hashing each message with the
/// scalar [`Sha256`] reference, and are returned in input order.
///
/// Messages of equal length ride the SIMD lanes together (the checkpoint
/// commitment shape: every digest of an epoch covers the same model size);
/// lengths that appear only once fall back to the scalar path.
///
/// # Examples
///
/// ```
/// use rpol_crypto::sha256::sha256;
/// use rpol_crypto::sha256x8::sha256_batch;
///
/// let msgs: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 100]).collect();
/// let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
/// let digests = sha256_batch(&refs);
/// for (msg, d) in msgs.iter().zip(&digests) {
///     assert_eq!(*d, sha256(msg));
/// }
/// ```
pub fn sha256_batch(msgs: &[&[u8]]) -> Vec<Digest> {
    let mut out = vec![Digest::ZERO; msgs.len()];
    // Group message indices by length, preserving input order within a
    // group; equal-length runs then share lockstep batches.
    let mut order: Vec<usize> = (0..msgs.len()).collect();
    order.sort_by_key(|&i| (msgs[i].len(), i));
    let mut start = 0;
    while start < order.len() {
        let len = msgs[order[start]].len();
        let mut end = start + 1;
        while end < order.len() && msgs[order[end]].len() == len {
            end += 1;
        }
        for chunk in order[start..end].chunks(LANES) {
            if chunk.len() == 1 {
                let mut h = Sha256::new();
                h.update(msgs[chunk[0]]);
                out[chunk[0]] = h.finalize();
            } else {
                let lane_msgs: Vec<&[u8]> = chunk.iter().map(|&i| msgs[i]).collect();
                let mut digests = vec![Digest::ZERO; chunk.len()];
                sha256_lockstep(&lane_msgs, &mut digests);
                for (&i, d) in chunk.iter().zip(digests) {
                    out[i] = d;
                }
            }
        }
        start = end;
    }
    out
}

/// Batched [`crate::sha256::sha256_f32`]: hashes the little-endian byte
/// image of every `f32` slice, riding the SIMD lanes for slices of equal
/// length — one call digests an entire commitment list of checkpoints.
pub fn sha256_f32_batch(slices: &[&[f32]]) -> Vec<Digest> {
    let views: Vec<_> = slices.iter().map(|s| f32s_as_le_bytes(s)).collect();
    let refs: Vec<&[u8]> = views.iter().map(|v| &v[..]).collect();
    sha256_batch(&refs)
}

/// Batched SHA-256 over the packed **bf16 images** of `f32` slices (see
/// [`crate::bytes::bf16_as_le_bytes`]): the RPoLv3 quantized checkpoint
/// digest. Each message is 2 bytes per weight instead of 4, so the SIMD
/// lanes digest a commitment list in roughly half the compression passes
/// of [`sha256_f32_batch`].
pub fn sha256_bf16_batch(slices: &[&[f32]]) -> Vec<Digest> {
    let views: Vec<Vec<u8>> = slices
        .iter()
        .map(|s| crate::bytes::bf16_as_le_bytes(s))
        .collect();
    let refs: Vec<&[u8]> = views.iter().map(|v| &v[..]).collect();
    sha256_batch(&refs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::{sha256, sha256_f32};

    fn check_batch(msgs: &[Vec<u8>]) {
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        let batch = sha256_batch(&refs);
        for (i, m) in msgs.iter().enumerate() {
            assert_eq!(batch[i], sha256(m), "message {i} (len {})", m.len());
        }
    }

    #[test]
    fn equal_length_batches_match_scalar() {
        for len in [0usize, 1, 55, 56, 57, 63, 64, 65, 119, 128, 1000] {
            for count in [1usize, 2, 7, 8, 9, 17] {
                let msgs: Vec<Vec<u8>> = (0..count)
                    .map(|i| (0..len).map(|j| (i * 31 + j * 7) as u8).collect())
                    .collect();
                check_batch(&msgs);
            }
        }
    }

    #[test]
    fn mixed_length_batches_match_scalar() {
        let msgs: Vec<Vec<u8>> = [3usize, 64, 3, 200, 64, 64, 0, 200, 3, 65]
            .iter()
            .enumerate()
            .map(|(i, &len)| (0..len).map(|j| (i * 13 + j) as u8).collect())
            .collect();
        check_batch(&msgs);
    }

    #[test]
    fn scalar_tier_agrees_with_wide_tier() {
        let msgs: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 777]).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        force_scalar_lanes(true);
        let narrow = sha256_batch(&refs);
        force_scalar_lanes(false);
        let wide = sha256_batch(&refs);
        assert_eq!(narrow, wide);
    }

    #[test]
    fn f32_batch_matches_scalar_f32_hash() {
        let slices: Vec<Vec<f32>> = (0..6)
            .map(|i| {
                (0..300)
                    .map(|j| (i * 300 + j) as f32 * 0.125 - 7.0)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f32]> = slices.iter().map(|s| s.as_slice()).collect();
        let batch = sha256_f32_batch(&refs);
        for (i, s) in slices.iter().enumerate() {
            assert_eq!(batch[i], sha256_f32(s), "slice {i}");
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        assert!(sha256_batch(&[]).is_empty());
    }

    #[test]
    fn bf16_batch_hashes_the_packed_image() {
        let slices: Vec<Vec<f32>> = (0..5)
            .map(|i| (0..200).map(|j| (i * 7 + j) as f32 * 0.375 - 3.0).collect())
            .collect();
        let refs: Vec<&[f32]> = slices.iter().map(|s| s.as_slice()).collect();
        let batch = sha256_bf16_batch(&refs);
        for (i, s) in slices.iter().enumerate() {
            let packed = crate::bytes::bf16_as_le_bytes(s);
            assert_eq!(batch[i], sha256(&packed), "slice {i}");
            assert_eq!(packed.len(), s.len() * 2);
        }
    }
}
