//! FIPS 180-4 SHA-256, implemented from scratch.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 256-bit digest.
///
/// # Examples
///
/// ```
/// use rpol_crypto::sha256::sha256;
///
/// let d = sha256(b"abc");
/// assert_eq!(
///     d.to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The zero digest, used as a placeholder (e.g. genesis parent hash).
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// A view of the raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Lower-case hex encoding of the digest.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
            s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
        }
        s
    }

    /// Interprets the first 8 bytes as a big-endian `u64`, handy for
    /// deriving integer seeds from digests.
    pub fn to_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("8 bytes"))
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}..)", &self.to_hex()[..12])
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Digest {
    fn from(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }
}

pub(crate) const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

pub(crate) const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// An incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use rpol_crypto::sha256::{sha256, Sha256};
///
/// let mut h = Sha256::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finalize(), sha256(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Self {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(block.try_into().expect("64-byte block"));
            data = rest;
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Finishes the hash and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffer_len != 56 {
            self.update(&[0x00]);
        }
        // Manually absorb the length to avoid recounting it.
        self.buffer[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buffer;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        compress_block(&mut self.state, block);
    }
}

/// One FIPS 180-4 compression round over a 64-byte block — the scalar
/// reference compression shared by the incremental hasher above and the
/// multi-lane batch hasher's fallback tier (`sha256x8`).
pub(crate) fn compress_block(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for i in 0..16 {
        w[i] = u32::from_be_bytes(block[i * 4..(i + 1) * 4].try_into().expect("4 bytes"));
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ ((!e) & g);
        let temp1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let temp2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(temp1);
        d = c;
        c = b;
        b = a;
        a = temp1.wrapping_add(temp2);
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// One-shot SHA-256 of a byte slice.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// SHA-256 over the little-endian byte representation of an `f32` slice,
/// the canonical way the workspace hashes model weights. The byte image is
/// obtained zero-copy via [`crate::bytes::f32s_as_le_bytes`], so hashing a
/// checkpoint reads the weights exactly once with no staging copies.
pub fn sha256_f32(data: &[f32]) -> Digest {
    sha256(&crate::bytes::f32s_as_le_bytes(data))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nist_empty() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_abc() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_two_block() {
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        for split in [0, 1, 63, 64, 65, 5000, 9999, 10_000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split {split}");
        }
    }

    #[test]
    fn f32_hash_sensitive_to_single_bit() {
        let a = vec![1.0f32; 100];
        let mut b = a.clone();
        b[50] = 1.0000001;
        assert_ne!(sha256_f32(&a), sha256_f32(&b));
        assert_eq!(sha256_f32(&a), sha256_f32(&a.clone()));
    }

    #[test]
    fn digest_utils() {
        let d = sha256(b"x");
        assert_eq!(d.to_hex().len(), 64);
        assert_ne!(d.to_u64(), 0);
        assert_eq!(Digest::ZERO.to_u64(), 0);
        assert!(format!("{d:?}").starts_with("Digest("));
    }
}
