//! From-scratch cryptographic substrate for the RPoL reproduction.
//!
//! RPoL's protocol relies on a handful of standard primitives, all of which
//! are implemented here with no external dependencies so the whole chain of
//! trust is auditable inside the workspace:
//!
//! * [`mod@sha256`] — FIPS 180-4 SHA-256, the base hash for everything below,
//! * [`sha256x8`] — the multi-way batch hasher (runtime-dispatched AVX2
//!   lanes) digesting up to 8 messages per compression pass,
//! * [`mod@bytes`] — the canonical zero-copy `f32` ↔ little-endian byte
//!   framing shared by checkpoint hashing and the wire encoders,
//! * [`hmac`] — HMAC-SHA-256,
//! * [`prf`] — the keyed pseudo-random function used for
//!   stochastic-yet-deterministic batch selection (§V-B) and for expanding
//!   a blockchain address into AMLayer weights (§V-A),
//! * [`merkle`] — Merkle hash trees for checkpoint commitments (§V-B),
//! * [`address`] — blockchain addresses identifying consensus nodes,
//! * [`commitment`] — the two commitment constructions the paper describes
//!   (ordered hash list and Merkle root) with opening proofs.
//!
//! # Examples
//!
//! ```
//! use rpol_crypto::sha256::sha256;
//! use rpol_crypto::address::Address;
//!
//! let digest = sha256(b"proof of learning");
//! assert_eq!(digest.as_bytes().len(), 32);
//! let addr = Address::derive(b"pool-manager-pubkey");
//! assert_eq!(addr.to_hex().len(), 40);
//! ```

pub mod address;
pub mod bytes;
pub mod commitment;
pub mod hmac;
pub mod merkle;
pub mod prf;
pub mod sha256;
pub mod sha256x8;

pub use address::Address;
pub use commitment::{Commitment, HashListCommitment, MerkleCommitment};
pub use merkle::MerkleTree;
pub use prf::Prf;
pub use sha256::{sha256, Digest};
pub use sha256x8::{sha256_batch, sha256_bf16_batch, sha256_f32_batch};
