//! Checkpoint commitments (§V-B).
//!
//! At the end of each epoch a worker commits to the ordered sequence of its
//! checkpoint proofs *before* learning which checkpoints the manager will
//! sample. The paper describes two constructions and uses the first:
//!
//! 1. an **ordered hash list** — the commitment is the list of SHA-256
//!    digests of the proofs in order ([`HashListCommitment`]);
//! 2. a **Merkle root** — the commitment is the root of a tree whose leaves
//!    are the proofs in order ([`MerkleCommitment`]), trading a smaller
//!    commitment for per-opening sibling paths.
//!
//! Both are exposed behind the [`Commitment`] trait so the verification
//! pipeline in the `rpol` crate is scheme-agnostic. Commitments bind to
//! *digests* of checkpoint payloads; the `rpol` crate decides what a payload
//! is (raw weight hash for RPoLv1, serialized LSH signature for RPoLv2).

use crate::merkle::{hash_leaf_digest, MerkleProof, MerkleTree};
use crate::sha256::{Digest, Sha256};
use serde::{Deserialize, Serialize};

/// A commitment scheme over an ordered sequence of payload digests.
///
/// The sequence order is part of what is committed: swapping two
/// checkpoints invalidates both openings.
pub trait Commitment {
    /// The opening (inclusion proof) type.
    type Opening;

    /// Commits to ordered payload digests.
    ///
    /// # Panics
    ///
    /// Panics if `digests` is empty.
    fn commit(digests: &[Digest]) -> Self;

    /// A single digest summarizing the commitment, recorded by the manager
    /// and (in the full system) anchored on-chain.
    fn value(&self) -> Digest;

    /// Number of committed entries.
    fn len(&self) -> usize;

    /// Whether the commitment is empty (never true by construction).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produces the opening for position `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    fn open(&self, index: usize) -> Self::Opening;

    /// Verifies that `digest` is the committed payload at `index`.
    fn verify(&self, index: usize, digest: &Digest, opening: &Self::Opening) -> bool;

    /// Size in bytes of the commitment as transmitted to the manager, used
    /// by the communication accounting in `rpol-sim`.
    fn wire_size(&self) -> usize;
}

/// The ordered-hash-list commitment (the paper's default construction).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashListCommitment {
    digests: Vec<Digest>,
}

impl HashListCommitment {
    /// The committed digest at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn digest_at(&self, index: usize) -> Digest {
        self.digests[index]
    }
}

impl Commitment for HashListCommitment {
    /// Hash-list openings carry no extra data: the commitment itself holds
    /// every per-checkpoint digest.
    type Opening = ();

    fn commit(digests: &[Digest]) -> Self {
        assert!(!digests.is_empty(), "cannot commit to an empty sequence");
        Self {
            digests: digests.to_vec(),
        }
    }

    fn value(&self) -> Digest {
        let mut h = Sha256::new();
        for d in &self.digests {
            h.update(d.as_bytes());
        }
        h.finalize()
    }

    fn len(&self) -> usize {
        self.digests.len()
    }

    fn open(&self, index: usize) -> Self::Opening {
        assert!(index < self.digests.len(), "opening index out of range");
    }

    fn verify(&self, index: usize, digest: &Digest, _opening: &Self::Opening) -> bool {
        self.digests.get(index) == Some(digest)
    }

    fn wire_size(&self) -> usize {
        self.digests.len() * 32
    }
}

/// The Merkle-root commitment: succinct value, logarithmic openings.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MerkleCommitment {
    tree: MerkleTree,
}

impl Commitment for MerkleCommitment {
    type Opening = MerkleProof;

    fn commit(digests: &[Digest]) -> Self {
        assert!(!digests.is_empty(), "cannot commit to an empty sequence");
        let leaves: Vec<Digest> = digests.iter().map(hash_leaf_digest).collect();
        Self {
            tree: MerkleTree::from_leaf_hashes(leaves),
        }
    }

    fn value(&self) -> Digest {
        self.tree.root()
    }

    fn len(&self) -> usize {
        self.tree.leaf_count()
    }

    fn open(&self, index: usize) -> Self::Opening {
        self.tree.prove(index)
    }

    fn verify(&self, index: usize, digest: &Digest, opening: &Self::Opening) -> bool {
        opening.leaf_index == index
            && opening.verify_hash(self.tree.root(), hash_leaf_digest(digest))
    }

    fn wire_size(&self) -> usize {
        // Only the root crosses the wire at commit time.
        32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    fn digests(n: usize) -> Vec<Digest> {
        (0..n)
            .map(|i| sha256(format!("ckpt-{i}").as_bytes()))
            .collect()
    }

    fn exercise<C: Commitment>(ds: &[Digest]) {
        let c = C::commit(ds);
        assert_eq!(c.len(), ds.len());
        assert!(!c.is_empty());
        for (i, d) in ds.iter().enumerate() {
            let opening = c.open(i);
            assert!(c.verify(i, d, &opening), "honest opening {i} rejected");
        }
        // Wrong digest at right position.
        let opening = c.open(0);
        assert!(!c.verify(0, &sha256(b"forged"), &opening));
        // Right digest at wrong position.
        if ds.len() > 1 {
            let opening = c.open(0);
            assert!(!c.verify(1, &ds[0], &opening));
        }
    }

    #[test]
    fn hash_list_commitment_behaviour() {
        for n in [1, 2, 7, 16] {
            exercise::<HashListCommitment>(&digests(n));
        }
    }

    #[test]
    fn merkle_commitment_behaviour() {
        for n in [1, 2, 7, 16] {
            exercise::<MerkleCommitment>(&digests(n));
        }
    }

    #[test]
    fn value_binds_order() {
        let ds = digests(4);
        let mut swapped = ds.clone();
        swapped.swap(1, 2);
        assert_ne!(
            HashListCommitment::commit(&ds).value(),
            HashListCommitment::commit(&swapped).value()
        );
        assert_ne!(
            MerkleCommitment::commit(&ds).value(),
            MerkleCommitment::commit(&swapped).value()
        );
    }

    #[test]
    fn wire_sizes() {
        let ds = digests(50);
        assert_eq!(HashListCommitment::commit(&ds).wire_size(), 1600);
        assert_eq!(MerkleCommitment::commit(&ds).wire_size(), 32);
    }

    #[test]
    fn merkle_value_matches_tree_root() {
        let ds = digests(5);
        let c = MerkleCommitment::commit(&ds);
        assert_eq!(c.value(), c.value());
        assert_eq!(c.len(), 5);
    }
}
