//! Blockchain addresses for consensus nodes.
//!
//! Consensus nodes (individual miners and pool managers) are identified by
//! their blockchain address (§III-A). Following common practice, an address
//! here is the trailing 20 bytes of the SHA-256 of the node's public key
//! material. The address is the seed of the AMLayer weight expansion
//! (§V-A), so it must be canonical and deterministic.

use crate::sha256::sha256;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 20-byte blockchain address.
///
/// # Examples
///
/// ```
/// use rpol_crypto::Address;
///
/// let addr = Address::derive(b"node-public-key");
/// assert_eq!(addr, Address::derive(b"node-public-key"));
/// assert_ne!(addr, Address::derive(b"other-key"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Address(pub [u8; 20]);

impl Address {
    /// Derives an address from public key material.
    pub fn derive(public_key: &[u8]) -> Self {
        let digest = sha256(public_key);
        let mut out = [0u8; 20];
        out.copy_from_slice(&digest.as_bytes()[12..32]);
        Self(out)
    }

    /// Generates a pseudo-random address from a numeric seed; used by tests
    /// and by the address-replacing attack, which swaps in layers encoding
    /// arbitrary other addresses (§VII-B).
    pub fn from_seed(seed: u64) -> Self {
        Self::derive(&seed.to_be_bytes())
    }

    /// The raw address bytes.
    pub fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }

    /// Lower-case hex encoding (40 characters).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(40);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
            s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
        }
        s
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Address({}..)", &self.to_hex()[..8])
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Address {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(Address::derive(b"pk"), Address::derive(b"pk"));
    }

    #[test]
    fn distinct_keys_distinct_addresses() {
        let a = Address::derive(b"pk-1");
        let b = Address::derive(b"pk-2");
        assert_ne!(a, b);
    }

    #[test]
    fn hex_roundtrip_length() {
        let a = Address::from_seed(12345);
        assert_eq!(a.to_hex().len(), 40);
        assert_eq!(format!("{a}"), a.to_hex());
    }

    #[test]
    fn seeded_addresses_distinct() {
        let set: std::collections::HashSet<_> = (0..100).map(Address::from_seed).collect();
        assert_eq!(set.len(), 100);
    }
}
