//! Merkle hash trees over checkpoint digests.
//!
//! §V-B allows the training commitment to be either an ordered list of
//! checkpoint hashes or the root of a Merkle tree whose leaves are the
//! checkpoint proofs in order. This module implements the tree with
//! logarithmic inclusion proofs; `commitment.rs` wraps both constructions
//! behind one trait.

use crate::sha256::{Digest, Sha256};
use serde::{Deserialize, Serialize};

/// Domain-separation prefixes preventing leaf/node second-preimage tricks.
const LEAF_PREFIX: u8 = 0x00;
const NODE_PREFIX: u8 = 0x01;

fn hash_leaf(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[LEAF_PREFIX]);
    h.update(data);
    h.finalize()
}

fn hash_node(left: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(&[NODE_PREFIX]);
    h.update(left.as_bytes());
    h.update(right.as_bytes());
    h.finalize()
}

/// A complete Merkle tree storing all internal levels.
///
/// # Examples
///
/// ```
/// use rpol_crypto::MerkleTree;
///
/// let tree = MerkleTree::from_leaves(&[b"a".as_ref(), b"b".as_ref(), b"c".as_ref()]);
/// let proof = tree.prove(1);
/// assert!(proof.verify(tree.root(), b"b"));
/// assert!(!proof.verify(tree.root(), b"x"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MerkleTree {
    /// `levels[0]` is the leaf layer; the last level holds the single root.
    levels: Vec<Vec<Digest>>,
}

/// An inclusion proof: sibling digests from the leaf to the root.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MerkleProof {
    /// The 0-based index of the proven leaf.
    pub leaf_index: usize,
    /// Sibling hashes, one per level, leaf-to-root.
    pub siblings: Vec<Digest>,
}

impl MerkleTree {
    /// Builds a tree over raw leaf payloads.
    ///
    /// An odd node at any level is paired with itself, the classic Bitcoin
    /// construction.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is empty.
    pub fn from_leaves(leaves: &[&[u8]]) -> Self {
        assert!(!leaves.is_empty(), "Merkle tree needs at least one leaf");
        let leaf_hashes: Vec<Digest> = leaves.iter().map(|l| hash_leaf(l)).collect();
        Self::from_leaf_hashes(leaf_hashes)
    }

    /// Builds a tree over pre-hashed leaves.
    ///
    /// # Panics
    ///
    /// Panics if `leaf_hashes` is empty.
    pub fn from_leaf_hashes(leaf_hashes: Vec<Digest>) -> Self {
        assert!(
            !leaf_hashes.is_empty(),
            "Merkle tree needs at least one leaf"
        );
        let mut levels = vec![leaf_hashes];
        while levels.last().expect("nonempty").len() > 1 {
            let prev = levels.last().expect("nonempty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                let right = pair.get(1).unwrap_or(&pair[0]);
                next.push(hash_node(&pair[0], right));
            }
            levels.push(next);
        }
        Self { levels }
    }

    /// The Merkle root.
    pub fn root(&self) -> Digest {
        self.levels.last().expect("nonempty")[0]
    }

    /// The number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Generates an inclusion proof for the leaf at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn prove(&self, index: usize) -> MerkleProof {
        assert!(index < self.leaf_count(), "leaf index out of range");
        let mut siblings = Vec::new();
        let mut ix = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_ix = if ix.is_multiple_of(2) { ix + 1 } else { ix - 1 };
            // Odd tail duplicates itself.
            let sibling = level.get(sibling_ix).unwrap_or(&level[ix]);
            siblings.push(*sibling);
            ix /= 2;
        }
        MerkleProof {
            leaf_index: index,
            siblings,
        }
    }
}

impl MerkleProof {
    /// Verifies that `payload` is the leaf at `self.leaf_index` under `root`.
    pub fn verify(&self, root: Digest, payload: &[u8]) -> bool {
        self.verify_hash(root, hash_leaf(payload))
    }

    /// Verifies a pre-hashed leaf. Callers that hash model weights with
    /// [`crate::sha256::sha256_f32`] must wrap the digest with
    /// [`hash_leaf_digest`] first; this method takes the final leaf hash.
    pub fn verify_hash(&self, root: Digest, leaf_hash: Digest) -> bool {
        let mut acc = leaf_hash;
        let mut ix = self.leaf_index;
        for sibling in &self.siblings {
            acc = if ix.is_multiple_of(2) {
                hash_node(&acc, sibling)
            } else {
                hash_node(sibling, &acc)
            };
            ix /= 2;
        }
        acc == root
    }
}

/// Hashes an already-computed digest as a Merkle leaf (domain separated).
pub fn hash_leaf_digest(digest: &Digest) -> Digest {
    hash_leaf(digest.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect()
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let tree = MerkleTree::from_leaves(&[b"only".as_ref()]);
        assert_eq!(tree.root(), hash_leaf(b"only"));
        assert!(tree.prove(0).verify(tree.root(), b"only"));
    }

    #[test]
    fn proofs_verify_for_all_sizes() {
        for n in 1..=17 {
            let ls = leaves(n);
            let refs: Vec<&[u8]> = ls.iter().map(|l| l.as_slice()).collect();
            let tree = MerkleTree::from_leaves(&refs);
            for (i, l) in ls.iter().enumerate() {
                let proof = tree.prove(i);
                assert!(proof.verify(tree.root(), l), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn wrong_payload_rejected() {
        let ls = leaves(8);
        let refs: Vec<&[u8]> = ls.iter().map(|l| l.as_slice()).collect();
        let tree = MerkleTree::from_leaves(&refs);
        let proof = tree.prove(3);
        assert!(!proof.verify(tree.root(), b"forged"));
    }

    #[test]
    fn wrong_position_rejected() {
        let ls = leaves(8);
        let refs: Vec<&[u8]> = ls.iter().map(|l| l.as_slice()).collect();
        let tree = MerkleTree::from_leaves(&refs);
        let mut proof = tree.prove(3);
        proof.leaf_index = 4;
        assert!(!proof.verify(tree.root(), &ls[3]));
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let ls = leaves(9);
        let refs: Vec<&[u8]> = ls.iter().map(|l| l.as_slice()).collect();
        let root = MerkleTree::from_leaves(&refs).root();
        for i in 0..ls.len() {
            let mut tampered = ls.clone();
            tampered[i] = b"tampered".to_vec();
            let refs2: Vec<&[u8]> = tampered.iter().map(|l| l.as_slice()).collect();
            assert_ne!(MerkleTree::from_leaves(&refs2).root(), root, "leaf {i}");
        }
    }

    #[test]
    fn leaf_node_domain_separation() {
        // A tree over [h(a)||h(b)] as a single leaf must differ from the
        // two-leaf tree over [a, b].
        let two = MerkleTree::from_leaves(&[b"a".as_ref(), b"b".as_ref()]);
        let mut concat = Vec::new();
        concat.extend_from_slice(sha256(b"a").as_bytes());
        concat.extend_from_slice(sha256(b"b").as_bytes());
        let one = MerkleTree::from_leaves(&[concat.as_slice()]);
        assert_ne!(two.root(), one.root());
    }

    #[test]
    fn prehased_leaf_roundtrip() {
        let digests: Vec<Digest> = (0..5).map(|i| sha256(&[i])).collect();
        let leaf_hashes: Vec<Digest> = digests.iter().map(hash_leaf_digest).collect();
        let tree = MerkleTree::from_leaf_hashes(leaf_hashes);
        let proof = tree.prove(2);
        assert!(proof.verify_hash(tree.root(), hash_leaf_digest(&digests[2])));
        assert!(!proof.verify_hash(tree.root(), hash_leaf_digest(&digests[3])));
    }
}
