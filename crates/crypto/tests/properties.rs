//! Property-based tests for the crypto substrate.

use proptest::prelude::*;
use rpol_crypto::commitment::{Commitment, HashListCommitment, MerkleCommitment};
use rpol_crypto::hmac::hmac_sha256;
use rpol_crypto::merkle::MerkleTree;
use rpol_crypto::prf::{deterministic_batch, Prf};
use rpol_crypto::sha256::{sha256, sha256_f32, Sha256};
use rpol_crypto::Address;

proptest! {
    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        split in 0usize..2048
    ) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn sha256_injective_on_flips(
        data in proptest::collection::vec(any::<u8>(), 1..512),
        bit in 0usize..4096
    ) {
        let mut flipped = data.clone();
        let byte = (bit / 8) % data.len();
        flipped[byte] ^= 1 << (bit % 8);
        if flipped != data {
            prop_assert_ne!(sha256(&data), sha256(&flipped));
        }
    }

    #[test]
    fn sha256_f32_matches_le_byte_hash(xs in proptest::collection::vec(-1e6f32..1e6, 0..256)) {
        let bytes: Vec<u8> = xs.iter().flat_map(|x| x.to_le_bytes()).collect();
        prop_assert_eq!(sha256_f32(&xs), sha256(&bytes));
    }

    #[test]
    fn hmac_distinct_keys_distinct_tags(
        k1 in proptest::collection::vec(any::<u8>(), 1..64),
        k2 in proptest::collection::vec(any::<u8>(), 1..64),
        msg in proptest::collection::vec(any::<u8>(), 0..128)
    ) {
        if k1 != k2 {
            prop_assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k2, &msg));
        }
    }

    #[test]
    fn merkle_accepts_all_and_only_committed_leaves(
        leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..16), 1..20),
        forged in proptest::collection::vec(any::<u8>(), 1..16)
    ) {
        let refs: Vec<&[u8]> = leaves.iter().map(|l| l.as_slice()).collect();
        let tree = MerkleTree::from_leaves(&refs);
        for (i, leaf) in leaves.iter().enumerate() {
            let proof = tree.prove(i);
            prop_assert!(proof.verify(tree.root(), leaf));
            if &forged != leaf {
                prop_assert!(!proof.verify(tree.root(), &forged));
            }
        }
    }

    #[test]
    fn commitments_bind_position_and_content(
        n in 2usize..12,
        tamper in 0usize..12,
        seed in any::<u64>()
    ) {
        let tamper = tamper % n;
        let digests: Vec<_> = (0..n)
            .map(|i| sha256(&(seed ^ i as u64).to_be_bytes()))
            .collect();
        let hl = HashListCommitment::commit(&digests);
        let mk = MerkleCommitment::commit(&digests);
        for (i, d) in digests.iter().enumerate() {
            prop_assert!(hl.verify(i, d, &hl.open(i)));
            prop_assert!(mk.verify(i, d, &mk.open(i)));
            // Wrong position fails.
            let other = (i + 1) % n;
            if digests[other] != *d {
                prop_assert!(!hl.verify(other, d, &hl.open(other)));
                prop_assert!(!mk.verify(other, d, &mk.open(other)));
            }
        }
        // Tampered digest fails at its own position.
        let forged = sha256(b"forged");
        if digests[tamper] != forged {
            prop_assert!(!hl.verify(tamper, &forged, &hl.open(tamper)));
            prop_assert!(!mk.verify(tamper, &forged, &mk.open(tamper)));
        }
    }

    #[test]
    fn prf_batches_replayable_and_in_range(
        nonce in any::<u64>(),
        step in 0u64..1000,
        batch in 1usize..64,
        len in 1u64..100_000
    ) {
        let prf = Prf::from_nonce(nonce);
        let b1 = deterministic_batch(&prf, step, batch, len);
        let b2 = deterministic_batch(&Prf::from_nonce(nonce), step, batch, len);
        prop_assert_eq!(&b1, &b2);
        prop_assert_eq!(b1.len(), batch);
        prop_assert!(b1.iter().all(|&i| (i as u64) < len));
    }

    #[test]
    fn prf_steps_decorrelated(nonce in any::<u64>(), step in 0u64..1000) {
        let prf = Prf::from_nonce(nonce);
        let a = deterministic_batch(&prf, step, 32, 1 << 30);
        let b = deterministic_batch(&prf, step + 1, 32, 1 << 30);
        prop_assert_ne!(a, b);
    }

    #[test]
    fn addresses_deterministic_and_distinct(s1 in any::<u64>(), s2 in any::<u64>()) {
        prop_assert_eq!(Address::from_seed(s1), Address::from_seed(s1));
        if s1 != s2 {
            prop_assert_ne!(Address::from_seed(s1), Address::from_seed(s2));
        }
    }
}
