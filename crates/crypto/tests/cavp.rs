//! NIST CAVP-style test vectors for SHA-256, enforced on both the scalar
//! reference hasher and the multi-lane batch hasher.
//!
//! The short-message vectors are the byte-oriented `SHA256ShortMsg.rsp`
//! messages for lengths 0–64 bits; the long-message vectors exercise every
//! interesting padding boundary (55/56/57, 63/64/65, one/two/many blocks)
//! with deterministic byte patterns. All expected digests were
//! cross-checked against an independent SHA-256 implementation (OpenSSL
//! via Python's `hashlib`), so the from-scratch hasher and its SIMD lanes
//! are anchored to an external oracle, not to each other.

use proptest::prelude::*;
use rpol_crypto::sha256::{sha256, Sha256};
use rpol_crypto::sha256x8::{force_scalar_lanes, sha256_batch};

/// CAVP SHA256ShortMsg byte-oriented vectors, Len = 0..64 bits.
const SHORT_MSG: &[(&str, &str)] = &[
    (
        "",
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
    ),
    (
        "d3",
        "28969cdfa74a12c82f3bad960b0b000aca2ac329deea5c2328ebc6f2ba9802c1",
    ),
    (
        "11af",
        "5ca7133fa735326081558ac312c620eeca9970d1e70a4b95533d956f072d1f98",
    ),
    (
        "b4190e",
        "dff2e73091f6c05e528896c4c831b9448653dc2ff043528f6769437bc7b975c2",
    ),
    (
        "74ba2521",
        "b16aa56be3880d18cd41e68384cf1ec8c17680c45a02b1575dc1518923ae8b0e",
    ),
    (
        "c299209682",
        "f0887fe961c9cd3beab957e8222494abb969b1ce4c6557976df8b0f6d20e9166",
    ),
    (
        "e1dc724d5621",
        "eca0a060b489636225b4fa64d267dabbe44273067ac679f20820bddc6b6a90ac",
    ),
    (
        "06e076f5a442d5",
        "3fd877e27450e6bbd5d74bb82f9870c64c66e109418baa8e6bbcff355e287926",
    ),
    (
        "5738c929c4f4ccb6",
        "963bb88f27f512777aab6c8b1a02c70ec0ad651d428f870036e1917120fb48bf",
    ),
];

/// Long-message vectors: `msg[i] = (7·i + 13) mod 256` for each length,
/// chosen to straddle the single-block padding boundary (55/56/57), the
/// block boundary (63/64/65), the two-block padding boundary (119), and
/// multi-block messages.
const LONG_MSG: &[(usize, &str)] = &[
    (
        55,
        "764c574722e6e2ccaa5422f8ec731111ac72ff7039793148623e56b75a32c11f",
    ),
    (
        56,
        "43fbbe48a6796cb7414a92cd785d9f4a976c2f70fc59c60a309f95e3022db77a",
    ),
    (
        57,
        "e038a2370dbd74c3c8b89b95e7c351fec4821e3415f7aef3a0925215bc6ff953",
    ),
    (
        63,
        "c309180feace42e90107301813aef6f309cac604e831b3fd9692a3298aa6da54",
    ),
    (
        64,
        "3a38aed112131d75fc0e636437f5b675c83c01ade88d99f6b6c54b0d6129174f",
    ),
    (
        65,
        "2ee4bedec261c1561dafa7ba28e4e3ece281bc0f51afca40b83b3a2a7c41a050",
    ),
    (
        119,
        "0a70cbf85ea376617e4bfad11040a9559638f8ceb57844a901573674578af539",
    ),
    (
        127,
        "ff998a2ad3412188b7ba531324bf977b22e77aa3b1befb11c699bf2a14959ee7",
    ),
    (
        128,
        "8b94fd8b7db8b1ef29c089c16389697a057310b7c739c1ad844e9be970f5cfd6",
    ),
    (
        129,
        "22afcb610b1282b24536c87a33acc00a80c720c9d3509960ae11a9bd87501330",
    ),
    (
        1000,
        "c85e29b0cb8af116cdf735961dfe2a1f12e44bcbb97693911529e1fd0e8d199e",
    ),
    (
        6400,
        "10a39c4cf36b6eddb2b209d7d641b663a123982997e510c27243e7760a17af44",
    ),
];

fn unhex(s: &str) -> Vec<u8> {
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex"))
        .collect()
}

fn long_msg(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 7 + 13) % 256) as u8).collect()
}

#[test]
fn cavp_short_messages_scalar() {
    for (msg_hex, digest_hex) in SHORT_MSG {
        let msg = unhex(msg_hex);
        assert_eq!(&sha256(&msg).to_hex(), digest_hex, "msg {msg_hex:?}");
    }
}

#[test]
fn cavp_long_messages_scalar() {
    for &(len, digest_hex) in LONG_MSG {
        assert_eq!(&sha256(&long_msg(len)).to_hex(), digest_hex, "len {len}");
    }
}

/// Every CAVP vector through the batch hasher, on both lane tiers: the
/// SIMD path must agree byte-for-byte with the published digests even when
/// lanes are partially filled or mixed-length.
#[test]
fn cavp_vectors_through_batch_hasher() {
    let mut msgs: Vec<Vec<u8>> = SHORT_MSG.iter().map(|(m, _)| unhex(m)).collect();
    msgs.extend(LONG_MSG.iter().map(|&(len, _)| long_msg(len)));
    let expected: Vec<&str> = SHORT_MSG
        .iter()
        .map(|&(_, d)| d)
        .chain(LONG_MSG.iter().map(|&(_, d)| d))
        .collect();
    // Duplicate the list so equal-length groups actually fill SIMD lanes.
    let refs: Vec<&[u8]> = msgs
        .iter()
        .chain(msgs.iter())
        .map(|m| m.as_slice())
        .collect();
    for scalar in [true, false] {
        force_scalar_lanes(scalar);
        let digests = sha256_batch(&refs);
        for (i, d) in digests.iter().enumerate() {
            let want = expected[i % expected.len()];
            assert_eq!(&d.to_hex(), want, "vector {i}, scalar_tier={scalar}");
        }
    }
    force_scalar_lanes(false);
}

proptest! {
    /// Incremental `update` chunking never changes the digest: absorbing a
    /// message in arbitrary pieces equals the one-shot hash.
    #[test]
    fn incremental_chunking_never_changes_digest(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
        cuts in proptest::collection::vec(0usize..4096, 0..8)
    ) {
        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c.min(data.len())).collect();
        bounds.push(0);
        bounds.push(data.len());
        bounds.sort_unstable();
        let mut h = Sha256::new();
        for pair in bounds.windows(2) {
            h.update(&data[pair[0]..pair[1]]);
        }
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// Batch hashing equals scalar hashing for arbitrary message mixes —
    /// arbitrary counts, lengths, and lane occupancy.
    #[test]
    fn batch_matches_scalar_on_random_messages(
        msgs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..300), 0..24
        )
    ) {
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        let batch = sha256_batch(&refs);
        for (i, m) in msgs.iter().enumerate() {
            prop_assert_eq!(batch[i], sha256(m));
        }
    }
}
