//! Property-based hardening of the Merkle tree: inclusion proofs must
//! round-trip for every leaf of every tree shape (odd tails, single
//! leaves, arbitrary payloads), and any mutilated proof — truncated,
//! extended, bit-flipped, or repositioned — must be rejected. The
//! committee verdict batches (DESIGN.md §15) stake the top tier's audit
//! soundness on exactly these properties.

use proptest::prelude::*;
use rpol_crypto::merkle::{MerkleProof, MerkleTree};
use rpol_crypto::sha256::Digest;

fn arb_leaves() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..48), 1..33)
}

fn tree_of(leaves: &[Vec<u8>]) -> MerkleTree {
    let refs: Vec<&[u8]> = leaves.iter().map(|l| l.as_slice()).collect();
    MerkleTree::from_leaves(&refs)
}

proptest! {
    #[test]
    fn inclusion_proof_roundtrips_for_every_leaf(leaves in arb_leaves()) {
        let tree = tree_of(&leaves);
        prop_assert_eq!(tree.leaf_count(), leaves.len());
        for (i, leaf) in leaves.iter().enumerate() {
            let proof = tree.prove(i);
            prop_assert_eq!(proof.leaf_index, i);
            prop_assert!(proof.verify(tree.root(), leaf), "leaf {} failed", i);
        }
    }

    #[test]
    fn odd_leaf_counts_self_pair_consistently(n in 1usize..40) {
        // The odd-tail duplication must give every index — including the
        // duplicated tail — a verifying proof.
        let leaves: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 4]).collect();
        let tree = tree_of(&leaves);
        for (i, leaf) in leaves.iter().enumerate() {
            prop_assert!(tree.prove(i).verify(tree.root(), leaf));
        }
        if n % 2 == 1 && n > 1 {
            // Known artifact of the classic self-pairing construction:
            // appending a copy of the odd tail reproduces the root
            // (CVE-2012-2459 in Bitcoin). Pin it so nobody mistakes the
            // root alone for a leaf-count commitment — consumers like the
            // committee verdict batch must bind the count separately, and
            // do.
            let mut padded = leaves.clone();
            padded.push(leaves.last().expect("nonempty").clone());
            prop_assert_eq!(tree_of(&padded).root(), tree.root());
        }
    }

    #[test]
    fn single_leaf_tree_proves_with_empty_path(payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let tree = MerkleTree::from_leaves(&[payload.as_slice()]);
        let proof = tree.prove(0);
        prop_assert!(proof.siblings.is_empty(), "one leaf needs no siblings");
        prop_assert!(proof.verify(tree.root(), &payload));
        let mut other = payload.clone();
        other.push(0xFF);
        prop_assert!(!proof.verify(tree.root(), &other));
    }

    #[test]
    fn truncated_proofs_are_rejected(leaves in arb_leaves(), pick in 0usize..64) {
        let tree = tree_of(&leaves);
        let i = pick % leaves.len();
        let proof = tree.prove(i);
        // Trees with at least two levels: dropping any suffix of the
        // sibling path must fail verification.
        for keep in 0..proof.siblings.len() {
            let cut = MerkleProof {
                leaf_index: proof.leaf_index,
                siblings: proof.siblings[..keep].to_vec(),
            };
            prop_assert!(!cut.verify(tree.root(), &leaves[i]), "kept {} of {}", keep, proof.siblings.len());
        }
        // And so must padding it with an extra sibling.
        let mut extended = proof.clone();
        extended.siblings.push(Digest([0u8; 32]));
        prop_assert!(!extended.verify(tree.root(), &leaves[i]));
    }

    #[test]
    fn bit_flipped_proofs_are_rejected(
        leaves in arb_leaves(),
        pick in 0usize..64,
        level in 0usize..16,
        bit in 0usize..256,
    ) {
        let tree = tree_of(&leaves);
        let i = pick % leaves.len();
        let proof = tree.prove(i);
        prop_assume!(!proof.siblings.is_empty());
        let mut forged = proof.clone();
        let lvl = level % forged.siblings.len();
        let mut raw = forged.siblings[lvl].0;
        raw[bit / 8] ^= 1 << (bit % 8);
        forged.siblings[lvl] = Digest(raw);
        prop_assert!(!forged.verify(tree.root(), &leaves[i]));
    }

    #[test]
    fn proofs_do_not_transplant_across_positions(leaves in arb_leaves(), pick in 0usize..64) {
        prop_assume!(leaves.len() >= 2);
        let tree = tree_of(&leaves);
        let i = pick % leaves.len();
        let j = (i + 1) % leaves.len();
        let mut proof = tree.prove(i);
        // The right payload under the wrong claimed index must fail
        // (unless the two leaves happen to be byte-identical, in which
        // case sibling paths can legitimately coincide in tiny trees).
        proof.leaf_index = j;
        if leaves[i] != leaves[j] {
            prop_assert!(!proof.verify(tree.root(), &leaves[j]));
        }
    }
}
