//! `rpol-exec`: a persistent, deterministic work-stealing executor.
//!
//! The epoch pipeline used to spawn fresh scoped OS threads per phase per
//! epoch (training fan-out, verification fan-out). This crate replaces
//! those with **one long-lived thread pool** shared across epochs and
//! phases: tasks are pushed onto per-worker deques (owner pops LIFO from
//! the back, stealers pop FIFO from the front) plus a global injector
//! queue for tasks submitted from outside the pool. Victim order for
//! stealing is a seeded permutation per worker, so scheduling is
//! reproducible run-to-run for a fixed thread count.
//!
//! # Determinism contract (DESIGN.md §12)
//!
//! The executor never makes a *value-affecting* decision. Callers draw all
//! randomness serially before fanning out, tasks write results into
//! pre-sized indexed slots ([`Executor::run_indexed`]), and reductions run
//! in index order on the caller's thread. Under that discipline the results
//! are bitwise identical for **any** thread count, including 1 — the
//! seeded steal order only makes the *schedule* reproducible, it is not
//! what correctness rests on.
//!
//! Observability: the executor emits **metrics counters only** — never
//! trace events — because steal counts and queue depths are scheduling
//! facts that may differ between serial and parallel runs, and the obs
//! determinism contract compares serial/parallel event multisets.
//!
//! # Example
//!
//! ```
//! use rpol_exec::Executor;
//!
//! let exec = Executor::new(4);
//! let squares = exec.run_indexed(8, |i| i * i);
//! assert_eq!(squares[7], 49);
//!
//! // Nested spawn: a task may schedule follow-up work into the same scope.
//! let mut flags = vec![false; 4];
//! exec.scope(|s| {
//!     for (i, flag) in flags.iter_mut().enumerate() {
//!         s.spawn(move || *flag = i % 2 == 0);
//!     }
//! });
//! assert_eq!(flags, [true, false, true, false]);
//! ```

use rpol_obs::Recorder;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Environment variable overriding [`Executor::default_threads`].
pub const THREADS_ENV: &str = "RPOL_EXEC_THREADS";

/// The process-wide shared executor, built on first use.
static SHARED: OnceLock<Arc<Executor>> = OnceLock::new();

/// The process-wide shared pool: one executor every compute layer (GEMM
/// row sharding, ad-hoc fan-outs) schedules onto, so kernels nested under
/// an epoch-pipeline task never oversubscribe the host with per-call
/// scoped threads.
///
/// Built lazily on first call with [`Executor::default_threads`] workers
/// and the global metrics recorder (`rpol_obs::global`), and never torn
/// down — its threads park when idle and die with the process. Nesting is
/// safe in both directions: a shared-pool worker that opens another shared
/// scope help-drains instead of sleeping, and a worker of a *different*
/// executor that blocks in a shared scope merely sleeps on the condvar.
pub fn shared() -> &'static Arc<Executor> {
    SHARED.get_or_init(|| {
        Arc::new(Executor::with_recorder(
            Executor::default_threads(),
            rpol_obs::global().clone(),
        ))
    })
}

/// A type-erased unit of work. Jobs are `'static` inside the pool; the
/// scope API transmutes shorter-lived closures in and guarantees they run
/// (or are dropped) before the borrow they capture ends.
type Job = Box<dyn FnOnce() + Send>;

/// Distinguishes executors so a pool thread never pops work belonging to a
/// different executor instance living in the same process.
static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// `(pool id, worker index)` when the current thread is a pool worker.
    static CURRENT_WORKER: Cell<Option<(u64, usize)>> = const { Cell::new(None) };
}

/// SplitMix64 step — the seed expander behind the per-worker victim
/// permutations (scheduling only; never value-affecting).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded permutation of `0..n` excluding `me` — the order worker `me`
/// scans victims when its own deque and the injector are empty.
fn victim_order(me: usize, n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).filter(|&v| v != me).collect();
    let mut state = seed ^ (me as u64).wrapping_mul(0xA076_1D64_78BD_642F);
    // Fisher–Yates with the splitmix stream.
    for i in (1..order.len()).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// State shared between the pool threads and every handle.
struct Shared {
    pool_id: u64,
    /// Per-worker deques: owner pushes/pops the back, thieves pop the front.
    locals: Vec<Mutex<VecDeque<Job>>>,
    /// Overflow queue for work submitted from non-pool threads.
    injector: Mutex<VecDeque<Job>>,
    /// Parking lot: bumped on every push so sleepers never miss work.
    work_epoch: AtomicU64,
    sleep: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    /// Tasks currently queued (not yet started) across all queues.
    queued: AtomicUsize,
    /// High-water mark of `queued`, exported as a gauge.
    queued_peak: AtomicUsize,
    recorder: Arc<Recorder>,
}

impl Shared {
    /// Pushes a job: onto the calling worker's own deque (LIFO end) when
    /// the caller is a pool thread of this executor, else onto the
    /// injector. Always wakes sleepers.
    fn push(&self, job: Job) {
        // Count the job BEFORE publishing it: a sibling can steal (and
        // decrement) the instant it lands in a deque, and counting after
        // would let `queued` wrap below zero under that race.
        let depth = self.queued.fetch_add(1, Ordering::SeqCst) + 1;
        let peak = self.queued_peak.fetch_max(depth, Ordering::SeqCst);
        if depth > peak && self.recorder.enabled() {
            self.recorder
                .gauge_set("exec.queue_depth_peak", depth as f64);
        }
        let me = CURRENT_WORKER.with(|c| c.get());
        match me {
            Some((pool, idx)) if pool == self.pool_id => {
                self.locals[idx].lock().expect("local deque").push_back(job);
            }
            _ => {
                self.injector.lock().expect("injector").push_front(job);
                if self.recorder.enabled() {
                    self.recorder.counter_add("exec.injected", 1);
                }
            }
        }
        self.work_epoch.fetch_add(1, Ordering::SeqCst);
        // Lock/unlock pairs the notification with the sleepers' re-check,
        // so a worker can never sleep through a push.
        drop(self.sleep.lock().expect("sleep lock"));
        self.wake.notify_all();
    }

    /// Tries to obtain one job for worker `me`: own deque (LIFO), then the
    /// injector (FIFO), then victims in seeded order (FIFO steal).
    fn find_task(&self, me: usize, victims: &[usize]) -> Option<Job> {
        if let Some(job) = self.locals[me].lock().expect("local deque").pop_back() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
        if let Some(job) = self.injector.lock().expect("injector").pop_back() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
        for &v in victims {
            if let Some(job) = self.locals[v].lock().expect("victim deque").pop_front() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                if self.recorder.enabled() {
                    self.recorder.counter_add("exec.steals", 1);
                }
                return Some(job);
            }
        }
        None
    }

    fn run_job(&self, job: Job) {
        job();
        if self.recorder.enabled() {
            self.recorder.counter_add("exec.tasks", 1);
        }
    }

    /// The main loop of one pool thread.
    fn worker_loop(&self, me: usize, victims: &[usize]) {
        CURRENT_WORKER.with(|c| c.set(Some((self.pool_id, me))));
        loop {
            let epoch = self.work_epoch.load(Ordering::SeqCst);
            if let Some(job) = self.find_task(me, victims) {
                self.run_job(job);
                continue;
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let guard = self.sleep.lock().expect("sleep lock");
            if self.work_epoch.load(Ordering::SeqCst) != epoch
                || self.shutdown.load(Ordering::SeqCst)
            {
                continue;
            }
            // The timeout is a pure backstop; the epoch/lock protocol above
            // already rules out lost wakeups.
            let _ = self
                .wake
                .wait_timeout(guard, Duration::from_millis(200))
                .expect("sleep wait");
        }
    }
}

/// Book-keeping for one [`Executor::scope`] invocation.
#[derive(Default)]
struct ScopeState {
    /// Spawned-but-unfinished task count (counted from spawn time).
    pending: AtomicUsize,
    /// First panic payload observed in a task of this scope.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    done: Condvar,
    done_lock: Mutex<()>,
}

impl ScopeState {
    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().expect("panic slot");
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn finish_one(&self) {
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            drop(self.done_lock.lock().expect("done lock"));
            self.done.notify_all();
        }
    }
}

/// A spawn handle scoped to one [`Executor::scope`] call: tasks may borrow
/// anything that outlives the scope (`'env`), and may spawn follow-up
/// tasks into the same scope by capturing the `&Scope` reference (it is
/// `Copy`-able as a reference and `Sync`).
pub struct Scope<'scope, 'env: 'scope> {
    shared: Arc<Shared>,
    state: Arc<ScopeState>,
    scope: PhantomData<&'scope mut &'scope ()>,
    env: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Schedules `f` onto the pool. The closure may borrow `'scope` data
    /// (anything alive for the whole `scope` call); it runs before
    /// [`Executor::scope`] returns, panics are re-raised there.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                state.record_panic(payload);
            }
            state.finish_one();
        });
        // SAFETY: `scope()` blocks until `pending == 0` before returning
        // (even when the body panics), so the job — and every `'scope`
        // borrow it captures — is consumed while those borrows are live.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        self.shared.push(job);
    }
}

/// The persistent thread pool. Construct once, reuse across every epoch
/// and phase; dropping it shuts the threads down.
pub struct Executor {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Executor {
    /// Spawns a pool of `threads` workers (at least one) with the shared
    /// no-op recorder.
    pub fn new(threads: usize) -> Self {
        Self::with_recorder(threads, rpol_obs::noop().clone())
    }

    /// Spawns a pool whose metrics land on `recorder` (`exec.tasks`,
    /// `exec.steals`, `exec.injected`, gauges `exec.threads` and
    /// `exec.queue_depth_peak`).
    pub fn with_recorder(threads: usize, recorder: Arc<Recorder>) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            pool_id: NEXT_POOL_ID.fetch_add(1, Ordering::SeqCst),
            locals: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            work_epoch: AtomicU64::new(0),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            queued: AtomicUsize::new(0),
            queued_peak: AtomicUsize::new(0),
            recorder,
        });
        if shared.recorder.enabled() {
            shared.recorder.gauge_set("exec.threads", threads as f64);
        }
        let handles = (0..threads)
            .map(|me| {
                let shared = Arc::clone(&shared);
                // Scheduling seed: fixed, so a given (thread count, task
                // DAG) steals in the same order every run.
                let victims = victim_order(me, threads, 0x5EED_EC5E_C0DE);
                std::thread::Builder::new()
                    .name(format!("rpol-exec-{me}"))
                    .spawn(move || shared.worker_loop(me, &victims))
                    .expect("spawn pool thread")
            })
            .collect();
        Self { shared, handles }
    }

    /// Pool width.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Default pool width: `RPOL_EXEC_THREADS` when set, else the host
    /// parallelism capped at 8 (the bench sweep's top configuration).
    pub fn default_threads() -> usize {
        std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
                    .min(8)
            })
    }

    /// Runs `f` with a [`Scope`] for spawning borrowing tasks, then blocks
    /// until every spawned task (including nested spawns) finished. Task
    /// panics are propagated here, after all siblings completed.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        let scope = Scope {
            shared: Arc::clone(&self.shared),
            state: Arc::new(ScopeState::default()),
            scope: PhantomData,
            env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        self.wait_scope(&scope.state);
        if let Some(payload) = scope.state.panic.lock().expect("panic slot").take() {
            resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Blocks until the scope's pending count hits zero. A caller that is
    /// itself a pool worker helps drain queues instead of sleeping, so
    /// nested scopes cannot deadlock the pool.
    fn wait_scope(&self, state: &ScopeState) {
        let me = CURRENT_WORKER.with(|c| c.get());
        match me {
            Some((pool, idx)) if pool == self.shared.pool_id => {
                let victims: Vec<usize> = (0..self.threads()).filter(|&v| v != idx).collect();
                while state.pending.load(Ordering::SeqCst) != 0 {
                    match self.shared.find_task(idx, &victims) {
                        Some(job) => self.shared.run_job(job),
                        None => std::thread::yield_now(),
                    }
                }
            }
            _ => {
                let mut guard = self.shared.sleep.lock().expect("sleep lock");
                drop(guard);
                let mut done = state.done_lock.lock().expect("done lock");
                while state.pending.load(Ordering::SeqCst) != 0 {
                    done = state
                        .done
                        .wait_timeout(done, Duration::from_millis(50))
                        .expect("done wait")
                        .0;
                }
                guard = self.shared.sleep.lock().expect("sleep lock");
                drop(guard);
            }
        }
    }

    /// Fire-and-forget: runs `f` on the pool with no completion handle.
    /// The job owns its captures (`'static`), so it may outlive the call
    /// site — the shape background tick loops (e.g. the socket server's
    /// reactor pump) need. A panic inside `f` is swallowed (and counted
    /// as `exec.detached_panics` when metrics are enabled) rather than
    /// unwinding a pool thread: detached jobs have no joiner to rethrow
    /// into.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let shared = Arc::clone(&self.shared);
        self.shared.push(Box::new(move || {
            if catch_unwind(AssertUnwindSafe(f)).is_err() && shared.recorder.enabled() {
                shared.recorder.counter_add("exec.detached_panics", 1);
            }
        }));
    }

    /// Deterministic indexed fan-out: computes `f(i)` for `i in 0..n` on
    /// the pool and returns the results **in index order** — the canonical
    /// reduction shape for bitwise-reproducible parallel verification.
    pub fn run_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        self.scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                let f = &f;
                s.spawn(move || *slot = Some(f(i)));
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every index computed"))
            .collect()
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        drop(self.shared.sleep.lock().expect("sleep lock"));
        self.shared.wake.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Executor({} threads)", self.threads())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_matches_serial_at_every_thread_count() {
        let serial: Vec<u64> = (0..64u64).map(|i| i.wrapping_mul(i) ^ 0xABCD).collect();
        for threads in [1, 2, 8] {
            let exec = Executor::new(threads);
            let parallel = exec.run_indexed(64, |i| (i as u64).wrapping_mul(i as u64) ^ 0xABCD);
            assert_eq!(parallel, serial, "{threads} threads");
        }
    }

    #[test]
    fn pool_is_reusable_across_many_scopes() {
        let exec = Executor::new(4);
        for round in 0..50usize {
            let sum: usize = exec.run_indexed(16, |i| i * round).iter().sum();
            assert_eq!(sum, 120 * round);
        }
    }

    #[test]
    fn nested_spawn_runs_before_scope_returns() {
        let exec = Executor::new(3);
        let flags: Vec<AtomicUsize> = (0..24).map(|_| AtomicUsize::new(0)).collect();
        exec.scope(|s| {
            for chunk in flags.chunks(4) {
                s.spawn(move || {
                    // First element set by the outer task, the rest by a
                    // nested task scheduled from inside the pool.
                    chunk[0].store(1, Ordering::SeqCst);
                    s.spawn(move || {
                        for flag in &chunk[1..] {
                            flag.store(1, Ordering::SeqCst);
                        }
                    });
                });
            }
        });
        assert!(flags.iter().all(|f| f.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn tasks_borrow_mutably_via_disjoint_slots() {
        let exec = Executor::new(2);
        let mut values = vec![0u32; 10];
        exec.scope(|s| {
            for (i, v) in values.iter_mut().enumerate() {
                s.spawn(move || *v = i as u32 + 1);
            }
        });
        assert_eq!(values, (1..=10).collect::<Vec<u32>>());
    }

    #[test]
    fn panic_in_task_propagates_after_siblings_finish() {
        let exec = Executor::new(2);
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            exec.scope(|s| {
                for i in 0..8 {
                    let finished = &finished;
                    s.spawn(move || {
                        if i == 3 {
                            panic!("boom");
                        }
                        finished.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }));
        assert!(result.is_err(), "panic must propagate");
        assert_eq!(finished.load(Ordering::SeqCst), 7, "siblings still ran");
        // The pool survives a panicked scope.
        assert_eq!(exec.run_indexed(4, |i| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn metrics_count_tasks_and_threads() {
        let rec = Arc::new(Recorder::logical());
        let exec = Executor::with_recorder(4, rec.clone());
        let _ = exec.run_indexed(32, |i| i);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("exec.tasks"), 32);
        let threads = snap
            .gauges
            .iter()
            .find(|(n, _)| n.as_str() == "exec.threads")
            .map(|(_, v)| *v);
        assert_eq!(threads, Some(4.0));
        // No trace events, ever: scheduling facts are metrics-only.
        assert!(rec.events().is_empty());
    }

    #[test]
    fn victim_order_is_seeded_and_stable() {
        let a = victim_order(2, 8, 42);
        let b = victim_order(2, 8, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 7);
        assert!(!a.contains(&2));
        let c = victim_order(3, 8, 42);
        assert_ne!(a, c, "different workers scan in different orders");
    }

    #[test]
    fn shared_pool_is_one_process_wide_instance() {
        let first = Arc::as_ptr(shared());
        let again = Arc::as_ptr(shared());
        assert_eq!(first, again, "shared() must always return the same pool");
        assert!(shared().threads() >= 1);
        // The shared pool is reusable like any other executor.
        assert_eq!(shared().run_indexed(4, |i| i * 2), vec![0, 2, 4, 6]);
    }

    #[test]
    fn detached_spawn_runs_and_survives_panics() {
        let exec = Executor::new(2);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..16 {
            let hits = Arc::clone(&hits);
            exec.spawn(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        // A panicking detached job must not take a pool thread down.
        exec.spawn(|| panic!("detached panic"));
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while hits.load(Ordering::SeqCst) < 16 {
            assert!(
                std::time::Instant::now() < deadline,
                "detached jobs never ran"
            );
            std::thread::yield_now();
        }
        // The pool still executes structured work after the panic.
        assert_eq!(exec.run_indexed(4, |i| i + 1), vec![1, 2, 3, 4]);
    }

    #[test]
    fn default_threads_honors_env_override() {
        // Serialized by cargo's per-test process isolation being absent:
        // use a throwaway variable name check instead of mutating the real
        // one concurrently with other tests.
        assert!(Executor::default_threads() >= 1);
    }
}
