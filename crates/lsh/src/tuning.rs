//! The Eq. 6 multi-objective LSH parameter optimizer.
//!
//! Given the calibrated distance bounds `α` (largest distance that must
//! still match — the reproduction-error tolerance) and `β` (smallest
//! distance that must be rejected — the spoof threshold), the manager
//! solves
//!
//! ```text
//! min 1 − Pr_lsh(α, r, k, l)      (false-negative proxy)
//! min Pr_lsh(β, r, k, l)          (false-positive proxy)
//! s.t. k·l ≤ K_lsh
//! ```
//!
//! by **simple additive weighting** (the paper cites Afshari et al.): scan
//! every `(k, l)` pair within the budget and, for each, pick `r` by golden
//! scan on the weighted objective; return the global best.

use crate::probability::matching_probability;
use crate::pstable::LshParams;
use serde::{Deserialize, Serialize};

/// Configuration for the Eq. 6 optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TuningConfig {
    /// Distance that honest reproduction errors must not exceed; the
    /// optimizer maximizes `Pr_lsh(alpha)`.
    pub alpha: f64,
    /// Distance at which results are considered spoofed; the optimizer
    /// minimizes `Pr_lsh(beta)`.
    pub beta: f64,
    /// Budget on `k·l` (the paper uses `K_lsh = 16`).
    pub k_lsh: usize,
    /// Weight on the false-negative proxy in the additive objective;
    /// `1 − weight_fnr` goes to the false-positive proxy. The paper wants
    /// rewards for honesty, so the default leans toward low FNR.
    pub weight_fnr: f64,
}

impl TuningConfig {
    /// Creates a config with the paper's defaults (`K_lsh = 16`, equal
    /// weighting).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha < beta` and both are finite.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(
            alpha.is_finite() && beta.is_finite() && alpha > 0.0 && alpha < beta,
            "require 0 < alpha < beta, got alpha={alpha}, beta={beta}"
        );
        Self {
            alpha,
            beta,
            k_lsh: 16,
            weight_fnr: 0.5,
        }
    }

    /// Sets the `k·l` budget.
    ///
    /// # Panics
    ///
    /// Panics if `k_lsh == 0`.
    pub fn with_budget(mut self, k_lsh: usize) -> Self {
        assert!(k_lsh > 0, "budget must be positive");
        self.k_lsh = k_lsh;
        self
    }

    /// Sets the false-negative weight.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < weight_fnr < 1`.
    pub fn with_fnr_weight(mut self, weight_fnr: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&weight_fnr) && weight_fnr > 0.0,
            "weight must be in (0, 1)"
        );
        self.weight_fnr = weight_fnr;
        self
    }
}

/// The optimizer's result: chosen parameters plus the theoretical operating
/// point, reported alongside measured rates in Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TuningOutcome {
    /// The optimal parameters.
    pub params: LshParams,
    /// `Pr_lsh(alpha)` under the chosen parameters (ideally ≈ 0.95).
    pub pr_alpha: f64,
    /// `Pr_lsh(beta)` under the chosen parameters (ideally ≈ 0.05).
    pub pr_beta: f64,
}

impl TuningOutcome {
    /// Theoretical false-negative bound `1 − Pr_lsh(α)` for honest workers
    /// whose errors do not exceed `α` (worst case of Eq. 5).
    pub fn fnr_bound(&self) -> f64 {
        1.0 - self.pr_alpha
    }

    /// Theoretical false-positive bound `Pr_lsh(β)` for spoof distances of
    /// at least `β` (worst case of Eq. 5).
    pub fn fpr_bound(&self) -> f64 {
        self.pr_beta
    }
}

/// Solves Eq. 6 for the optimal `{r, k, l}`.
///
/// Scans all `(k, l)` with `k·l ≤ K_lsh` and, for each pair, refines `r`
/// over a geometric grid spanning `[α/4, 64·β]`; the objective is the
/// weighted sum `w·(1 − Pr_lsh(α)) + (1−w)·Pr_lsh(β)`.
pub fn tune(config: &TuningConfig) -> TuningOutcome {
    let mut best: Option<(f64, TuningOutcome)> = None;
    for k in 1..=config.k_lsh {
        for l in 1..=config.k_lsh {
            if k * l > config.k_lsh {
                break;
            }
            // Geometric scan over r, then a local refinement pass.
            let (mut lo, mut hi) = (config.alpha / 4.0, config.beta * 64.0);
            for _round in 0..4 {
                let steps = 64;
                let ratio = (hi / lo).powf(1.0 / (steps - 1) as f64);
                let mut round_best: Option<(f64, f64)> = None;
                let mut r = lo;
                for _ in 0..steps {
                    let pr_a = matching_probability(config.alpha, r, k, l);
                    let pr_b = matching_probability(config.beta, r, k, l);
                    let score = config.weight_fnr * (1.0 - pr_a) + (1.0 - config.weight_fnr) * pr_b;
                    if round_best.is_none_or(|(s, _)| score < s) {
                        round_best = Some((score, r));
                    }
                    r *= ratio;
                }
                let (_, r_best) = round_best.expect("nonempty scan");
                lo = r_best / ratio;
                hi = r_best * ratio;
            }
            let r = (lo * hi).sqrt();
            let pr_alpha = matching_probability(config.alpha, r, k, l);
            let pr_beta = matching_probability(config.beta, r, k, l);
            let score = config.weight_fnr * (1.0 - pr_alpha) + (1.0 - config.weight_fnr) * pr_beta;
            let outcome = TuningOutcome {
                params: LshParams::new(r as f32, k, l),
                pr_alpha,
                pr_beta,
            };
            if best.is_none_or(|(s, _)| score < s) {
                best = Some((score, outcome));
            }
        }
    }
    best.expect("budget >= 1 guarantees at least one candidate")
        .1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_budget() {
        let out = tune(&TuningConfig::new(1.0, 5.0).with_budget(16));
        assert!(out.params.total_hashes() <= 16);
    }

    #[test]
    fn paper_operating_point_roughly_achieved() {
        // β = 5α, K_lsh = 16 — the paper's default calibration. The paper
        // targets Pr(α) = 95% / Pr(β) = 5%; the optimum under this budget
        // sits near (92%, 5%), so assert the shape with margin.
        let out = tune(&TuningConfig::new(1.0, 5.0));
        assert!(out.pr_alpha > 0.85, "Pr(alpha) = {}", out.pr_alpha);
        assert!(out.pr_beta < 0.10, "Pr(beta) = {}", out.pr_beta);
        assert!(out.pr_alpha > out.pr_beta + 0.5, "no separation");
    }

    #[test]
    fn scale_invariance() {
        // Doubling both bounds should double r and keep probabilities.
        let a = tune(&TuningConfig::new(1.0, 5.0));
        let b = tune(&TuningConfig::new(2.0, 10.0));
        assert_eq!(a.params.k, b.params.k);
        assert_eq!(a.params.l, b.params.l);
        assert!((b.params.r / a.params.r - 2.0).abs() < 0.05);
        assert!((a.pr_alpha - b.pr_alpha).abs() < 1e-3);
        assert!((a.pr_beta - b.pr_beta).abs() < 1e-3);
    }

    #[test]
    fn larger_budget_no_worse() {
        let small = tune(&TuningConfig::new(1.0, 5.0).with_budget(4));
        let large = tune(&TuningConfig::new(1.0, 5.0).with_budget(64));
        let score = |o: &TuningOutcome| 0.5 * (1.0 - o.pr_alpha) + 0.5 * o.pr_beta;
        assert!(score(&large) <= score(&small) + 1e-9);
    }

    #[test]
    fn wider_separation_easier() {
        let tight = tune(&TuningConfig::new(1.0, 2.0));
        let wide = tune(&TuningConfig::new(1.0, 20.0));
        let score = |o: &TuningOutcome| 0.5 * (1.0 - o.pr_alpha) + 0.5 * o.pr_beta;
        assert!(score(&wide) < score(&tight));
        assert!(wide.pr_alpha > 0.95);
        assert!(wide.pr_beta < 0.02);
    }

    #[test]
    fn fnr_weighting_shifts_tradeoff() {
        let fnr_heavy = tune(&TuningConfig::new(1.0, 5.0).with_fnr_weight(0.9));
        let fpr_heavy = tune(&TuningConfig::new(1.0, 5.0).with_fnr_weight(0.1));
        assert!(fnr_heavy.pr_alpha >= fpr_heavy.pr_alpha);
        assert!(fnr_heavy.pr_beta >= fpr_heavy.pr_beta);
    }

    #[test]
    #[should_panic(expected = "alpha < beta")]
    fn alpha_must_precede_beta() {
        TuningConfig::new(5.0, 1.0);
    }

    #[test]
    fn outcome_bounds_accessors() {
        let out = tune(&TuningConfig::new(1.0, 5.0));
        assert!((out.fnr_bound() - (1.0 - out.pr_alpha)).abs() < 1e-12);
        assert!((out.fpr_bound() - out.pr_beta).abs() < 1e-12);
    }
}
