//! p-stable locality-sensitive hashing for Euclidean distance (§II-C, §V-C).
//!
//! RPoL replaces raw-weight comparison with LSH fuzzy matching so that a
//! worker only ships the *input* weights of a sampled checkpoint plus a
//! compact LSH digest of the output — roughly halving verification traffic
//! while still tolerating the inherent reproduction errors of DNN training.
//!
//! The crate provides:
//!
//! * [`pstable`] — the 2-stable (Gaussian) hash family
//!   `h(x) = ⌊(a·x + b)/r⌋` with `l` groups of `k` functions, seeded from a
//!   shared PRF key so the manager and workers derive identical families,
//! * [`probability`] — the closed-form collision model: per-hash collision
//!   probability `p(c/r)` and the family matching probability
//!   `Pr_lsh(c, r, k, l) = 1 - (1 - p^k)^l` (paper Fig. 1),
//! * [`tuning`] — the multi-objective parameter optimizer of Eq. 6, which
//!   minimizes the false-negative proxy `1 - Pr_lsh(α)` and false-positive
//!   proxy `Pr_lsh(β)` by simple additive weighting under the compute
//!   budget `k·l ≤ K_lsh`,
//! * [`matching`] — signature comparison and digesting for commitments.
//!
//! # Examples
//!
//! ```
//! use rpol_lsh::pstable::{LshFamily, LshParams};
//!
//! let params = LshParams::new(4.0, 4, 4);
//! let family = LshFamily::generate(8, params, 42);
//! let x = vec![1.0; 8];
//! let mut y = x.clone();
//! y[0] += 1e-4; // tiny "reproduction error"
//! assert!(family.hash(&x).matches(&family.hash(&y)));
//! ```

pub mod matching;
pub mod probability;
pub mod pstable;
pub mod tuning;

pub use matching::Signature;
pub use probability::{collision_probability, matching_probability};
pub use pstable::{LshFamily, LshParams};
pub use tuning::{tune, TuningConfig, TuningOutcome};
