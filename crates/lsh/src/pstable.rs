//! The 2-stable (Gaussian) LSH family `h(x) = ⌊(a·x + b)/r⌋`.

use crate::matching::Signature;
use rpol_crypto::Prf;
use rpol_tensor::gemm::matmul_nt_f64acc;
use rpol_tensor::rng::Pcg32;
use serde::{Deserialize, Serialize};

/// LSH family parameters `{r, k, l}` (§II-C).
///
/// `r` is the quantization bucket width, `k` the number of concatenated
/// hash functions per group (AND-amplification), `l` the number of groups
/// (OR-amplification). The paper's compute budget constrains `k·l ≤ K_lsh`.
///
/// # Examples
///
/// ```
/// use rpol_lsh::LshParams;
///
/// let p = LshParams::new(4.0, 4, 4);
/// assert_eq!(p.total_hashes(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LshParams {
    /// Bucket width `r` (same unit as the Euclidean distances being hashed).
    pub r: f32,
    /// Hashes per group (AND amplification).
    pub k: usize,
    /// Number of groups (OR amplification).
    pub l: usize,
}

impl LshParams {
    /// Creates a parameter set.
    ///
    /// # Panics
    ///
    /// Panics unless `r > 0`, `k > 0` and `l > 0`.
    pub fn new(r: f32, k: usize, l: usize) -> Self {
        assert!(
            r.is_finite() && r > 0.0,
            "bucket width must be positive, got {r}"
        );
        assert!(k > 0 && l > 0, "k and l must be positive");
        Self { r, k, l }
    }

    /// Total number of hash evaluations per input (`k·l`), the quantity
    /// bounded by `K_lsh` in Eq. 6.
    pub fn total_hashes(&self) -> usize {
        self.k * self.l
    }
}

/// A concrete, seeded 2-stable hash family over vectors of a fixed
/// dimension.
///
/// The projection vectors `a` (standard normal) and offsets `b`
/// (uniform in `[0, r)`) are expanded deterministically from a seed via the
/// workspace PRF, so the pool manager and all workers derive the *same*
/// family from the epoch's calibration broadcast — a correctness
/// requirement for commitment verification.
///
/// # Examples
///
/// ```
/// use rpol_lsh::{LshFamily, LshParams};
///
/// let f1 = LshFamily::generate(16, LshParams::new(2.0, 4, 4), 7);
/// let f2 = LshFamily::generate(16, LshParams::new(2.0, 4, 4), 7);
/// let x = vec![0.5; 16];
/// assert_eq!(f1.hash(&x), f2.hash(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LshFamily {
    params: LshParams,
    dim: usize,
    /// Row-major `(k·l) × dim` projection matrix.
    projections: Vec<f32>,
    /// `k·l` offsets in `[0, r)`.
    offsets: Vec<f32>,
}

impl LshFamily {
    /// Deterministically generates a family for `dim`-dimensional inputs.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn generate(dim: usize, params: LshParams, seed: u64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        let prf = Prf::new(&seed.to_be_bytes());
        let total = params.total_hashes();
        let mut rng = Pcg32::seed_from(prf.derive_seed(0));
        let projections = (0..total * dim).map(|_| rng.next_normal()).collect();
        let mut rng_b = Pcg32::seed_from(prf.derive_seed(1));
        let offsets = (0..total).map(|_| rng_b.uniform(0.0, params.r)).collect();
        Self {
            params,
            dim,
            projections,
            offsets,
        }
    }

    /// The family parameters.
    pub fn params(&self) -> LshParams {
        self.params
    }

    /// The input dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Hashes a vector into an `l`-group signature.
    ///
    /// All `k·l` projections are computed as a single GEMM-lowered pass
    /// (`rpol_tensor::gemm::matmul_nt_f64acc`) rather than `k·l` separate
    /// dot products; the result is bitwise identical to [`hash_scalar`],
    /// which is kept as the reference oracle and enforced equal by property
    /// tests.
    ///
    /// [`hash_scalar`]: LshFamily::hash_scalar
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn hash(&self, x: &[f32]) -> Signature {
        assert_eq!(x.len(), self.dim, "input dimension mismatch");
        let dots = matmul_nt_f64acc(
            1,
            self.params.total_hashes(),
            self.dim,
            x,
            &self.projections,
            1,
        );
        self.quantize_row(&dots)
    }

    /// The original scalar hash: one explicit dot product per hash
    /// function, each an f64 accumulator chain in ascending index order.
    /// Retained as the reference oracle the GEMM-lowered [`hash`] and
    /// [`hash_batch`] paths are tested bitwise-equal against.
    ///
    /// [`hash`]: LshFamily::hash
    /// [`hash_batch`]: LshFamily::hash_batch
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn hash_scalar(&self, x: &[f32]) -> Signature {
        assert_eq!(x.len(), self.dim, "input dimension mismatch");
        let LshParams { r, k, l } = self.params;
        let mut groups = Vec::with_capacity(l);
        for g in 0..l {
            let mut values = Vec::with_capacity(k);
            for j in 0..k {
                let h = g * k + j;
                let row = &self.projections[h * self.dim..(h + 1) * self.dim];
                // f64 accumulation: projections of long weight vectors are
                // the protocol-critical quantity, keep them stable.
                let dot: f64 = row
                    .iter()
                    .zip(x)
                    .map(|(&a, &xi)| a as f64 * xi as f64)
                    .sum();
                values.push(((dot + self.offsets[h] as f64) / r as f64).floor() as i64);
            }
            groups.push(values);
        }
        Signature::new(groups)
    }

    /// Hashes many vectors at once: the inputs are stacked into one
    /// `m × dim` matrix and every projection of every input is computed in
    /// a single GEMM call, so a verifier digesting a whole checkpoint list
    /// amortizes the projection-matrix traffic across checkpoints. Uses the
    /// workspace default GEMM thread count; signatures are bitwise
    /// identical for any thread count (see [`hash_batch_threads`]).
    ///
    /// [`hash_batch_threads`]: LshFamily::hash_batch_threads
    ///
    /// # Panics
    ///
    /// Panics if any input's length differs from `self.dim()`.
    pub fn hash_batch(&self, xs: &[&[f32]]) -> Vec<Signature> {
        self.hash_batch_threads(xs, rpol_tensor::gemm::default_threads())
    }

    /// [`hash_batch`] with an explicit worker-thread count. The GEMM shards
    /// disjoint input rows across threads and each signature depends only
    /// on its own row, so the output is bitwise identical for every
    /// `threads` value — a property the test suite enforces.
    ///
    /// [`hash_batch`]: LshFamily::hash_batch
    ///
    /// # Panics
    ///
    /// Panics if any input's length differs from `self.dim()`.
    pub fn hash_batch_threads(&self, xs: &[&[f32]], threads: usize) -> Vec<Signature> {
        for (i, x) in xs.iter().enumerate() {
            assert_eq!(x.len(), self.dim, "input {i} dimension mismatch");
        }
        let total = self.params.total_hashes();
        let mut stacked = Vec::with_capacity(xs.len() * self.dim);
        for x in xs {
            stacked.extend_from_slice(x);
        }
        let dots = matmul_nt_f64acc(
            xs.len(),
            total,
            self.dim,
            &stacked,
            &self.projections,
            threads,
        );
        dots.chunks_exact(total)
            .map(|row| self.quantize_row(row))
            .collect()
    }

    /// Quantizes one input's `k·l` raw projections into a signature using
    /// the exact scalar formula `⌊(dot + b) / r⌋`.
    fn quantize_row(&self, dots: &[f64]) -> Signature {
        let LshParams { r, k, l } = self.params;
        let mut groups = Vec::with_capacity(l);
        for g in 0..l {
            let mut values = Vec::with_capacity(k);
            for j in 0..k {
                let h = g * k + j;
                values.push(((dots[h] + self.offsets[h] as f64) / r as f64).floor() as i64);
            }
            groups.push(values);
        }
        Signature::new(groups)
    }

    /// Approximate size in bytes of the family description if shipped raw;
    /// in practice only `(params, seed)` cross the wire (a few bytes), since
    /// workers regenerate the family locally.
    pub fn storage_size(&self) -> usize {
        (self.projections.len() + self.offsets.len()) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probability::matching_probability;

    fn random_unit_pair(dim: usize, distance: f32, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let mut rng = Pcg32::seed_from(seed);
        let x: Vec<f32> = (0..dim).map(|_| rng.next_normal()).collect();
        // Perturb along a random direction scaled to `distance`.
        let dir: Vec<f32> = (0..dim).map(|_| rng.next_normal()).collect();
        let norm: f32 = dir.iter().map(|d| d * d).sum::<f32>().sqrt();
        let y: Vec<f32> = x
            .iter()
            .zip(&dir)
            .map(|(&xi, &di)| xi + di / norm * distance)
            .collect();
        (x, y)
    }

    #[test]
    fn deterministic_generation() {
        let p = LshParams::new(4.0, 3, 5);
        let a = LshFamily::generate(10, p, 99);
        let b = LshFamily::generate(10, p, 99);
        assert_eq!(a, b);
        let c = LshFamily::generate(10, p, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn identical_inputs_always_match() {
        let f = LshFamily::generate(32, LshParams::new(1.0, 4, 4), 1);
        let x = vec![0.25; 32];
        assert!(f.hash(&x).matches(&f.hash(&x)));
    }

    #[test]
    fn empirical_matches_theory_close() {
        // Points at distance c where Pr_lsh is high should almost always
        // match; empirical rate within a few points of theory.
        let params = LshParams::new(4.0, 2, 4);
        let f = LshFamily::generate(64, params, 5);
        let c = 1.0f32;
        let theory = matching_probability(c as f64, 4.0, 2, 4);
        let trials = 400;
        let hits = (0..trials)
            .filter(|&t| {
                let (x, y) = random_unit_pair(64, c, 1000 + t);
                f.hash(&x).matches(&f.hash(&y))
            })
            .count();
        let empirical = hits as f64 / trials as f64;
        assert!(
            (empirical - theory).abs() < 0.08,
            "empirical {empirical:.3} vs theory {theory:.3}"
        );
    }

    #[test]
    fn empirical_matches_theory_far() {
        let params = LshParams::new(4.0, 4, 4);
        let f = LshFamily::generate(64, params, 6);
        let c = 20.0f32;
        let theory = matching_probability(c as f64, 4.0, 4, 4);
        let trials = 400;
        let hits = (0..trials)
            .filter(|&t| {
                let (x, y) = random_unit_pair(64, c, 5000 + t);
                f.hash(&x).matches(&f.hash(&y))
            })
            .count();
        let empirical = hits as f64 / trials as f64;
        assert!(
            (empirical - theory).abs() < 0.08,
            "empirical {empirical:.3} vs theory {theory:.3}"
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_checked() {
        let f = LshFamily::generate(8, LshParams::new(1.0, 2, 2), 0);
        f.hash(&[1.0; 9]);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_r_rejected() {
        LshParams::new(0.0, 2, 2);
    }
}
