//! LSH signatures: comparison and commitment digests.

use rpol_crypto::sha256::{Digest, Sha256};
use serde::{Deserialize, Serialize};

/// The LSH signature of a vector: `l` groups of `k` quantized projections.
///
/// Two signatures *match* when at least one group agrees on all `k`
/// values — the standard OR-of-ANDs amplification. For commitments the
/// signature is reduced to per-group digests ([`Signature::group_digests`])
/// so the verifier can test group equality against a committed digest
/// without the worker revealing raw projection values ordering-free.
///
/// # Examples
///
/// ```
/// use rpol_lsh::Signature;
///
/// let a = Signature::new(vec![vec![1, 2], vec![3, 4]]);
/// let b = Signature::new(vec![vec![9, 9], vec![3, 4]]);
/// assert!(a.matches(&b)); // second group agrees
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature {
    groups: Vec<Vec<i64>>,
}

impl Signature {
    /// Creates a signature from raw group values.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty, any group is empty, or groups have
    /// unequal lengths.
    pub fn new(groups: Vec<Vec<i64>>) -> Self {
        assert!(!groups.is_empty(), "signature needs at least one group");
        let k = groups[0].len();
        assert!(k > 0, "groups must be non-empty");
        assert!(
            groups.iter().all(|g| g.len() == k),
            "all groups must have the same length"
        );
        Self { groups }
    }

    /// The group values.
    pub fn groups(&self) -> &[Vec<i64>] {
        &self.groups
    }

    /// Number of groups (`l`).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Hashes per group (`k`).
    pub fn hashes_per_group(&self) -> usize {
        self.groups[0].len()
    }

    /// OR-of-ANDs matching: true when any group agrees exactly.
    ///
    /// # Panics
    ///
    /// Panics if the signatures have different `(k, l)` geometry — that
    /// indicates the two sides used different LSH families, a protocol
    /// error.
    pub fn matches(&self, other: &Self) -> bool {
        assert_eq!(
            (self.group_count(), self.hashes_per_group()),
            (other.group_count(), other.hashes_per_group()),
            "signatures from different LSH families"
        );
        self.groups.iter().zip(&other.groups).any(|(a, b)| a == b)
    }

    /// Per-group SHA-256 digests, the form carried inside RPoLv2
    /// commitments.
    pub fn group_digests(&self) -> Vec<Digest> {
        self.groups
            .iter()
            .map(|g| {
                let mut h = Sha256::new();
                for v in g {
                    h.update(&v.to_be_bytes());
                }
                h.finalize()
            })
            .collect()
    }

    /// [`group_digests`] for many signatures in one pass: every group's
    /// message (its `k` big-endian values, so all messages from one LSH
    /// family share a length) is fed to the multi-lane batch hasher, which
    /// digests up to 8 groups per compression pass. Digests are identical
    /// to calling [`group_digests`] per signature — the paths share the
    /// byte layout and the batch hasher is tested byte-equal to the scalar
    /// one.
    ///
    /// [`group_digests`]: Signature::group_digests
    pub fn group_digests_batch(signatures: &[Signature]) -> Vec<Vec<Digest>> {
        let msgs: Vec<Vec<u8>> = signatures
            .iter()
            .flat_map(|s| {
                s.groups.iter().map(|g| {
                    let mut m = Vec::with_capacity(g.len() * 8);
                    for v in g {
                        m.extend_from_slice(&v.to_be_bytes());
                    }
                    m
                })
            })
            .collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        let mut digests = rpol_crypto::sha256_batch(&refs).into_iter();
        signatures
            .iter()
            .map(|s| digests.by_ref().take(s.group_count()).collect())
            .collect()
    }

    /// A single digest binding the whole signature (ordered group digests),
    /// used as the checkpoint payload digest in RPoLv2 commitments.
    pub fn digest(&self) -> Digest {
        let mut h = Sha256::new();
        for d in self.group_digests() {
            h.update(d.as_bytes());
        }
        h.finalize()
    }

    /// Matching against committed *digests* instead of raw values: true
    /// when any of this signature's group digests equals the committed
    /// digest at the same group position.
    ///
    /// This is what the manager evaluates in RPoLv2: it recomputes the
    /// signature of its re-executed weights and compares against the
    /// worker's committed group digests.
    pub fn matches_digests(&self, committed: &[Digest]) -> bool {
        let mine = self.group_digests();
        mine.len() == committed.len() && mine.iter().zip(committed).any(|(a, b)| a == b)
    }

    /// Number of group positions whose digest agrees with the committed
    /// digest at the same position (0 when geometries differ).
    ///
    /// RPoLv3's two-tier accept logic needs the *count*, not just
    /// any-match: ≥ 2 agreeing groups is a confident accept, exactly 1 is
    /// a borderline match that routes through the raw-digest escape hatch.
    pub fn matching_group_count(&self, committed: &[Digest]) -> usize {
        let mine = self.group_digests();
        if mine.len() != committed.len() {
            return 0;
        }
        mine.iter().zip(committed).filter(|(a, b)| a == b).count()
    }

    /// Wire size in bytes of the raw signature (`l·k` 8-byte values).
    pub fn wire_size(&self) -> usize {
        self.group_count() * self.hashes_per_group() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_requires_full_group_agreement() {
        let a = Signature::new(vec![vec![1, 2, 3]]);
        let b = Signature::new(vec![vec![1, 2, 4]]);
        assert!(!a.matches(&b));
        assert!(a.matches(&a.clone()));
    }

    #[test]
    fn any_group_suffices() {
        let a = Signature::new(vec![vec![1], vec![2], vec![3]]);
        let b = Signature::new(vec![vec![7], vec![2], vec![9]]);
        assert!(a.matches(&b));
    }

    #[test]
    fn digest_matching_mirrors_raw_matching() {
        let a = Signature::new(vec![vec![1, 2], vec![3, 4]]);
        let b = Signature::new(vec![vec![1, 2], vec![9, 9]]);
        let c = Signature::new(vec![vec![5, 5], vec![6, 6]]);
        assert_eq!(a.matches(&b), b.matches_digests(&a.group_digests()));
        assert_eq!(a.matches(&c), c.matches_digests(&a.group_digests()));
    }

    #[test]
    fn digest_matching_is_positional() {
        // Same group values in a *different* group position must not match:
        // group g compares against committed digest g only.
        let a = Signature::new(vec![vec![1], vec![2]]);
        let b = Signature::new(vec![vec![2], vec![1]]);
        assert!(!a.matches(&b));
        assert!(!b.matches_digests(&a.group_digests()));
    }

    #[test]
    fn batched_group_digests_equal_per_signature_digests() {
        let sigs: Vec<Signature> = (0..7)
            .map(|i| Signature::new(vec![vec![i, i + 1, -i], vec![2 * i, -3, i * i]]))
            .collect();
        let batched = Signature::group_digests_batch(&sigs);
        for (s, got) in sigs.iter().zip(&batched) {
            assert_eq!(got, &s.group_digests());
        }
        assert!(Signature::group_digests_batch(&[]).is_empty());
    }

    #[test]
    fn matching_group_count_counts_positional_agreements() {
        let a = Signature::new(vec![vec![1], vec![2], vec![3]]);
        let b = Signature::new(vec![vec![1], vec![9], vec![3]]);
        let committed = a.group_digests();
        assert_eq!(b.matching_group_count(&committed), 2);
        assert_eq!(a.matching_group_count(&committed), 3);
        let c = Signature::new(vec![vec![7], vec![8], vec![9]]);
        assert_eq!(c.matching_group_count(&committed), 0);
        // Geometry mismatch is a protocol error, reported as no agreement.
        assert_eq!(a.matching_group_count(&committed[..2]), 0);
    }

    #[test]
    fn signature_digest_binds_content() {
        let a = Signature::new(vec![vec![1, 2], vec![3, 4]]);
        let b = Signature::new(vec![vec![1, 2], vec![3, 5]]);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    #[should_panic(expected = "different LSH families")]
    fn geometry_mismatch_panics() {
        let a = Signature::new(vec![vec![1, 2]]);
        let b = Signature::new(vec![vec![1], vec![2]]);
        a.matches(&b);
    }

    #[test]
    fn wire_size_counts_values() {
        let s = Signature::new(vec![vec![0; 4]; 3]);
        assert_eq!(s.wire_size(), 96);
    }
}
