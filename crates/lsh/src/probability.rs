//! Closed-form collision model for the 2-stable hash family.
//!
//! For `h(x) = ⌊(a·x + b)/r⌋` with `a ~ N(0, I)` and `b ~ U[0, r]`, two
//! points at Euclidean distance `c` collide with probability
//!
//! ```text
//! p(c, r) = 1 − 2Φ(−r/c) − (2c / (√(2π)·r)) · (1 − e^{−r²/(2c²)})
//! ```
//!
//! (Datar–Immorlica–Indyk–Mirrokni 2004), which depends only on the ratio
//! `t = r/c`. With `l` groups of `k` functions, two points match when all
//! `k` hashes agree in at least one group:
//!
//! ```text
//! Pr_lsh(c, r, k, l) = 1 − (1 − p(c,r)^k)^l
//! ```
//!
//! These formulas reproduce the paper's Fig. 1 and drive both the parameter
//! tuner (Eq. 6) and the theoretical FNR/FPR bounds (Eq. 5).

use rpol_tensor::stats::norm_cdf;

/// Per-hash collision probability `p(c, r)` for two points at Euclidean
/// distance `c` with bucket width `r`.
///
/// Edge cases: `c == 0` collides with probability 1; `r == 0` never
/// collides (degenerate bucket).
///
/// # Panics
///
/// Panics if `c` or `r` is negative or non-finite.
pub fn collision_probability(c: f64, r: f64) -> f64 {
    assert!(c.is_finite() && c >= 0.0, "invalid distance {c}");
    assert!(r.is_finite() && r >= 0.0, "invalid bucket width {r}");
    if c == 0.0 {
        return 1.0;
    }
    if r == 0.0 {
        return 0.0;
    }
    let t = r / c;
    let p = 1.0
        - 2.0 * norm_cdf(-t)
        - (2.0 / ((2.0 * std::f64::consts::PI).sqrt() * t)) * (1.0 - (-t * t / 2.0).exp());
    p.clamp(0.0, 1.0)
}

/// Family matching probability `Pr_lsh(c, r, k, l) = 1 − (1 − p^k)^l`.
///
/// # Panics
///
/// Panics if `k == 0` or `l == 0`, or on invalid `c`/`r` (see
/// [`collision_probability`]).
pub fn matching_probability(c: f64, r: f64, k: usize, l: usize) -> f64 {
    assert!(k > 0 && l > 0, "k and l must be positive");
    let p = collision_probability(c, r);
    1.0 - (1.0 - p.powi(k as i32)).powi(l as i32)
}

/// A sampled point of the `Pr_lsh` curve, used by the Fig. 1 regenerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Euclidean distance between the two points.
    pub distance: f64,
    /// Matching probability at that distance.
    pub probability: f64,
}

/// Samples the `Pr_lsh` curve on `[0, max_distance]` at `steps` points
/// (inclusive of both endpoints), reproducing the curves of Fig. 1.
///
/// # Panics
///
/// Panics if `steps < 2` or `max_distance <= 0`.
pub fn matching_curve(
    r: f64,
    k: usize,
    l: usize,
    max_distance: f64,
    steps: usize,
) -> Vec<CurvePoint> {
    assert!(steps >= 2, "need at least 2 curve points");
    assert!(max_distance > 0.0, "max distance must be positive");
    (0..steps)
        .map(|i| {
            let distance = max_distance * i as f64 / (steps - 1) as f64;
            CurvePoint {
                distance,
                probability: matching_probability(distance, r, k, l),
            }
        })
        .collect()
}

/// The Eq. 5 expected false-negative rate:
/// `FNR_lsh = ∫₀^β p_repr(c) · (1 − Pr_lsh(c)) dc`,
/// evaluated by Simpson integration of a caller-supplied reproduction-error
/// density `p_repr` (the paper finds it normal; pass any density).
///
/// The density need not be normalized over `[0, β)`; the result is the
/// conditional rate — the integral divided by `∫₀^β p_repr`.
///
/// # Panics
///
/// Panics if `beta <= 0`, `steps < 2`, or the density integrates to ~0 on
/// the interval.
pub fn expected_fnr(
    p_repr: impl Fn(f64) -> f64,
    beta: f64,
    r: f64,
    k: usize,
    l: usize,
    steps: usize,
) -> f64 {
    assert!(beta > 0.0, "beta must be positive");
    integrate_rate(p_repr, 0.0, beta, steps, |c| {
        1.0 - matching_probability(c, r, k, l)
    })
}

/// The Eq. 5 expected false-positive rate:
/// `FPR_lsh = ∫_β^∞ p_spoof(c) · Pr_lsh(c) dc`,
/// with the upper limit truncated at `c_max` (densities of interest decay
/// fast; pick `c_max` a few times the spoof-distance scale).
///
/// # Panics
///
/// Panics if `c_max <= beta`, `steps < 2`, or the density integrates to ~0.
pub fn expected_fpr(
    p_spoof: impl Fn(f64) -> f64,
    beta: f64,
    c_max: f64,
    r: f64,
    k: usize,
    l: usize,
    steps: usize,
) -> f64 {
    assert!(c_max > beta, "integration range must extend past beta");
    integrate_rate(p_spoof, beta, c_max, steps, |c| {
        matching_probability(c, r, k, l)
    })
}

/// Simpson integration of `density(c)·rate(c)` over `[lo, hi]`, normalized
/// by the density mass on the same interval.
fn integrate_rate(
    density: impl Fn(f64) -> f64,
    lo: f64,
    hi: f64,
    steps: usize,
    rate: impl Fn(f64) -> f64,
) -> f64 {
    assert!(steps >= 2, "need at least two integration steps");
    let n = steps + steps % 2; // Simpson needs an even interval count
    let h = (hi - lo) / n as f64;
    let mut weighted = 0.0;
    let mut mass = 0.0;
    for i in 0..=n {
        let c = lo + h * i as f64;
        let w = if i == 0 || i == n {
            1.0
        } else if i % 2 == 1 {
            4.0
        } else {
            2.0
        };
        let d = density(c).max(0.0);
        weighted += w * d * rate(c);
        mass += w * d;
    }
    assert!(mass > 1e-300, "density has no mass on the interval");
    weighted / mass
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpol_tensor::stats::norm_pdf;

    #[test]
    fn collision_limits() {
        assert_eq!(collision_probability(0.0, 4.0), 1.0);
        assert_eq!(collision_probability(1.0, 0.0), 0.0);
        // Very close points: near-certain collision.
        assert!(collision_probability(1e-9, 1.0) > 0.999);
        // Very distant points: near-zero collision.
        assert!(collision_probability(1e9, 1.0) < 1e-6);
    }

    #[test]
    fn collision_depends_only_on_ratio() {
        let a = collision_probability(1.0, 4.0);
        let b = collision_probability(10.0, 40.0);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn collision_monotone_in_distance() {
        let mut prev = 1.0;
        for i in 1..100 {
            let p = collision_probability(i as f64 * 0.1, 4.0);
            assert!(p <= prev + 1e-12, "non-monotone at {i}");
            prev = p;
        }
    }

    #[test]
    fn collision_known_value_t1() {
        // t = r/c = 1: p = 1 - 2Φ(-1) - 2/√(2π)·(1 - e^{-1/2}) ≈ 0.3685.
        let p = collision_probability(1.0, 1.0);
        assert!((p - 0.3685).abs() < 1e-3, "p = {p}");
    }

    #[test]
    fn matching_monotone_in_l_and_antitone_in_k() {
        let c = 2.0;
        let r = 4.0;
        assert!(matching_probability(c, r, 4, 8) > matching_probability(c, r, 4, 4));
        assert!(matching_probability(c, r, 8, 4) < matching_probability(c, r, 4, 4));
    }

    #[test]
    fn matching_amplification_separates() {
        // Amplification should push close pairs toward 1 and far pairs
        // toward 0 relative to the single-hash probability.
        let r = 5.0;
        let close = 0.5;
        let far = 20.0;
        let p_close = collision_probability(close, r);
        let p_far = collision_probability(far, r);
        let m_close = matching_probability(close, r, 4, 8);
        let m_far = matching_probability(far, r, 4, 8);
        assert!(m_close > p_close);
        assert!(m_far < p_far);
    }

    #[test]
    fn curve_endpoints() {
        let curve = matching_curve(4.0, 4, 4, 10.0, 21);
        assert_eq!(curve.len(), 21);
        assert_eq!(curve[0].distance, 0.0);
        assert_eq!(curve[0].probability, 1.0);
        assert_eq!(curve[20].distance, 10.0);
        assert!(curve
            .windows(2)
            .all(|w| w[1].probability <= w[0].probability + 1e-12));
    }

    #[test]
    #[should_panic(expected = "k and l")]
    fn zero_k_rejected() {
        matching_probability(1.0, 1.0, 0, 4);
    }

    #[test]
    fn eq5_point_mass_reduces_to_worst_case() {
        // A density concentrated at α makes Eq. 5 collapse to the paper's
        // worst-case proxy 1 − Pr_lsh(α).
        let alpha = 1.0;
        let narrow = |c: f64| norm_pdf((c - alpha) / 0.001);
        let fnr = expected_fnr(narrow, 5.0 * alpha, 4.0, 4, 4, 2000);
        let worst = 1.0 - matching_probability(alpha, 4.0, 4, 4);
        assert!((fnr - worst).abs() < 1e-3, "{fnr} vs {worst}");
    }

    #[test]
    fn eq5_fnr_below_worst_case_for_spread_density() {
        // Reproduction errors spread below α only match *more* often, so
        // the expected FNR is at most the worst-case bound.
        let alpha = 1.0;
        let spread = |c: f64| norm_pdf((c - 0.6 * alpha) / (0.15 * alpha));
        let fnr = expected_fnr(spread, alpha, 4.0, 4, 4, 2000);
        let worst = 1.0 - matching_probability(alpha, 4.0, 4, 4);
        assert!(fnr <= worst + 1e-9, "{fnr} > {worst}");
    }

    #[test]
    fn eq5_fpr_below_worst_case_for_distant_spoofs() {
        let beta = 5.0;
        let spoof = |c: f64| norm_pdf((c - 2.0 * beta) / beta);
        let fpr = expected_fpr(spoof, beta, 10.0 * beta, 4.0, 4, 4, 2000);
        let worst = matching_probability(beta, 4.0, 4, 4);
        assert!(fpr <= worst + 1e-9, "{fpr} > {worst}");
        assert!(fpr >= 0.0);
    }

    #[test]
    #[should_panic(expected = "extend past beta")]
    fn eq5_fpr_range_checked() {
        expected_fpr(|_| 1.0, 5.0, 4.0, 1.0, 2, 2, 100);
    }
}
