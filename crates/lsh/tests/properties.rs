//! Property-based tests for the LSH crate.

use proptest::prelude::*;
use rpol_lsh::probability::{collision_probability, matching_probability};
use rpol_lsh::tuning::{tune, TuningConfig};
use rpol_lsh::{LshFamily, LshParams, Signature};

proptest! {
    #[test]
    fn collision_probability_is_a_probability(c in 0.0f64..1e6, r in 0.0f64..1e3) {
        let p = collision_probability(c, r);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn collision_monotone_decreasing_in_distance(
        c in 0.0f64..100.0, dc in 0.0f64..100.0, r in 0.01f64..100.0
    ) {
        prop_assert!(
            collision_probability(c + dc, r) <= collision_probability(c, r) + 1e-12
        );
    }

    #[test]
    fn collision_monotone_increasing_in_width(
        c in 0.01f64..100.0, r in 0.01f64..100.0, dr in 0.0f64..100.0
    ) {
        prop_assert!(
            collision_probability(c, r + dr) + 1e-12 >= collision_probability(c, r)
        );
    }

    #[test]
    fn matching_probability_amplification_bounds(
        c in 0.01f64..50.0, r in 0.01f64..50.0, k in 1usize..8, l in 1usize..8
    ) {
        let p = collision_probability(c, r);
        let m = matching_probability(c, r, k, l);
        prop_assert!((0.0..=1.0).contains(&m));
        // OR over l of AND over k: bounded by union bound and single-group.
        prop_assert!(m <= (l as f64) * p.powi(k as i32) + 1e-9);
        prop_assert!(m + 1e-12 >= p.powi(k as i32));
    }

    #[test]
    fn family_generation_deterministic(dim in 1usize..64, seed in any::<u64>()) {
        let params = LshParams::new(1.0, 2, 3);
        let a = LshFamily::generate(dim, params, seed);
        let b = LshFamily::generate(dim, params, seed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn hashing_identical_inputs_matches(
        xs in proptest::collection::vec(-10.0f32..10.0, 1..64),
        seed in any::<u64>()
    ) {
        let family = LshFamily::generate(xs.len(), LshParams::new(2.0, 3, 3), seed);
        let s1 = family.hash(&xs);
        let s2 = family.hash(&xs);
        prop_assert_eq!(&s1, &s2);
        prop_assert!(s1.matches(&s2));
        prop_assert!(s1.matches_digests(&s2.group_digests()));
    }

    #[test]
    fn matching_is_symmetric(
        xs in proptest::collection::vec(-5.0f32..5.0, 8),
        ys in proptest::collection::vec(-5.0f32..5.0, 8),
        seed in any::<u64>()
    ) {
        let family = LshFamily::generate(8, LshParams::new(1.0, 2, 4), seed);
        let sx = family.hash(&xs);
        let sy = family.hash(&ys);
        prop_assert_eq!(sx.matches(&sy), sy.matches(&sx));
        prop_assert_eq!(sx.matches(&sy), sy.matches_digests(&sx.group_digests()));
    }

    /// The GEMM-lowered hash paths must equal the scalar reference oracle
    /// *bitwise* — same bucket IDs for every hash function — for random
    /// weights and family parameters, and the batched path must be
    /// invariant to the worker-thread count (1, 2 and 8 threads).
    #[test]
    fn gemm_lowered_digests_match_scalar_bitwise(
        dim in 1usize..96,
        n_inputs in 1usize..12,
        k in 1usize..5,
        l in 1usize..5,
        r in 0.5f32..8.0,
        seed in any::<u64>()
    ) {
        let family = LshFamily::generate(dim, LshParams::new(r, k, l), seed);
        let mut rng = rpol_tensor::rng::Pcg32::seed_from(seed ^ 0x5eed);
        let inputs: Vec<Vec<f32>> = (0..n_inputs)
            .map(|_| (0..dim).map(|_| rng.next_normal() * 3.0).collect())
            .collect();
        let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
        let scalar: Vec<_> = refs.iter().map(|x| family.hash_scalar(x)).collect();
        for threads in [1usize, 2, 8] {
            let batched = family.hash_batch_threads(&refs, threads);
            prop_assert_eq!(&batched, &scalar, "threads = {}", threads);
        }
        for (x, want) in refs.iter().zip(&scalar) {
            prop_assert_eq!(&family.hash(x), want);
        }
    }

    #[test]
    fn signature_digest_deterministic(groups in proptest::collection::vec(
        proptest::collection::vec(-1000i64..1000, 3), 1..6
    )) {
        let a = Signature::new(groups.clone());
        let b = Signature::new(groups);
        prop_assert_eq!(a.digest(), b.digest());
        prop_assert_eq!(a.group_digests(), b.group_digests());
    }

    #[test]
    fn tuner_respects_budget_and_improves_on_trivial(
        alpha in 0.01f64..10.0, ratio in 1.5f64..20.0, budget in 2usize..32
    ) {
        let beta = alpha * ratio;
        let out = tune(&TuningConfig::new(alpha, beta).with_budget(budget));
        prop_assert!(out.params.total_hashes() <= budget);
        prop_assert!(out.pr_alpha >= out.pr_beta, "no inversion");
        // Scores sane probabilities.
        prop_assert!((0.0..=1.0).contains(&out.pr_alpha));
        prop_assert!((0.0..=1.0).contains(&out.pr_beta));
    }
}
