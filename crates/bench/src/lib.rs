//! Shared helpers for the table/figure regenerator binaries.
//!
//! Every table and figure in the paper's evaluation has a dedicated binary
//! in `src/bin/` (see DESIGN.md §4 for the index). Binaries print
//! markdown tables with the paper's reference values alongside the
//! reproduced ones so EXPERIMENTS.md can be assembled directly from their
//! output.

pub mod harness;

/// Prints a markdown table.
///
/// # Panics
///
/// Panics if any row's width differs from the header's.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("| {} |", headers.join(" | "));
    println!(
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
        println!("| {} |", row.join(" | "));
    }
    println!();
}

/// Reads a `--name=value` integer argument from the command line, falling
/// back to `default`.
pub fn arg_usize(name: &str, default: usize) -> usize {
    let prefix = format!("--{name}=");
    std::env::args()
        .find_map(|a| a.strip_prefix(&prefix).map(str::to_string))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("invalid integer for --{name}: {v}"))
        })
        .unwrap_or(default)
}

/// Reads a `--name=value` float argument from the command line.
pub fn arg_f64(name: &str, default: f64) -> f64 {
    let prefix = format!("--{name}=");
    std::env::args()
        .find_map(|a| a.strip_prefix(&prefix).map(str::to_string))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("invalid float for --{name}: {v}"))
        })
        .unwrap_or(default)
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats seconds with sensible precision.
pub fn secs(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}s")
    } else {
        format!("{x:.1}s")
    }
}

/// Formats bytes as GB with one decimal.
pub fn gb(bytes: u64) -> String {
    format!("{:.1}GB", bytes as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.1234), "12.3%");
        assert_eq!(secs(42.0), "42.0s");
        assert_eq!(secs(420.0), "420s");
        assert_eq!(gb(8_800_000_000), "8.8GB");
    }

    #[test]
    fn arg_defaults_apply() {
        assert_eq!(arg_usize("definitely-not-passed", 7), 7);
        assert_eq!(arg_f64("definitely-not-passed", 0.5), 0.5);
    }
}
