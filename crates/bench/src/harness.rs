//! Shared experiment harness: single-node training runs used by the
//! AMLayer experiments (Fig. 3, Table I) and the calibration study
//! (Fig. 5).

use rpol::tasks::TaskConfig;
use rpol::trainer::LocalTrainer;
use rpol_crypto::Address;
use rpol_nn::data::SyntheticImages;
use rpol_nn::metrics::accuracy;
use rpol_nn::model::Sequential;
use rpol_sim::gpu::{GpuModel, NoiseInjector};
use rpol_tensor::rng::Pcg32;
use rpol_tensor::Tensor;
use std::time::Instant;

/// The record of one single-node training run.
pub struct SingleRun {
    /// Test accuracy after each epoch.
    pub accuracy_curve: Vec<f32>,
    /// Wall-clock seconds per epoch (real, measured).
    pub epoch_seconds: Vec<f64>,
    /// Final flattened weights.
    pub final_weights: Vec<f32>,
}

impl SingleRun {
    /// Final test accuracy.
    pub fn final_accuracy(&self) -> f32 {
        *self.accuracy_curve.last().expect("at least one epoch")
    }

    /// Mean one-epoch wall-clock time.
    pub fn mean_epoch_seconds(&self) -> f64 {
        self.epoch_seconds.iter().sum::<f64>() / self.epoch_seconds.len() as f64
    }
}

/// Fixed experiment geometry for single-node runs.
pub struct RunSpec {
    /// Number of epochs.
    pub epochs: usize,
    /// SGD steps per epoch.
    pub steps_per_epoch: usize,
    /// Training samples.
    pub train_samples: usize,
    /// Test samples.
    pub test_samples: usize,
    /// Data/run seed.
    pub seed: u64,
}

/// Generates the train/test split for a task.
pub fn task_data(cfg: &TaskConfig, spec: &RunSpec) -> (SyntheticImages, Tensor, Vec<usize>) {
    let mut rng = Pcg32::seed_from(spec.seed);
    let train = SyntheticImages::generate(&cfg.spec, spec.train_samples, &mut rng);
    let test = SyntheticImages::generate(&cfg.spec, spec.test_samples, &mut rng);
    let (tx, ty) = test.full_batch();
    (train, tx, ty)
}

/// Trains a task single-node; `owner` selects the address-encoded variant
/// (`Some`) or the plain model (`None`).
pub fn train_single(cfg: &TaskConfig, owner: Option<&Address>, spec: &RunSpec) -> SingleRun {
    let (train, test_x, test_y) = task_data(cfg, spec);
    let mut model = match owner {
        Some(addr) => cfg.build_encoded_model(addr),
        None => cfg.build_model(),
    };
    let mut trainer = LocalTrainer::new(
        cfg,
        &train,
        NoiseInjector::new(GpuModel::GA10, spec.seed ^ 0x51),
    );
    let mut accuracy_curve = Vec::with_capacity(spec.epochs);
    let mut epoch_seconds = Vec::with_capacity(spec.epochs);
    for epoch in 0..spec.epochs {
        let start = Instant::now();
        trainer.run_epoch(&mut model, spec.seed ^ epoch as u64, spec.steps_per_epoch);
        epoch_seconds.push(start.elapsed().as_secs_f64());
        accuracy_curve.push(evaluate(&mut model, &test_x, &test_y));
    }
    SingleRun {
        accuracy_curve,
        epoch_seconds,
        final_weights: model.flatten_params(),
    }
}

/// Evaluates a model on a prepared test batch.
pub fn evaluate(model: &mut Sequential, test_x: &Tensor, test_y: &[usize]) -> f32 {
    let logits = model.forward(test_x, false);
    accuracy(&logits, test_y)
}

/// Scores a flat encoded-weight vector on a prepared test batch.
pub fn evaluate_flat(cfg: &TaskConfig, weights: &[f32], test_x: &Tensor, test_y: &[usize]) -> f32 {
    let mut model = cfg.build_encoded_model(&Address::from_seed(0));
    model.load_params(weights);
    evaluate(&mut model, test_x, test_y)
}
