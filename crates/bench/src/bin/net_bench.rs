//! Socket-transport benchmark emitting `BENCH_net.json`.
//!
//! Runs the real loopback harness ([`run_socket_pool`]): the manager
//! bound on an OS-assigned TCP port, one [`WorkerClient`] thread per
//! roster slot, every epoch executed over the wire. Three churn regimes
//! are measured:
//!
//! * **ideal** — chaos proxy seeded but silent: the socket layer's
//!   framing, backpressure, and phase machinery at full fidelity with no
//!   injected faults.
//! * **lossy** — the paper-ish WAN profile: dropped, corrupted, and
//!   truncated frames ride the same TCP stream as ghost bytes, forcing
//!   checksum rejects and retry legs.
//! * **harsh** — elevated rates; retries and undelivered legs are common
//!   and quarantines can occur, so epoch-completion latency shows real
//!   tail behaviour.
//!
//! Headline numbers per regime: sustained pristine submissions/s over
//! the whole run, and p50/p90/p99 epoch-completion latency read from the
//! server recorder's log-bucketed `net.epoch_latency` histogram — the
//! same deterministic quantile machinery `rpol status` reports live, so
//! the bench and the introspection plane can never disagree on method.
//! Rates are host-dependent, so `scripts/check_bench.sh` gates structure
//! and positivity (plus corrupt frames actually crossing the wire under
//! churn) rather than cross-host wall ratios.
//!
//! A **connection sweep** then runs both reactor backends (scan and
//! readiness) at 64/256/1024 concurrent connections: a small worker
//! roster of pure replayers plus an idle-connection floor, stormed onto
//! the listener in sub-backlog bursts with the clock running from bind.
//! Each cell aggregates three fresh storms (total pristine over total
//! wall), so a reactor that falls behind the offered rate and eats the
//! kernel's SYN-drop retransmit stall keeps the stall in its sustained
//! number. The readiness-vs-scan ratio at 1024 connections is the one
//! cross-backend comparison that IS gated (same host, same run), in
//! `scripts/bench_net.sh` at generation time and `scripts/check_bench.sh`
//! against the committed baseline. Requires `ulimit -n` above ~2100 for
//! the full sweep.
//!
//! `BENCH_SMOKE=1` shrinks the roster and the sweep (16/64 connections)
//! for the CI gate; the committed baseline comes from a full run
//! (`scripts/bench_net.sh`).
//!
//! Usage: `cargo run --release -p rpol-bench --bin net_bench [out.json]`
//!
//! [`run_socket_pool`]: rpol::server::run_socket_pool
//! [`WorkerClient`]: rpol::client::WorkerClient

use rpol::adversary::WorkerBehavior;
use rpol::client::{ClientTuning, WorkerClient};
use rpol::pool::{MiningPool, PoolConfig, Scheme};
use rpol::server::{
    run_socket_pool, BindAddr, PoolServer, ReactorBackend, ServerConfig, SocketRunOptions,
};
use rpol::transport::{FaultConfig, FaultProfile};
use rpol_obs::Recorder;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One churn regime's measured outcome.
struct CaseResult {
    churn: &'static str,
    submissions_per_s: f64,
    p50_epoch_latency_s: f64,
    p90_epoch_latency_s: f64,
    p99_epoch_latency_s: f64,
    pristine_submissions: u64,
    quarantined: u64,
    corrupt_frames: u64,
    shed_submissions: u64,
    reconnects: u64,
    wall_s: f64,
}

fn run_case(
    churn: &'static str,
    fault: FaultConfig,
    workers: usize,
    epochs: usize,
    steps: usize,
) -> CaseResult {
    let mut config = PoolConfig::tiny_demo(Scheme::RPoLv2).with_faults(fault);
    config.epochs = epochs;
    config.steps_per_epoch = steps;
    config.q_samples = 2;
    config.test_samples = 64;
    config.train_samples = (workers + 1) * 8;
    // One replayer keeps the rejection path on the wire; the rest honest.
    let mut behaviors = vec![WorkerBehavior::Honest; workers];
    behaviors[workers / 2] = WorkerBehavior::ReplayPrevious;

    // The server publishes per-epoch completion latency into the
    // log-bucketed `net.epoch_latency` histogram (µs); its deterministic
    // quantiles are the headline order statistics.
    let rec = Arc::new(Recorder::logical());
    let options = SocketRunOptions {
        server: ServerConfig {
            parallel_verify: false,
            ..ServerConfig::default()
        },
        recorder: Some(rec.clone()),
        ..SocketRunOptions::default()
    };
    let t0 = Instant::now();
    let outcome = run_socket_pool(config, behaviors, options).expect("loopback run");
    let wall_s = t0.elapsed().as_secs_f64();

    assert_eq!(
        outcome.report.epochs.len(),
        epochs,
        "{churn}: one record per epoch"
    );
    let snapshot = rec.snapshot();
    let hist = snapshot
        .histograms
        .get("net.epoch_latency")
        .expect("epoch latency histogram recorded");
    assert_eq!(
        hist.count, epochs as u64,
        "{churn}: one latency observation per epoch"
    );
    let q = |p: f64| hist.quantile(p) as f64 / 1e6;
    let mut pristine = 0u64;
    let mut quarantined = 0u64;
    for e in &outcome.report.epochs {
        pristine += (e.report.accepted.len() + e.report.rejected.len()) as u64;
        quarantined += e.report.quarantined.len() as u64;
    }
    let mut corrupt = outcome.net.corrupt_frames;
    let mut reconnects = 0u64;
    for c in &outcome.clients {
        assert!(
            c.clean_shutdown,
            "{churn}: worker {} gave up instead of shutting down cleanly",
            c.worker_id
        );
        corrupt += c.corrupt_frames;
        reconnects += c.reconnects;
    }

    CaseResult {
        churn,
        submissions_per_s: pristine as f64 / wall_s,
        p50_epoch_latency_s: q(0.50),
        p90_epoch_latency_s: q(0.90),
        p99_epoch_latency_s: q(0.99),
        pristine_submissions: pristine,
        quarantined,
        corrupt_frames: corrupt,
        shed_submissions: outcome.net.shed_submissions,
        reconnects,
        wall_s,
    }
}

/// One (backend × connection-count) cell of the reactor sweep.
struct SweepResult {
    backend: &'static str,
    connections: usize,
    idle_connections: usize,
    submissions_per_s: f64,
    pristine_submissions: u64,
    wall_s: f64,
}

/// Measures end-to-end ingest throughput with `total - workers` idle
/// connections parked on the reactor: the clock starts at bind and the
/// measured window covers absorbing the full connection ramp, the worker
/// handshakes, and every epoch. A scanning reactor pays O(total)
/// non-blocking reads per pump — O(total²) syscalls across the ramp
/// alone — where a readiness reactor pays O(active). The protocol
/// outcome is backend-invariant (pinned by `tests/net_parity.rs`); only
/// the wall clock moves.
/// Aggregates [`sweep_rep`] over `SWEEP_REPS` fresh storms: sustained
/// submissions/s = total pristine over total wall. A reactor that falls
/// behind the storm and eats TCP retransmit stalls keeps them in its
/// number — that collapse is the behaviour the cell exists to expose,
/// not an outlier to discard.
fn run_sweep_case(
    backend: ReactorBackend,
    total: usize,
    workers: usize,
    epochs: usize,
    steps: usize,
) -> SweepResult {
    const SWEEP_REPS: usize = 3;
    let mut pristine = 0u64;
    let mut wall_s = 0.0f64;
    for _ in 0..SWEEP_REPS {
        let rep = sweep_rep(backend, total, workers, epochs, steps);
        pristine += rep.pristine_submissions;
        wall_s += rep.wall_s;
    }
    SweepResult {
        backend: backend.name(),
        connections: total,
        idle_connections: total.saturating_sub(workers),
        submissions_per_s: pristine as f64 / wall_s,
        pristine_submissions: pristine,
        wall_s,
    }
}

fn sweep_rep(
    backend: ReactorBackend,
    total: usize,
    workers: usize,
    epochs: usize,
    steps: usize,
) -> SweepResult {
    let idle = total.saturating_sub(workers);
    let mut config = PoolConfig::tiny_demo(Scheme::RPoLv2).with_faults(FaultConfig::ideal(11));
    config.epochs = epochs;
    config.steps_per_epoch = steps;
    config.q_samples = 1;
    // Minimal compute per epoch: the cell measures reactor overhead, so
    // training and verification work is held to the protocol floor —
    // what is left of the wall clock is handshake + pump + wire time.
    config.train_samples = (workers + 1) * 2;
    config.test_samples = 8;
    // Every worker replays: submissions are serialized and shipped
    // without local training, so the cell measures the ingest plane —
    // wire, decode, classify — not SGD throughput. All of them land in
    // the rejected (pristine) set.
    let behaviors = vec![WorkerBehavior::ReplayPrevious; workers];

    let pool = MiningPool::new(config, behaviors.clone());
    let server_cfg = ServerConfig {
        backend,
        // The idle floor must sit in the connection table untouched:
        // sweeping or evicting it mid-run would shrink the very load the
        // cell exists to measure.
        max_connections: 4096,
        handshake_timeout: Duration::from_secs(3600),
        idle_timeout: Duration::from_secs(3600),
        parallel_verify: true,
        ..ServerConfig::default()
    };
    let mut server = PoolServer::bind(pool, &BindAddr::loopback(), server_cfg).expect("bind");
    let addr = server.local_addr();

    // The measured window opens at bind: it covers absorbing the full
    // connection storm, the worker handshakes, and the epochs. The
    // connector yields in sub-backlog bursts (listener backlog is 128)
    // so the kernel never drops a SYN under a reactor that keeps pace
    // with the offered rate; a reactor that falls behind eats the TCP
    // retransmit stall it inflicts on real workers.
    let t0 = Instant::now();
    let idle_done = Arc::new(AtomicBool::new(false));
    let idle_thread = {
        let addr = addr.clone();
        let done = Arc::clone(&idle_done);
        std::thread::spawn(move || {
            // One burst stays under the listener backlog (128), so a
            // reactor that drains the accept queue between bursts never
            // sees a kernel SYN drop; two un-drained bursts overflow it.
            let burst: usize = std::env::var("RPOL_SWEEP_BURST")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(120);
            let mut conns: Vec<TcpStream> = Vec::with_capacity(idle);
            for i in 0..idle {
                conns.push(TcpStream::connect(&addr).expect("idle connect"));
                if i % burst == burst - 1 {
                    std::thread::yield_now();
                }
            }
            done.store(true, Ordering::Release);
            conns
        })
    };
    while !idle_done.load(Ordering::Acquire) {
        // Never met (target above roster size): pumps the reactor so the
        // listener backlog drains while the floor connects. The deadline
        // is one pump-park quantum — any longer quantizes the ramp.
        let _ = server.wait_for_workers(workers + 1, Duration::from_millis(1));
    }

    let tuning = ClientTuning {
        read_timeout: Duration::from_millis(5),
        backoff_scale: 0.005,
        heartbeat_interval: Duration::from_secs(3600),
        ..ClientTuning::default()
    };
    let handles: Vec<_> = MiningPool::new(config, behaviors)
        .into_workers()
        .into_iter()
        .map(|worker| {
            let addr = addr.clone();
            let tuning = tuning.clone();
            std::thread::spawn(move || WorkerClient::new(config, worker, addr, tuning).run())
        })
        .collect();
    let report = server.run().expect("sweep run");
    let wall_s = t0.elapsed().as_secs_f64();
    for h in handles {
        assert!(h.join().expect("client thread").clean_shutdown);
    }
    drop(idle_thread.join().expect("idle connector"));

    let pristine: u64 = report
        .epochs
        .iter()
        .map(|e| (e.report.accepted.len() + e.report.rejected.len()) as u64)
        .sum();
    assert!(pristine > 0, "sweep cell decoded nothing");
    SweepResult {
        backend: backend.name(),
        connections: total,
        idle_connections: idle,
        submissions_per_s: pristine as f64 / wall_s,
        pristine_submissions: pristine,
        wall_s,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_net.json".to_string());
    let smoke = std::env::var("BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false);
    let (workers, epochs, steps) = if smoke { (3, 2, 4) } else { (16, 6, 8) };

    let harsh = FaultConfig {
        profile: FaultProfile::harsh(),
        ..FaultConfig::lossy(11)
    };
    let cases = [
        run_case("ideal", FaultConfig::ideal(11), workers, epochs, steps),
        run_case("lossy", FaultConfig::lossy(11), workers, epochs, steps),
        run_case("harsh", harsh, workers, epochs, steps),
    ];
    for c in &cases {
        assert!(
            c.submissions_per_s > 0.0,
            "{}: no pristine submissions landed",
            c.churn
        );
    }
    // Under churn, ghost frames must actually cross the wire — otherwise
    // the regime label is a lie and the latency tail means nothing.
    for c in &cases[1..] {
        assert!(c.corrupt_frames > 0, "{}: no ghosts on the wire", c.churn);
    }

    // Reactor sweep: the same tiny epoch workload with an ever larger
    // idle-connection floor parked on the reactor, scan vs readiness.
    // Scan pays O(connections) per pump, readiness O(active) — so the
    // throughput gap must widen with the floor. check_bench.sh gates the
    // committed baseline at >= 3x for readiness at the largest cell.
    let (sweep_totals, sweep_workers, sweep_epochs): (&[usize], usize, usize) = if smoke {
        (&[16, 64], 4, 1)
    } else {
        (&[64, 256, 1024], 4, 1)
    };
    let mut sweep = Vec::new();
    for &total in sweep_totals {
        for backend in [ReactorBackend::Scan, ReactorBackend::Readiness] {
            let cell = run_sweep_case(backend, total, sweep_workers, sweep_epochs, 1);
            println!(
                "sweep {} @ {} conns ({} idle): {:.1} submissions/s ({:.2}s wall)",
                cell.backend,
                cell.connections,
                cell.idle_connections,
                cell.submissions_per_s,
                cell.wall_s,
            );
            sweep.push(cell);
        }
    }

    let hw_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"workers\": {workers}, \"epochs\": {epochs}, \"steps_per_epoch\": {steps}, \"scheme\": \"RPoLv2\", \"transport\": \"loopback tcp\"}},\n"
    ));
    json.push_str(&format!("  \"host_hw_threads\": {hw_threads},\n"));
    json.push_str("  \"runs\": [\n");
    for (i, c) in cases.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"churn\": \"{}\", \"submissions_per_s\": {:.3}, \"p50_epoch_latency_s\": {:.4}, \"p90_epoch_latency_s\": {:.4}, \"p99_epoch_latency_s\": {:.4}, \"pristine_submissions\": {}, \"quarantined\": {}, \"corrupt_frames\": {}, \"shed_submissions\": {}, \"reconnects\": {}, \"wall_s\": {:.3}}}{}\n",
            c.churn,
            c.submissions_per_s,
            c.p50_epoch_latency_s,
            c.p90_epoch_latency_s,
            c.p99_epoch_latency_s,
            c.pristine_submissions,
            c.quarantined,
            c.corrupt_frames,
            c.shed_submissions,
            c.reconnects,
            c.wall_s,
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"sweep_config\": {{\"workers\": {sweep_workers}, \"epochs\": {sweep_epochs}, \"steps_per_epoch\": 1, \"reps\": 3, \"behavior\": \"replay_all\", \"faults\": \"ideal\", \"readiness_available\": {}}},\n",
        ReactorBackend::preferred() == ReactorBackend::Readiness
    ));
    json.push_str("  \"sweep\": [\n");
    for (i, c) in sweep.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"backend\": \"{}\", \"connections\": {}, \"idle_connections\": {}, \"submissions_per_s\": {:.3}, \"pristine_submissions\": {}, \"wall_s\": {:.3}}}{}\n",
            c.backend,
            c.connections,
            c.idle_connections,
            c.submissions_per_s,
            c.pristine_submissions,
            c.wall_s,
            if i + 1 < sweep.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark output");

    println!("host hardware threads: {hw_threads}");
    for c in &cases {
        println!(
            "{}: {:.1} submissions/s, epoch latency p50 {:.3}s p90 {:.3}s p99 {:.3}s, {} pristine, {} quarantined, {} corrupt frames, {} shed, {} reconnects ({:.2}s wall)",
            c.churn,
            c.submissions_per_s,
            c.p50_epoch_latency_s,
            c.p90_epoch_latency_s,
            c.p99_epoch_latency_s,
            c.pristine_submissions,
            c.quarantined,
            c.corrupt_frames,
            c.shed_submissions,
            c.reconnects,
            c.wall_s,
        );
    }
    println!("wrote {out_path}");
}
