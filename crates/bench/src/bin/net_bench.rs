//! Socket-transport benchmark emitting `BENCH_net.json`.
//!
//! Runs the real loopback harness ([`run_socket_pool`]): the manager
//! bound on an OS-assigned TCP port, one [`WorkerClient`] thread per
//! roster slot, every epoch executed over the wire. Three churn regimes
//! are measured:
//!
//! * **ideal** — chaos proxy seeded but silent: the socket layer's
//!   framing, backpressure, and phase machinery at full fidelity with no
//!   injected faults.
//! * **lossy** — the paper-ish WAN profile: dropped, corrupted, and
//!   truncated frames ride the same TCP stream as ghost bytes, forcing
//!   checksum rejects and retry legs.
//! * **harsh** — elevated rates; retries and undelivered legs are common
//!   and quarantines can occur, so epoch-completion latency shows real
//!   tail behaviour.
//!
//! Headline numbers per regime: sustained pristine submissions/s over
//! the whole run, and p50/p90/p99 epoch-completion latency read from the
//! server recorder's log-bucketed `net.epoch_latency` histogram — the
//! same deterministic quantile machinery `rpol status` reports live, so
//! the bench and the introspection plane can never disagree on method.
//! Rates are host-dependent, so `scripts/check_bench.sh` gates structure
//! and positivity (plus corrupt frames actually crossing the wire under
//! churn) rather than cross-host wall ratios.
//!
//! `BENCH_SMOKE=1` shrinks the roster for the CI gate; the committed
//! baseline comes from a full run (`scripts/bench_net.sh`).
//!
//! Usage: `cargo run --release -p rpol-bench --bin net_bench [out.json]`
//!
//! [`run_socket_pool`]: rpol::server::run_socket_pool
//! [`WorkerClient`]: rpol::client::WorkerClient

use rpol::adversary::WorkerBehavior;
use rpol::pool::{PoolConfig, Scheme};
use rpol::server::{run_socket_pool, ServerConfig, SocketRunOptions};
use rpol::transport::{FaultConfig, FaultProfile};
use rpol_obs::Recorder;
use std::sync::Arc;
use std::time::Instant;

/// One churn regime's measured outcome.
struct CaseResult {
    churn: &'static str,
    submissions_per_s: f64,
    p50_epoch_latency_s: f64,
    p90_epoch_latency_s: f64,
    p99_epoch_latency_s: f64,
    pristine_submissions: u64,
    quarantined: u64,
    corrupt_frames: u64,
    shed_submissions: u64,
    reconnects: u64,
    wall_s: f64,
}

fn run_case(
    churn: &'static str,
    fault: FaultConfig,
    workers: usize,
    epochs: usize,
    steps: usize,
) -> CaseResult {
    let mut config = PoolConfig::tiny_demo(Scheme::RPoLv2).with_faults(fault);
    config.epochs = epochs;
    config.steps_per_epoch = steps;
    config.q_samples = 2;
    config.test_samples = 64;
    config.train_samples = (workers + 1) * 8;
    // One replayer keeps the rejection path on the wire; the rest honest.
    let mut behaviors = vec![WorkerBehavior::Honest; workers];
    behaviors[workers / 2] = WorkerBehavior::ReplayPrevious;

    // The server publishes per-epoch completion latency into the
    // log-bucketed `net.epoch_latency` histogram (µs); its deterministic
    // quantiles are the headline order statistics.
    let rec = Arc::new(Recorder::logical());
    let options = SocketRunOptions {
        server: ServerConfig {
            parallel_verify: false,
            ..ServerConfig::default()
        },
        recorder: Some(rec.clone()),
        ..SocketRunOptions::default()
    };
    let t0 = Instant::now();
    let outcome = run_socket_pool(config, behaviors, options).expect("loopback run");
    let wall_s = t0.elapsed().as_secs_f64();

    assert_eq!(
        outcome.report.epochs.len(),
        epochs,
        "{churn}: one record per epoch"
    );
    let snapshot = rec.snapshot();
    let hist = snapshot
        .histograms
        .get("net.epoch_latency")
        .expect("epoch latency histogram recorded");
    assert_eq!(
        hist.count, epochs as u64,
        "{churn}: one latency observation per epoch"
    );
    let q = |p: f64| hist.quantile(p) as f64 / 1e6;
    let mut pristine = 0u64;
    let mut quarantined = 0u64;
    for e in &outcome.report.epochs {
        pristine += (e.report.accepted.len() + e.report.rejected.len()) as u64;
        quarantined += e.report.quarantined.len() as u64;
    }
    let mut corrupt = outcome.net.corrupt_frames;
    let mut reconnects = 0u64;
    for c in &outcome.clients {
        assert!(
            c.clean_shutdown,
            "{churn}: worker {} gave up instead of shutting down cleanly",
            c.worker_id
        );
        corrupt += c.corrupt_frames;
        reconnects += c.reconnects;
    }

    CaseResult {
        churn,
        submissions_per_s: pristine as f64 / wall_s,
        p50_epoch_latency_s: q(0.50),
        p90_epoch_latency_s: q(0.90),
        p99_epoch_latency_s: q(0.99),
        pristine_submissions: pristine,
        quarantined,
        corrupt_frames: corrupt,
        shed_submissions: outcome.net.shed_submissions,
        reconnects,
        wall_s,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_net.json".to_string());
    let smoke = std::env::var("BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false);
    let (workers, epochs, steps) = if smoke { (3, 2, 4) } else { (16, 6, 8) };

    let harsh = FaultConfig {
        profile: FaultProfile::harsh(),
        ..FaultConfig::lossy(11)
    };
    let cases = [
        run_case("ideal", FaultConfig::ideal(11), workers, epochs, steps),
        run_case("lossy", FaultConfig::lossy(11), workers, epochs, steps),
        run_case("harsh", harsh, workers, epochs, steps),
    ];
    for c in &cases {
        assert!(
            c.submissions_per_s > 0.0,
            "{}: no pristine submissions landed",
            c.churn
        );
    }
    // Under churn, ghost frames must actually cross the wire — otherwise
    // the regime label is a lie and the latency tail means nothing.
    for c in &cases[1..] {
        assert!(c.corrupt_frames > 0, "{}: no ghosts on the wire", c.churn);
    }

    let hw_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"workers\": {workers}, \"epochs\": {epochs}, \"steps_per_epoch\": {steps}, \"scheme\": \"RPoLv2\", \"transport\": \"loopback tcp\"}},\n"
    ));
    json.push_str(&format!("  \"host_hw_threads\": {hw_threads},\n"));
    json.push_str("  \"runs\": [\n");
    for (i, c) in cases.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"churn\": \"{}\", \"submissions_per_s\": {:.3}, \"p50_epoch_latency_s\": {:.4}, \"p90_epoch_latency_s\": {:.4}, \"p99_epoch_latency_s\": {:.4}, \"pristine_submissions\": {}, \"quarantined\": {}, \"corrupt_frames\": {}, \"shed_submissions\": {}, \"reconnects\": {}, \"wall_s\": {:.3}}}{}\n",
            c.churn,
            c.submissions_per_s,
            c.p50_epoch_latency_s,
            c.p90_epoch_latency_s,
            c.p99_epoch_latency_s,
            c.pristine_submissions,
            c.quarantined,
            c.corrupt_frames,
            c.shed_submissions,
            c.reconnects,
            c.wall_s,
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark output");

    println!("host hardware threads: {hw_threads}");
    for c in &cases {
        println!(
            "{}: {:.1} submissions/s, epoch latency p50 {:.3}s p90 {:.3}s p99 {:.3}s, {} pristine, {} quarantined, {} corrupt frames, {} shed, {} reconnects ({:.2}s wall)",
            c.churn,
            c.submissions_per_s,
            c.p50_epoch_latency_s,
            c.p90_epoch_latency_s,
            c.p99_epoch_latency_s,
            c.pristine_submissions,
            c.quarantined,
            c.corrupt_frames,
            c.shed_submissions,
            c.reconnects,
            c.wall_s,
        );
    }
    println!("wrote {out_path}");
}
