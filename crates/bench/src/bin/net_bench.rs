//! Socket-transport benchmark emitting `BENCH_net.json`.
//!
//! Runs the real loopback harness ([`run_socket_pool`]): the manager
//! bound on an OS-assigned TCP port, one [`WorkerClient`] thread per
//! roster slot, every epoch executed over the wire. Three churn regimes
//! are measured:
//!
//! * **ideal** — chaos proxy seeded but silent: the socket layer's
//!   framing, backpressure, and phase machinery at full fidelity with no
//!   injected faults.
//! * **lossy** — the paper-ish WAN profile: dropped, corrupted, and
//!   truncated frames ride the same TCP stream as ghost bytes, forcing
//!   checksum rejects and retry legs.
//! * **harsh** — elevated rates; retries and undelivered legs are common
//!   and quarantines can occur, so epoch-completion latency shows real
//!   tail behaviour.
//!
//! Headline numbers per regime: sustained pristine submissions/s over
//! the whole run, and mean/p99 epoch-completion latency. Rates are
//! host-dependent, so `scripts/check_bench.sh` gates structure and
//! positivity (plus corrupt frames actually crossing the wire under
//! churn) rather than cross-host wall ratios.
//!
//! `BENCH_SMOKE=1` shrinks the roster for the CI gate; the committed
//! baseline comes from a full run (`scripts/bench_net.sh`).
//!
//! Usage: `cargo run --release -p rpol-bench --bin net_bench [out.json]`
//!
//! [`run_socket_pool`]: rpol::server::run_socket_pool
//! [`WorkerClient`]: rpol::client::WorkerClient

use rpol::adversary::WorkerBehavior;
use rpol::pool::{PoolConfig, Scheme};
use rpol::server::{run_socket_pool, ServerConfig, SocketRunOptions};
use rpol::transport::{FaultConfig, FaultProfile};
use std::time::Instant;

/// One churn regime's measured outcome.
struct CaseResult {
    churn: &'static str,
    submissions_per_s: f64,
    mean_epoch_latency_s: f64,
    p99_epoch_latency_s: f64,
    pristine_submissions: u64,
    quarantined: u64,
    corrupt_frames: u64,
    shed_submissions: u64,
    reconnects: u64,
    wall_s: f64,
}

/// Index-based p99 over a small sample: the latency at the ceil(0.99·n)
/// order statistic (= the max for n < 100, which is the honest reading).
fn p99(latencies: &[f64]) -> f64 {
    let mut sorted = latencies.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let idx = ((0.99 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[idx - 1]
}

fn run_case(
    churn: &'static str,
    fault: FaultConfig,
    workers: usize,
    epochs: usize,
    steps: usize,
) -> CaseResult {
    let mut config = PoolConfig::tiny_demo(Scheme::RPoLv2).with_faults(fault);
    config.epochs = epochs;
    config.steps_per_epoch = steps;
    config.q_samples = 2;
    config.test_samples = 64;
    config.train_samples = (workers + 1) * 8;
    // One replayer keeps the rejection path on the wire; the rest honest.
    let mut behaviors = vec![WorkerBehavior::Honest; workers];
    behaviors[workers / 2] = WorkerBehavior::ReplayPrevious;

    let options = SocketRunOptions {
        server: ServerConfig {
            parallel_verify: false,
            ..ServerConfig::default()
        },
        ..SocketRunOptions::default()
    };
    let t0 = Instant::now();
    let outcome = run_socket_pool(config, behaviors, options).expect("loopback run");
    let wall_s = t0.elapsed().as_secs_f64();

    let latencies: Vec<f64> = outcome
        .report
        .epochs
        .iter()
        .map(|e| e.wall_seconds)
        .collect();
    assert_eq!(latencies.len(), epochs, "{churn}: one record per epoch");
    let mut pristine = 0u64;
    let mut quarantined = 0u64;
    for e in &outcome.report.epochs {
        pristine += (e.report.accepted.len() + e.report.rejected.len()) as u64;
        quarantined += e.report.quarantined.len() as u64;
    }
    let mut corrupt = outcome.net.corrupt_frames;
    let mut reconnects = 0u64;
    for c in &outcome.clients {
        assert!(
            c.clean_shutdown,
            "{churn}: worker {} gave up instead of shutting down cleanly",
            c.worker_id
        );
        corrupt += c.corrupt_frames;
        reconnects += c.reconnects;
    }

    CaseResult {
        churn,
        submissions_per_s: pristine as f64 / wall_s,
        mean_epoch_latency_s: latencies.iter().sum::<f64>() / latencies.len() as f64,
        p99_epoch_latency_s: p99(&latencies),
        pristine_submissions: pristine,
        quarantined,
        corrupt_frames: corrupt,
        shed_submissions: outcome.net.shed_submissions,
        reconnects,
        wall_s,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_net.json".to_string());
    let smoke = std::env::var("BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false);
    let (workers, epochs, steps) = if smoke { (3, 2, 4) } else { (16, 6, 8) };

    let harsh = FaultConfig {
        profile: FaultProfile::harsh(),
        ..FaultConfig::lossy(11)
    };
    let cases = [
        run_case("ideal", FaultConfig::ideal(11), workers, epochs, steps),
        run_case("lossy", FaultConfig::lossy(11), workers, epochs, steps),
        run_case("harsh", harsh, workers, epochs, steps),
    ];
    for c in &cases {
        assert!(
            c.submissions_per_s > 0.0,
            "{}: no pristine submissions landed",
            c.churn
        );
    }
    // Under churn, ghost frames must actually cross the wire — otherwise
    // the regime label is a lie and the latency tail means nothing.
    for c in &cases[1..] {
        assert!(c.corrupt_frames > 0, "{}: no ghosts on the wire", c.churn);
    }

    let hw_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"workers\": {workers}, \"epochs\": {epochs}, \"steps_per_epoch\": {steps}, \"scheme\": \"RPoLv2\", \"transport\": \"loopback tcp\"}},\n"
    ));
    json.push_str(&format!("  \"host_hw_threads\": {hw_threads},\n"));
    json.push_str("  \"runs\": [\n");
    for (i, c) in cases.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"churn\": \"{}\", \"submissions_per_s\": {:.3}, \"mean_epoch_latency_s\": {:.4}, \"p99_epoch_latency_s\": {:.4}, \"pristine_submissions\": {}, \"quarantined\": {}, \"corrupt_frames\": {}, \"shed_submissions\": {}, \"reconnects\": {}, \"wall_s\": {:.3}}}{}\n",
            c.churn,
            c.submissions_per_s,
            c.mean_epoch_latency_s,
            c.p99_epoch_latency_s,
            c.pristine_submissions,
            c.quarantined,
            c.corrupt_frames,
            c.shed_submissions,
            c.reconnects,
            c.wall_s,
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark output");

    println!("host hardware threads: {hw_threads}");
    for c in &cases {
        println!(
            "{}: {:.1} submissions/s, epoch latency mean {:.3}s p99 {:.3}s, {} pristine, {} quarantined, {} corrupt frames, {} shed, {} reconnects ({:.2}s wall)",
            c.churn,
            c.submissions_per_s,
            c.mean_epoch_latency_s,
            c.p99_epoch_latency_s,
            c.pristine_submissions,
            c.quarantined,
            c.corrupt_frames,
            c.shed_submissions,
            c.reconnects,
            c.wall_s,
        );
    }
    println!("wrote {out_path}");
}
