//! Fig. 3 regenerator: test-accuracy curves with and without AMLayer for
//! both tasks (A: mini-ResNet18 / CIFAR-10-like, B: mini-ResNet50 /
//! CIFAR-100-like).
//!
//! Expected shape (paper): the two curves per task are nearly
//! indistinguishable — the AMLayer costs well under half a point of final
//! accuracy.
//!
//! Usage: `cargo run --release -p rpol-bench --bin fig3_amlayer_accuracy [--epochs=12]`

use rpol::tasks::TaskConfig;
use rpol_bench::harness::{train_single, RunSpec};
use rpol_bench::{arg_usize, pct, print_table};
use rpol_crypto::Address;

fn main() {
    let epochs = arg_usize("epochs", 12);
    let spec = RunSpec {
        epochs,
        steps_per_epoch: arg_usize("steps", 25),
        train_samples: arg_usize("train", 800),
        test_samples: arg_usize("test", 400),
        seed: 0xF163,
    };
    let owner = Address::from_seed(0xA1);

    for (label, cfg) in [
        ("Task A", TaskConfig::task_a()),
        ("Task B", TaskConfig::task_b()),
    ] {
        let plain = train_single(&cfg, None, &spec);
        let encoded = train_single(&cfg, Some(&owner), &spec);
        let rows: Vec<Vec<String>> = (0..epochs)
            .map(|e| {
                vec![
                    format!("{}", e + 1),
                    pct(plain.accuracy_curve[e] as f64),
                    pct(encoded.accuracy_curve[e] as f64),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Fig. 3 — {label} ({}) testing accuracy, origin vs AMLayer",
                cfg.arch.name()
            ),
            &["epoch", "origin", "with AMLayer"],
            &rows,
        );
        let delta = plain.final_accuracy() - encoded.final_accuracy();
        println!(
            "{label}: final accuracy delta (origin − AMLayer) = {:.2} points \
             (paper: 0.34 for A, 0.22 for B — near-zero is the expected shape)",
            delta * 100.0
        );
    }
}
