//! Table I regenerator: AMLayer performance — one-epoch training time,
//! final accuracy, and accuracy under the address-replacing attack
//! (10 random thief addresses, mean ± std).
//!
//! Expected shape (paper): epoch time inflated by only a few percent,
//! accuracy within half a point, and the attack collapsing accuracy by
//! tens of points.
//!
//! Usage: `cargo run --release -p rpol-bench --bin table1_amlayer [--epochs=10]`

use rpol::adversary::replace_amlayer;
use rpol::tasks::TaskConfig;
use rpol_bench::harness::{evaluate_flat, task_data, train_single, RunSpec};
use rpol_bench::{arg_usize, pct, print_table, secs};
use rpol_crypto::Address;
use rpol_tensor::stats;

fn main() {
    let spec = RunSpec {
        epochs: arg_usize("epochs", 16),
        steps_per_epoch: arg_usize("steps", 25),
        train_samples: arg_usize("train", 800),
        test_samples: arg_usize("test", 400),
        seed: 0x7AB_1E1,
    };
    let owner = Address::from_seed(0xA1);

    let mut rows = Vec::new();
    for (label, cfg) in [("A", TaskConfig::task_a()), ("B", TaskConfig::task_b())] {
        let plain = train_single(&cfg, None, &spec);
        let encoded = train_single(&cfg, Some(&owner), &spec);

        // Address-replacing attack: swap the trained model's AMLayer for
        // layers encoding 10 random addresses and score each forgery.
        let (_, test_x, test_y) = task_data(&cfg, &spec);
        let attack_accs: Vec<f32> = (0..10)
            .map(|i| {
                let thief = Address::from_seed(0xBAD0 + i);
                let forged = replace_amlayer(&cfg, &encoded.final_weights, &thief);
                evaluate_flat(&cfg, &forged, &test_x, &test_y)
            })
            .collect();

        rows.push(vec![
            format!("{label} ({})", cfg.arch.name()),
            "Origin".into(),
            secs(plain.mean_epoch_seconds()),
            pct(plain.final_accuracy() as f64),
            "—".into(),
        ]);
        rows.push(vec![
            String::new(),
            "AMLayer".into(),
            secs(encoded.mean_epoch_seconds()),
            pct(encoded.final_accuracy() as f64),
            format!(
                "{} ± {}",
                pct(stats::mean(&attack_accs) as f64),
                pct(stats::std_dev(&attack_accs) as f64)
            ),
        ]);
        let overhead = encoded.mean_epoch_seconds() / plain.mean_epoch_seconds() - 1.0;
        let drop = encoded.final_accuracy() - stats::mean(&attack_accs);
        println!(
            "Task {label}: AMLayer epoch-time overhead {} (paper: 3.5% / 1.2%); \
             attack accuracy drop {:.1} points (paper: ~67.8 / ~72.7).",
            pct(overhead as f64),
            drop * 100.0,
        );
    }
    print_table(
        "Table I — AMLayer performance, tasks A (mini-ResNet18/CIFAR-10-like) \
         and B (mini-ResNet50/CIFAR-100-like)",
        &[
            "task",
            "variant",
            "one-epoch time",
            "accuracy",
            "accuracy (w/ address-replacing attack)",
        ],
        &rows,
    );
}
