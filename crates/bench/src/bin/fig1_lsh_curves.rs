//! Fig. 1 regenerator: LSH matching probability vs Euclidean distance for
//! several `{r, k, l}` settings, with the similar/dissimilar bound markers.
//!
//! The paper's Fig. 1 shows how `Pr_lsh(c, r, k, l) = 1 − (1 − p^k)^l`
//! decays with distance and how `k`/`l` steepen or lift the curve; the
//! green/red guides mark the target upper bound for similar data
//! (`Pr_lsh(α) ≈ 95%`) and lower bound for dissimilar data
//! (`Pr_lsh(β) ≈ 5%`).
//!
//! Usage: `cargo run --release -p rpol-bench --bin fig1_lsh_curves`

use rpol_bench::{arg_usize, print_table};
use rpol_lsh::probability::{matching_curve, matching_probability};
use rpol_lsh::tuning::{tune, TuningConfig};

fn main() {
    let steps = arg_usize("steps", 13);
    let settings: [(f64, usize, usize); 4] = [(4.0, 2, 4), (4.0, 4, 4), (4.0, 8, 2), (8.0, 4, 4)];

    let mut rows = Vec::new();
    for &(r, k, l) in &settings {
        let curve = matching_curve(r, k, l, 12.0, steps);
        let series = curve
            .iter()
            .map(|p| format!("{:.3}", p.probability))
            .collect::<Vec<_>>()
            .join(", ");
        rows.push(vec![format!("r={r}, k={k}, l={l}"), series]);
    }
    let distances = matching_curve(4.0, 4, 4, 12.0, steps)
        .iter()
        .map(|p| format!("{:.1}", p.distance))
        .collect::<Vec<_>>()
        .join(", ");
    println!("Distances sampled: [{distances}]");
    print_table(
        "Fig. 1 — Pr_lsh(c) curves under varied LSH parameters",
        &["setting", "Pr_lsh at sampled distances"],
        &rows,
    );

    // The bound markers: tune for α = 1, β = 5 (the paper's β = 5α shape)
    // and report where the curves cross the 95%/5% guides.
    let outcome = tune(&TuningConfig::new(1.0, 5.0).with_budget(16));
    let p = outcome.params;
    print_table(
        "Fig. 1 — bound markers (green: similar-data target, red: dissimilar-data target)",
        &["quantity", "value", "paper target"],
        &[
            vec![
                "optimal {r, k, l} under K_lsh=16".into(),
                format!("r={:.2}, k={}, l={}", p.r, p.k, p.l),
                "k·l ≤ 16".into(),
            ],
            vec![
                "Pr_lsh(α) (upper bound, similar)".into(),
                format!("{:.3}", outcome.pr_alpha),
                "≈ 0.95".into(),
            ],
            vec![
                "Pr_lsh(β) (lower bound, dissimilar)".into(),
                format!("{:.3}", outcome.pr_beta),
                "≈ 0.05".into(),
            ],
            vec![
                "monotone decay check".into(),
                format!(
                    "{}",
                    (0..40).all(|i| {
                        let c1 = 0.25 * i as f64 + 0.01;
                        let c2 = c1 + 0.25;
                        matching_probability(c2, p.r as f64, p.k, p.l)
                            <= matching_probability(c1, p.r as f64, p.k, p.l) + 1e-12
                    })
                ),
                "true".into(),
            ],
        ],
    );
}
