//! §VI regenerator: the Theorem 2 / Theorem 3 sample-count analysis.
//!
//! Reproduces the paper's worked numbers: with `Pr_err = 1%` and
//! `Pr_lsh(β) = 5%`, Theorem 2 needs 3 / 47 samples for `h_A = 10% / 90%`;
//! the economic view (Theorem 3, `C_train = 0.88`) needs only 2 / 3, and
//! at `q = 3` the soundness error is ≈ 74.12% yet cheating is
//! unprofitable.
//!
//! Usage: `cargo run --release -p rpol-bench --bin soundness_analysis`

use rpol::economics::EconomicModel;
use rpol::sampling::{evasion_probability, soundness_table};
use rpol_bench::{pct, print_table};

fn main() {
    let ratios: Vec<f64> = (1..10).map(|i| i as f64 / 10.0).collect();

    // Theorem 2.
    let t2 = soundness_table(0.01, 0.05, &ratios);
    let rows: Vec<Vec<String>> = t2
        .iter()
        .map(|p| {
            vec![
                pct(p.honesty_ratio),
                p.q.to_string(),
                format!("{:.3}%", p.achieved_error * 100.0),
            ]
        })
        .collect();
    print_table(
        "Theorem 2 — samples for soundness error ≤ 1% (Pr_lsh(β) = 5%)",
        &["honesty ratio h_A", "q (samples)", "achieved error"],
        &rows,
    );
    println!(
        "paper checks: h=10% → q={} (paper 3); h=90% → q={} (paper 47)",
        t2[0].q, t2[8].q
    );

    // Theorem 3.
    let econ = EconomicModel::paper_example();
    let rows: Vec<Vec<String>> = ratios
        .iter()
        .map(|&h| {
            let q = econ.samples_to_deter(h);
            vec![
                pct(h),
                q.to_string(),
                format!("{:+.3}", econ.adversary_gain(h, q)),
                format!("{:+.3}", econ.adversary_gain(h, 3)),
                format!("{:+.3}", econ.honest_gain(3)),
            ]
        })
        .collect();
    print_table(
        "Theorem 3 — economic deterrence (C_train = 0.88, C_spoof = 0)",
        &[
            "honesty ratio h_A",
            "q to deter",
            "adversary gain at that q",
            "adversary gain at q = 3",
            "honest gain at q = 3",
        ],
        &rows,
    );
    println!(
        "paper checks: h=10% → q={} (paper 2); h=90% → q={} (paper 3); \
         soundness error at q=3, h=90%: {} (paper ≈ 74.12%)",
        econ.samples_to_deter(0.10),
        econ.samples_to_deter(0.90),
        pct(evasion_probability(3, 0.90, 0.05)),
    );
}
