//! Table III regenerator: per-epoch computation, communication, storage
//! and capital cost when 100 workers train ResNet50 on ImageNet.
//!
//! Expected shape (paper): manager compute v2 ≈ v1 + one doubly-trained
//! sub-task; v2 communication ≈ 42% below v1 (verification-only traffic
//! halved); v2 storage ≈ 30% above v1 (LSH projections); total capital
//! cost of v2 ≈ 35% below v1.
//!
//! Usage: `cargo run --release -p rpol-bench --bin table3_overhead`

use rpol::pool::Scheme;
use rpol::timing::{epoch_breakdown, EpochBreakdown, TimingConfig};
use rpol_bench::{gb, print_table, secs};
use rpol_sim::cost::CostModel;
use rpol_sim::workload::{DatasetKind, ModelKind, Workload};

fn main() {
    let workload = Workload::new(ModelKind::ResNet50, DatasetKind::ImageNet);
    let workers = 100;
    let cost = CostModel::paper_default();
    let schemes = [Scheme::Baseline, Scheme::RPoLv1, Scheme::RPoLv2];
    let breakdowns: Vec<EpochBreakdown> = schemes
        .iter()
        .map(|&s| epoch_breakdown(&TimingConfig::paper_setting(workload, s, workers)))
        .collect();

    let paper_comm = ["8.8GB", "62GB", "35.6GB"];
    let paper_storage = ["0.09GB", "4.5GB", "5.9GB"];
    let paper_mcomp = ["0s", "180s", "240s"];
    let paper_cost = ["$2.13", "$8.49", "$5.46"];

    type MetricFn<'a> = Box<dyn Fn(&EpochBreakdown) -> String + 'a>;
    let mut rows = Vec::new();
    let metrics: [(&str, MetricFn<'_>, &[&str; 3]); 5] = [
        (
            "Comp. M (manager)",
            Box::new(|b: &EpochBreakdown| secs(b.manager_compute_s())),
            &paper_mcomp,
        ),
        (
            "Comp. W (per worker)",
            Box::new(|b: &EpochBreakdown| secs(b.worker_compute_s)),
            &["30s", "30s", "30s"],
        ),
        (
            "Comm. M&W",
            Box::new(|b: &EpochBreakdown| gb(b.comm_bytes)),
            &paper_comm,
        ),
        (
            "Storage per W",
            Box::new(|b: &EpochBreakdown| gb(b.storage_per_worker_bytes)),
            &paper_storage,
        ),
        (
            "Capital cost",
            Box::new(|b: &EpochBreakdown| format!("${:.2}", b.capital_cost_usd(100, &cost))),
            &paper_cost,
        ),
    ];
    for (label, f, paper) in &metrics {
        rows.push(vec![
            (*label).to_string(),
            format!("{} (paper {})", f(&breakdowns[0]), paper[0]),
            format!("{} (paper {})", f(&breakdowns[1]), paper[1]),
            format!("{} (paper {})", f(&breakdowns[2]), paper[2]),
        ]);
    }
    print_table(
        "Table III — per-epoch overhead, ResNet50 + ImageNet, 100 workers",
        &["overhead", "Baseline (insecure)", "RPoLv1", "RPoLv2"],
        &rows,
    );

    let v1 = &breakdowns[1];
    let v2 = &breakdowns[2];
    let b = &breakdowns[0];
    println!(
        "verification-only comm: v2 cuts v1 by {:.0}% (paper ~50%)",
        (1.0 - (v2.comm_bytes - b.comm_bytes) as f64 / (v1.comm_bytes - b.comm_bytes) as f64)
            * 100.0
    );
    println!(
        "total comm: v2 is {:.0}% below v1 (paper ~42%)",
        (1.0 - v2.comm_bytes as f64 / v1.comm_bytes as f64) * 100.0
    );
    println!(
        "capital cost: v2 is {:.0}% below v1 (paper ~35%)",
        (1.0 - v2.capital_cost_usd(100, &cost) / v1.capital_cost_usd(100, &cost)) * 100.0
    );
}
