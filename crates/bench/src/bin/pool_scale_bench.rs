//! Committee-sharding scale benchmark emitting `BENCH_scale.json`.
//!
//! Drives the *real* two-tier machinery — rendezvous partitioning,
//! canonical verdict leaves, Merkle-committed [`CommitteeBatch`]es, the
//! tagged wire frame, and spot audits with inclusion proofs plus digest
//! re-computation — over PRF-synthesized submissions at 10²…10⁵ workers.
//! Full training/replay at those scales is not runnable in-process, so
//! the per-worker verification payload is a synthetic checkpoint stream
//! hashed with the production digest primitive: the bytes are fake, the
//! code path and the memory shape are not.
//!
//! Two headline series per scale, both **modeled per node** from
//! measured single-thread costs on this host:
//!
//! * **epochs/s** — flat: one manager ingests and verifies all `n`
//!   commitments serially. Hierarchical: each committee runs on its own
//!   sub-manager node, so the epoch's critical path is the *slowest
//!   committee* plus the top manager's root checks and spot audits.
//! * **peak commitment bytes** — flat materializes every worker's
//!   commitment at once; the streaming hierarchy holds one committee's
//!   commitments plus its encoded batch, retiring them before the next
//!   committee, plus the O(C) root table.
//!
//! The modeled ratios come from single-thread per-node costs, so they
//! are meaningful even on a 1-hardware-thread host (recorded as
//! `host_hw_threads`); `scripts/check_bench.sh` gates the committed
//! baseline's 10⁴-worker speedup and the sub-linear peak-memory slope.
//!
//! `BENCH_SMOKE=1` keeps only the two smallest scales for the CI gate;
//! the committed baseline comes from a full run
//! (`scripts/bench_scale.sh`).
//!
//! Usage: `cargo run --release -p rpol-bench --bin pool_scale_bench [out.json]`

use rpol::committee::{audit_indices, partition, CommitteeBatch};
use rpol::verify::{RejectReason, VerificationOutcome, WorkerVerdict};
use rpol::wire::{decode_committee_batch, encode_committee_batch, open_frame, seal_frame};
use rpol_crypto::sha256::{sha256, Digest};
use rpol_tensor::rng::Pcg32;
use std::time::Instant;

/// Sampled checkpoints per worker (paper: 3).
const Q_SAMPLES: usize = 3;
/// Synthetic checkpoint payload hashed per sample (bytes).
const CHECKPOINT_BYTES: usize = 1024;
/// Target committee size the hierarchy aims for.
const TARGET_COMMITTEE: usize = 256;
/// Verdicts the top manager spot-audits per committee.
const Q_TOP: usize = 2;
/// Epoch the synthetic run pretends to be.
const EPOCH: u64 = 7;
/// Partition/audit seed.
const SEED: u64 = 0x5CA1_AB1E;

/// One worker's synthesized epoch: the commitment digests the manager
/// holds resident, and the verdict its sampled replay would produce.
struct SynthSubmission {
    digests: Vec<Digest>,
    verdict: WorkerVerdict,
}

/// Bytes this submission keeps resident on the verifying manager.
fn resident_bytes(s: &SynthSubmission) -> u64 {
    (s.digests.len() * 32) as u64
}

/// PRF-driven checkpoint stream for one worker, hashed with the real
/// digest primitive. Deterministic in `(worker, EPOCH)` so the audit's
/// re-computation can reproduce it bit-exactly.
fn synth_submission(worker: usize) -> SynthSubmission {
    let mut rng = Pcg32::new(
        (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ EPOCH,
        (worker as u64) | 1,
    );
    let mut buf = vec![0u8; CHECKPOINT_BYTES];
    let mut digests = Vec::with_capacity(Q_SAMPLES);
    for _ in 0..Q_SAMPLES {
        for chunk in buf.chunks_mut(8) {
            let word = rng.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        digests.push(sha256(&buf));
    }
    // A thin, deterministic adversary stripe keeps the reject path and
    // its fatter leaf encoding in the measured loop.
    let outcomes = (0..Q_SAMPLES)
        .map(|q| {
            let outcome = if worker % 97 == 13 && q == 1 {
                VerificationOutcome::Rejected(RejectReason::DistanceExceeded {
                    distance: 3.5,
                    beta: 0.5,
                })
            } else {
                VerificationOutcome::Accepted {
                    double_checked: false,
                }
            };
            (q * 5, outcome)
        })
        .collect();
    SynthSubmission {
        digests,
        verdict: WorkerVerdict {
            outcomes,
            proof_bytes: (Q_SAMPLES * CHECKPOINT_BYTES) as u64,
            replayed_steps: 5 * Q_SAMPLES as u64,
        },
    }
}

struct ScaleResult {
    workers: usize,
    committees: usize,
    flat_epochs_per_s: f64,
    hier_epochs_per_s: f64,
    modeled_speedup: f64,
    flat_peak_bytes: u64,
    hier_peak_bytes: u64,
    verdicts: u64,
    audits: u64,
    audit_mismatches: u64,
    batch_bytes: u64,
    bench_wall_s: f64,
}

fn run_scale(n: usize) -> ScaleResult {
    let bench_t0 = Instant::now();

    // --- Flat reference: one manager ingests everything, all commitments
    // resident until the epoch's verdict fold.
    let t0 = Instant::now();
    let mut flat_resident: Vec<SynthSubmission> = Vec::with_capacity(n);
    for worker in 0..n {
        flat_resident.push(synth_submission(worker));
    }
    let flat_peak_bytes: u64 = flat_resident.iter().map(resident_bytes).sum();
    let accepted = flat_resident
        .iter()
        .filter(|s| s.verdict.all_accepted())
        .count();
    drop(flat_resident);
    let flat_wall = t0.elapsed().as_secs_f64();

    // --- Hierarchical: committees stream one at a time through this
    // process; per-committee wall times let the per-node model place
    // each on its own sub-manager.
    let committees = (n / TARGET_COMMITTEE).max(1);
    let members = partition(SEED, n, committees);
    let mut max_committee_wall = 0.0f64;
    let mut top_wall = 0.0f64;
    let mut hier_peak_bytes = 0u64;
    let mut verdicts = 0u64;
    let mut audits = 0u64;
    let mut audit_mismatches = 0u64;
    let mut batch_bytes = 0u64;
    let mut hier_accepted = 0usize;
    for (c, committee) in members.iter().enumerate() {
        if committee.is_empty() {
            continue;
        }
        // Sub-manager tier: verify the committee, commit the verdicts.
        let sub_t0 = Instant::now();
        let subs: Vec<SynthSubmission> = committee.iter().map(|&w| synth_submission(w)).collect();
        let resident: u64 = subs.iter().map(resident_bytes).sum();
        let batch = CommitteeBatch::from_verdicts(
            EPOCH,
            c,
            committee
                .iter()
                .zip(&subs)
                .map(|(&w, s)| (w, s.verdict.clone()))
                .collect(),
            resident,
        );
        let frame = seal_frame(&encode_committee_batch(&batch));
        max_committee_wall = max_committee_wall.max(sub_t0.elapsed().as_secs_f64());

        // Top tier: decode the frame, check the claimed root, spot-audit
        // q_top verdicts — inclusion proof plus digest re-computation.
        let top_t0 = Instant::now();
        let payload = open_frame(frame.clone()).expect("self-sealed frame");
        let decoded = decode_committee_batch(payload).expect("self-framed batch");
        // One tree build covers the root-consistency check and every
        // audit proof for this committee.
        let tree = decoded.tree();
        assert!(tree.root() == decoded.root, "committee {c} equivocated");
        for &i in &audit_indices(SEED, EPOCH, c, Q_TOP, decoded.verdicts.len()) {
            let (worker, verdict) = decoded.verdicts[i].clone();
            let proof = tree.prove(i);
            assert!(decoded.verify_inclusion(&proof, worker, &verdict));
            // Re-replay: regenerate the worker's checkpoint stream and
            // re-derive the verdict the sub-manager claimed.
            let replayed = synth_submission(worker);
            audits += 1;
            if replayed.verdict != verdict {
                audit_mismatches += 1;
            }
        }
        top_wall += top_t0.elapsed().as_secs_f64();

        verdicts += decoded.verdicts.len() as u64;
        batch_bytes += frame.len() as u64;
        hier_accepted += decoded
            .verdicts
            .iter()
            .filter(|(_, v)| v.all_accepted())
            .count();
        // Peak on any single node: the committee's resident commitments
        // plus its encoded batch, plus the top manager's root table.
        hier_peak_bytes =
            hier_peak_bytes.max(resident + frame.len() as u64 + 32 * committees as u64);
    }
    assert_eq!(verdicts as usize, n, "every worker must be judged");
    assert_eq!(hier_accepted, accepted, "hierarchy changed decisions");

    // Per-node epoch time: slowest committee (they run on distinct
    // sub-managers) plus the top manager's serial share.
    let hier_wall = max_committee_wall + top_wall;
    ScaleResult {
        workers: n,
        committees,
        flat_epochs_per_s: 1.0 / flat_wall,
        hier_epochs_per_s: 1.0 / hier_wall,
        modeled_speedup: flat_wall / hier_wall,
        flat_peak_bytes,
        hier_peak_bytes,
        verdicts,
        audits,
        audit_mismatches,
        batch_bytes,
        bench_wall_s: bench_t0.elapsed().as_secs_f64(),
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_scale.json".to_string());
    let smoke = std::env::var("BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false);
    let scales: &[usize] = if smoke {
        &[100, 1_000]
    } else {
        &[100, 1_000, 10_000, 100_000]
    };

    let results: Vec<ScaleResult> = scales.iter().map(|&n| run_scale(n)).collect();
    for r in &results {
        assert!(r.flat_epochs_per_s > 0.0 && r.hier_epochs_per_s > 0.0);
        assert_eq!(r.audit_mismatches, 0, "honest sub-managers never mismatch");
    }

    let hw_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"target_committee\": {TARGET_COMMITTEE}, \"q_top\": {Q_TOP}, \"q_samples\": {Q_SAMPLES}, \"checkpoint_bytes\": {CHECKPOINT_BYTES}, \"model\": \"per-node: one sub-manager per committee, serial top tier\"}},\n"
    ));
    json.push_str(&format!("  \"host_hw_threads\": {hw_threads},\n"));
    json.push_str("  \"scales\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {}, \"committees\": {}, \"flat_epochs_per_s\": {:.4}, \"hier_epochs_per_s\": {:.4}, \"modeled_speedup\": {:.3}, \"flat_peak_bytes\": {}, \"hier_peak_bytes\": {}, \"verdicts\": {}, \"audits\": {}, \"audit_mismatches\": {}, \"batch_bytes\": {}, \"bench_wall_s\": {:.3}}}{}\n",
            r.workers,
            r.committees,
            r.flat_epochs_per_s,
            r.hier_epochs_per_s,
            r.modeled_speedup,
            r.flat_peak_bytes,
            r.hier_peak_bytes,
            r.verdicts,
            r.audits,
            r.audit_mismatches,
            r.batch_bytes,
            r.bench_wall_s,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark output");

    println!("host hardware threads: {hw_threads}");
    for r in &results {
        println!(
            "{:>7} workers / {:>4} committees: flat {:>8.3} ep/s, hier {:>8.3} ep/s ({:>6.1}x), peak {} -> {} bytes, {} audits ({:.2}s)",
            r.workers,
            r.committees,
            r.flat_epochs_per_s,
            r.hier_epochs_per_s,
            r.modeled_speedup,
            r.flat_peak_bytes,
            r.hier_peak_bytes,
            r.audits,
            r.bench_wall_s,
        );
    }
    println!("wrote {out_path}");
}
