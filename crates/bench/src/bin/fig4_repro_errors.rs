//! Fig. 4 regenerator: influence of GPU model pairs and i.i.d. training
//! shards on reproduction errors (mini-ResNet18 on the CIFAR-10 stand-in).
//!
//! For every GPU pair (train on A, replay on B) and each of five i.i.d.
//! shards D1..D5, this harness trains one epoch while replaying every
//! checkpoint segment on the second GPU, and reports the per-shard
//! mean + std of the per-checkpoint distances (the paper's "maximum"
//! statistic) plus a Kolmogorov–Smirnov normality verdict.
//!
//! Expected shape (paper): errors exist even on same-GPU pairs, grow with
//! GPU speed, are larger cross-GPU — largest for the top-2 pair
//! (G3090 + GA10) — and are normally distributed per shard.
//!
//! Usage: `cargo run --release -p rpol-bench --bin fig4_repro_errors [--steps=25]`

use rpol::tasks::TaskConfig;
use rpol::trainer::LocalTrainer;
use rpol_bench::{arg_usize, print_table};
use rpol_nn::data::SyntheticImages;
use rpol_sim::gpu::{GpuModel, NoiseInjector};
use rpol_tensor::rng::Pcg32;
use rpol_tensor::stats;

fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        .sqrt() as f32
}

/// Per-checkpoint reproduction distances for one (train GPU, replay GPU,
/// shard) combination.
fn measure(
    cfg: &TaskConfig,
    shard: &SyntheticImages,
    train_gpu: GpuModel,
    replay_gpu: GpuModel,
    steps: usize,
    seed: u64,
) -> Vec<f32> {
    let mut model = cfg.build_model();
    let mut trainer = LocalTrainer::new(cfg, shard, NoiseInjector::new(train_gpu, seed));
    let trace = trainer.run_epoch(&mut model, seed ^ 0x11, steps);
    let mut replay_model = cfg.build_model();
    let mut replayer = LocalTrainer::new(cfg, shard, NoiseInjector::new(replay_gpu, seed ^ 0x9000));
    trace
        .segments
        .iter()
        .enumerate()
        .map(|(j, seg)| {
            let out = replayer.replay_segment(
                &mut replay_model,
                &trace.checkpoints[j],
                seed ^ 0x11,
                *seg,
            );
            euclidean(&out, &trace.checkpoints[j + 1])
        })
        .collect()
}

fn main() {
    let steps = arg_usize("steps", 25);
    let cfg = TaskConfig::task_a();
    let mut rng = Pcg32::seed_from(0xF14);
    let data = SyntheticImages::generate(&cfg.spec, 5 * 200, &mut rng);
    let shards = data.shard(5);

    // The paper's pair grid: same-GPU pairs plus selected cross pairs.
    let pairs: [(GpuModel, GpuModel); 7] = [
        (GpuModel::GT4, GpuModel::GT4),
        (GpuModel::GP100, GpuModel::GP100),
        (GpuModel::GA10, GpuModel::GA10),
        (GpuModel::G3090, GpuModel::G3090),
        (GpuModel::GT4, GpuModel::GP100),
        (GpuModel::GP100, GpuModel::GA10),
        (GpuModel::G3090, GpuModel::GA10),
    ];

    let mut rows = Vec::new();
    let mut pair_means = Vec::new();
    for (a, b) in pairs {
        let mut shard_stats = Vec::new();
        let mut all = Vec::new();
        for (si, shard) in shards.iter().enumerate() {
            let dists = measure(&cfg, shard, a, b, steps, 0x5EED7 + si as u64);
            all.extend_from_slice(&dists);
            shard_stats.push(format!(
                "{:.2e}",
                (stats::mean(&dists) + stats::std_dev(&dists))
            ));
        }
        let ks = stats::ks_normality_test(&all);
        pair_means.push(stats::mean(&all));
        rows.push(vec![
            format!("{a} → {b}"),
            shard_stats.join(", "),
            format!("{:.2e}", stats::mean(&all)),
            format!("{:.3}", ks.p_value),
            format!("{}", ks.is_normal(0.01)),
        ]);
    }
    print_table(
        "Fig. 4 — reproduction errors by GPU pair and i.i.d. shard \
         (mini-ResNet18, per-shard mean+std over checkpoints)",
        &[
            "GPU pair (train → replay)",
            "per-shard max estimate (D1..D5)",
            "overall mean",
            "KS p-value",
            "normal?",
        ],
        &rows,
    );

    // Shape assertions, printed for EXPERIMENTS.md.
    let same_gpu_sorted = pair_means[..4].windows(2).all(|w| w[0] <= w[1] * 1.25);
    println!(
        "same-GPU errors increase with GPU speed (allowing sampling noise): {}",
        same_gpu_sorted
    );
    println!(
        "top-2 cross pair (G3090→GA10) error {:.2e} vs fastest same-GPU {:.2e} \
         (paper: cross pairs are larger; top-2 pair largest): {}",
        pair_means[6],
        pair_means[3],
        pair_means[6] > pair_means[3]
    );

    // Checkpoint-interval scaling (paper: linear growth).
    let shard = &shards[0];
    let mut rows = Vec::new();
    for interval in [2usize, 4, 8] {
        let mut cfg_i = cfg;
        cfg_i.checkpoint_interval = interval;
        let dists = measure(&cfg_i, shard, GpuModel::G3090, GpuModel::GA10, 32, 0xCAFE);
        rows.push(vec![
            interval.to_string(),
            format!("{:.2e}", stats::mean(&dists)),
        ]);
    }
    print_table(
        "Fig. 4 (companion) — reproduction error vs checkpoint interval \
         (expected: ~√-to-linear growth)",
        &["interval (steps)", "mean per-checkpoint error"],
        &rows,
    );

    // Optimizer variation (§VII-C: "errors are different for different
    // optimizers ... yet the above results still hold inside each epoch
    // with the same optimizer").
    use rpol_nn::optim::OptimizerSpec;
    let optimizers: [(&str, OptimizerSpec); 3] = [
        (
            "SGDM",
            OptimizerSpec::SgdMomentum {
                lr: 0.05,
                momentum: 0.9,
            },
        ),
        (
            "RMSprop",
            OptimizerSpec::RmsProp {
                lr: 0.005,
                decay: 0.9,
            },
        ),
        (
            "Adam",
            OptimizerSpec::Adam {
                lr: 0.005,
                beta1: 0.9,
                beta2: 0.999,
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, opt) in optimizers {
        let mut cfg_o = cfg;
        cfg_o.optimizer = opt;
        let dists = measure(
            &cfg_o,
            shard,
            GpuModel::G3090,
            GpuModel::GA10,
            steps,
            0xBEEF,
        );
        let ks = stats::ks_normality_test(&dists);
        rows.push(vec![
            name.to_string(),
            format!("{:.2e}", stats::mean(&dists)),
            format!("{:.2e}", stats::max(&dists)),
            format!("{}", ks.is_normal(0.01)),
        ]);
    }
    print_table(
        "Fig. 4 (companion) — reproduction error by optimizer \
         (expected: magnitudes differ per optimizer, structure holds)",
        &["optimizer", "mean error", "max error", "normal?"],
        &rows,
    );
}
