//! Table II regenerator: one-epoch training time of Baseline / RPoLv1 /
//! RPoLv2 for ResNet50 and VGG16 on ImageNet with 10 and 100 workers,
//! from the analytic timing model (see `rpol::timing` for the accounting
//! conventions).
//!
//! Expected shape (paper): Baseline < RPoLv2 < RPoLv1 everywhere; larger
//! pools are faster; the LSH gain is bigger for comm-dominated VGG16
//! (~36% epoch-time reduction v2 vs v1 at 100 workers).
//!
//! Usage: `cargo run --release -p rpol-bench --bin table2_epoch_time`

use rpol::pool::Scheme;
use rpol::timing::{epoch_breakdown, TimingConfig};
use rpol_bench::{print_table, secs};
use rpol_sim::workload::{DatasetKind, ModelKind, Workload};

fn main() {
    let paper: &[(&str, usize, [f64; 3])] = &[
        ("ResNet50", 10, [307.0, 369.0, 348.0]),
        ("ResNet50", 100, [37.0, 99.0, 78.0]),
        ("VGG16", 10, [282.0, 548.0, 429.0]),
        ("VGG16", 100, [66.0, 332.0, 212.0]),
    ];

    let mut rows = Vec::new();
    for &(name, n, paper_row) in paper {
        let model = match name {
            "ResNet50" => ModelKind::ResNet50,
            _ => ModelKind::Vgg16,
        };
        let workload = Workload::new(model, DatasetKind::ImageNet);
        let ts: Vec<f64> = [Scheme::Baseline, Scheme::RPoLv1, Scheme::RPoLv2]
            .iter()
            .map(|&s| epoch_breakdown(&TimingConfig::paper_setting(workload, s, n)).epoch_seconds())
            .collect();
        rows.push(vec![
            name.into(),
            n.to_string(),
            format!("{} (paper {})", secs(ts[0]), secs(paper_row[0])),
            format!("{} (paper {})", secs(ts[1]), secs(paper_row[1])),
            format!("{} (paper {})", secs(ts[2]), secs(paper_row[2])),
            format!("{:.0}%", (ts[1] - ts[2]) / ts[1] * 100.0),
        ]);
    }
    print_table(
        "Table II — one-epoch training time (analytic model vs paper)",
        &[
            "task",
            "# workers",
            "Baseline (insecure)",
            "RPoLv1",
            "RPoLv2",
            "v2 gain over v1",
        ],
        &rows,
    );
    println!(
        "Expected shape: Baseline < RPoLv2 < RPoLv1; 100 workers faster \
         than 10; v2's gain larger for VGG16 (paper: ~36% at 100 workers)."
    );
}
