//! Diagnostic: trace per-worker verification outcomes in the Fig. 6-style
//! attack pool to confirm honest workers are never rejected.
//!
//! Usage: `cargo run --release -p rpol-bench --bin debug_rejections`

use rpol::adversary::WorkerBehavior;
use rpol::pool::{MiningPool, PoolConfig, Scheme};
use rpol::tasks::TaskConfig;

fn main() {
    let behaviors = vec![
        WorkerBehavior::Honest,
        WorkerBehavior::Honest,
        WorkerBehavior::Honest,
        WorkerBehavior::Honest,
        WorkerBehavior::Honest,
        WorkerBehavior::Honest,
        WorkerBehavior::ReplayPrevious,
        WorkerBehavior::ReplayPrevious,
        WorkerBehavior::adv2_default(),
        WorkerBehavior::adv2_default(),
    ];
    for scheme in [Scheme::RPoLv1, Scheme::RPoLv2] {
        let mut config = PoolConfig::paper_like(TaskConfig::task_a(), scheme, 6);
        config.train_samples = 160 * 11;
        let mut pool = MiningPool::new(config, behaviors.clone());
        println!("=== {scheme} ===");
        let report = pool.run();
        for rec in &report.epochs {
            let honest_rejected: Vec<usize> = rec
                .report
                .rejected
                .iter()
                .copied()
                .filter(|&w| !behaviors[w].is_adversarial())
                .collect();
            let adv_accepted: Vec<usize> = rec
                .report
                .accepted
                .iter()
                .copied()
                .filter(|&w| behaviors[w].is_adversarial())
                .collect();
            println!(
                "epoch {}: rejected {:?}; HONEST-REJECTED {:?}; ADV-ACCEPTED {:?}; beta={:?}",
                rec.report.epoch,
                rec.report.rejected,
                honest_rejected,
                adv_accepted,
                rec.report.calibration.map(|c| (c.alpha, c.beta)),
            );
            for &w in &honest_rejected {
                let verdict = &rec
                    .report
                    .verdicts
                    .iter()
                    .find(|(id, _)| *id == w)
                    .expect("verdict present")
                    .1;
                println!("    worker {w} outcomes: {:?}", verdict.outcomes);
            }
        }
    }
}
