//! §VII-E headline regenerator: "RPoL helps the pool win the mining
//! competition". Two pools with identical resources and the same 40%
//! adversary mix race over consecutive consensus rounds; only one runs
//! RPoLv2 verification. We count who mines the blocks.
//!
//! Also traces the difficulty controller (the paper's future-work "adjust
//! the difficulty level to accommodate a reasonable block production
//! time") reacting to winning accuracies.
//!
//! Usage: `cargo run --release -p rpol-bench --bin competition_rounds \
//!         [--rounds=6] [--workers=6]`

use rpol::adversary::WorkerBehavior;
use rpol::mining::{DifficultyController, MiningCompetition};
use rpol::pool::{PoolConfig, Scheme};
use rpol::tasks::TaskConfig;
use rpol_bench::{arg_usize, pct, print_table};
use rpol_chain::task::TrainingTask;

fn main() {
    let rounds = arg_usize("rounds", 6);
    let workers = arg_usize("workers", 6);
    let cfg = TaskConfig::task_a();
    let task = TrainingTask::new(0, cfg.spec, 160 * (workers + 1), 300, 0x0C0, 4);
    let controller = DifficultyController::new(0.90, 4, 2, 8);
    let mut competition = MiningCompetition::new(task, cfg, controller, 100.0);

    // Same resources, same adversary mix (~40% cheaters), different scheme.
    let mut behaviors = vec![WorkerBehavior::Honest; workers];
    for (i, b) in behaviors.iter_mut().take(workers * 2 / 5).enumerate() {
        *b = if i % 2 == 0 {
            WorkerBehavior::adv2_default()
        } else {
            WorkerBehavior::ReplayPrevious
        };
    }
    let mut config = PoolConfig::paper_like(cfg, Scheme::RPoLv2, 4);
    config.train_samples = 160 * (workers + 1);
    competition.register("rpol-pool", config, behaviors.clone());
    let mut config = PoolConfig::paper_like(cfg, Scheme::Baseline, 4);
    config.train_samples = 160 * (workers + 1);
    competition.register("baseline-pool", config, behaviors);

    let report = competition.run(rounds);

    let rows: Vec<Vec<String>> = report
        .standings
        .iter()
        .map(|(name, wins, rewards)| {
            vec![
                name.clone(),
                wins.to_string(),
                pct(*wins as f64 / rounds as f64),
                format!("{rewards:.0}"),
            ]
        })
        .collect();
    print_table(
        &format!("Mining competition — {rounds} rounds, {workers} workers/pool, ~40% adversaries"),
        &["pool", "blocks won", "win rate", "rewards"],
        &rows,
    );

    let rows: Vec<Vec<String>> = report
        .winning_accuracies
        .iter()
        .zip(&report.epoch_budgets)
        .enumerate()
        .map(|(i, (acc, epochs))| vec![(i + 1).to_string(), pct(*acc as f64), epochs.to_string()])
        .collect();
    print_table(
        "Difficulty trace (target 90% winning accuracy)",
        &["round", "winning accuracy", "epoch budget"],
        &rows,
    );
    println!(
        "expected shape: the RPoL pool wins the (large) majority of rounds \
         because its global model never aggregates adversarial updates."
    );
}
