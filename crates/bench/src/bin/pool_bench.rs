//! Epoch-pipeline benchmark emitting `BENCH_pool.json`.
//!
//! Compares the pre-executor *scoped* epoch pipeline (threads spawned per
//! epoch, hard barrier between training and verification, serial
//! calibration and evaluation) against the persistent-executor
//! *overlapped* pipeline (PR 5) at 1, 2 and 8 worker threads.
//!
//! CI hosts for this repo expose a single hardware thread, so wall-clock
//! cannot show multi-thread scaling. The benchmark therefore reports two
//! complementary views:
//!
//! * **modeled** — an instrumented *serial* run records the real duration
//!   of every schedulable unit (calibration trace + replay units, per
//!   worker training, per-sample verification, evaluation chunks) via
//!   wall-clock spans, then a list-scheduling simulation computes the
//!   makespan each pipeline would reach on `W` hardware threads. The
//!   scoped model keeps calibration and evaluation serial and puts a
//!   barrier between training and verification (exactly what
//!   `run_epoch_scoped` does); the overlapped model fans calibration
//!   units and eval chunks across lanes and releases each worker's
//!   verification tasks the moment that worker's training finishes
//!   (exactly what `run_epoch_parallel` schedules on the executor). Both
//!   models carry the measured non-parallel remainder (aggregation,
//!   commitment checks, reduction) so absolute epochs/s stay anchored to
//!   the real epoch duration.
//! * **measured_wall** — honest end-to-end epochs/s of the serial, scoped
//!   and overlapped runtimes on this host, labeled with the host's
//!   hardware thread count. On a 1-thread host these are expected to be
//!   flat (the overlapped runtime must not be *slower*).
//!
//! All three runtimes are additionally asserted to produce the same
//! accuracy curve — a benchmark of a diverged pipeline is worthless.
//!
//! `BENCH_SMOKE=1` shrinks the pool for the CI regression gate
//! (`scripts/check_bench.sh`); the committed baseline comes from a full
//! run (`scripts/bench_pool.sh`).
//!
//! Usage: `cargo run --release -p rpol-bench --bin pool_bench [out.json]`

use rpol::adversary::WorkerBehavior;
use rpol::pool::{MiningPool, PoolConfig, Scheme};
use rpol::transport::FaultConfig;
use rpol_obs::{Event, EventKind, Recorder};
use std::sync::Arc;
use std::time::Instant;

/// Every schedulable unit of one epoch, with measured durations (ns).
#[derive(Default, Clone)]
struct EpochSpans {
    /// Calibration sub-task training (serial in both pipelines).
    trace: u64,
    /// Calibration replay measurements (independent units).
    calib_units: Vec<u64>,
    /// Per-worker local training.
    train: Vec<u64>,
    /// Per-worker whole-verification spans (the scoped unit).
    verify_workers: Vec<u64>,
    /// Per-worker, per-sample replay spans (the overlapped unit).
    verify_samples: Vec<Vec<u64>>,
    /// Held-out evaluation chunks.
    eval_chunks: Vec<u64>,
    /// Full `rpol.pool.epoch` duration.
    total: u64,
}

impl EpochSpans {
    /// Measured time not covered by any schedulable unit: aggregation,
    /// commitment verification, sampling, reduction. Serial in both
    /// pipelines, so both models carry it unchanged.
    fn remainder(&self) -> u64 {
        let covered = self.trace
            + self.calib_units.iter().sum::<u64>()
            + self.train.iter().sum::<u64>()
            + self.verify_workers.iter().sum::<u64>()
            + self.eval_chunks.iter().sum::<u64>();
        self.total.saturating_sub(covered)
    }
}

/// Splits a serial run's event stream into per-epoch span groups. Events
/// arrive in close order, so nested spans (per-sample replays) precede
/// their enclosing span (the worker verification) and everything precedes
/// the epoch span that closes last.
fn collect_epochs(events: &[Event]) -> Vec<EpochSpans> {
    let mut epochs = Vec::new();
    let mut cur = EpochSpans::default();
    let mut pending_samples: Vec<u64> = Vec::new();
    for ev in events {
        if ev.kind != EventKind::Span {
            continue;
        }
        let Some(dur) = ev.dur else { continue };
        match ev.name.as_str() {
            "rpol.calibrate.trace" => cur.trace = dur,
            "rpol.calibrate.unit" => cur.calib_units.push(dur),
            "rpol.worker.train_epoch" => cur.train.push(dur),
            "rpol.verify.replay_segment" => pending_samples.push(dur),
            "rpol.verify.worker" => {
                cur.verify_workers.push(dur);
                cur.verify_samples
                    .push(std::mem::take(&mut pending_samples));
            }
            "rpol.pool.eval_chunk" => cur.eval_chunks.push(dur),
            "rpol.pool.epoch" => {
                cur.total = dur;
                epochs.push(std::mem::take(&mut cur));
                pending_samples.clear();
            }
            _ => {}
        }
    }
    epochs
}

/// Longest-processing-time list schedule of independent tasks over
/// `lanes` identical lanes; returns the makespan.
fn lpt(tasks: &[u64], lanes: usize) -> u64 {
    let mut sorted: Vec<u64> = tasks.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut lane = vec![0u64; lanes.max(1)];
    for t in sorted {
        let min = lane.iter_mut().min().expect("at least one lane");
        *min += t;
    }
    lane.into_iter().max().unwrap_or(0)
}

/// Modeled makespan of one *scoped* epoch on `w` threads: serial
/// calibration, LPT-parallel training, a barrier, LPT-parallel
/// worker-granular verification, serial evaluation.
fn scoped_makespan(e: &EpochSpans, w: usize) -> u64 {
    let calib = e.trace + e.calib_units.iter().sum::<u64>();
    let train = lpt(&e.train, w);
    let verify = lpt(&e.verify_workers, w);
    let eval: u64 = e.eval_chunks.iter().sum();
    calib + train + verify + eval + e.remainder()
}

/// Modeled makespan of one *overlapped* epoch on `w` threads: the
/// calibration trace stays serial but its replay units fan out; each
/// worker's per-sample verification tasks are *released* the moment that
/// worker's training completes (no barrier); evaluation chunks fan out.
fn overlapped_makespan(e: &EpochSpans, w: usize) -> u64 {
    let lanes_n = w.max(1);
    let calib = e.trace + lpt(&e.calib_units, lanes_n);

    // Training + verification as a release-time list schedule.
    let mut lane = vec![0u64; lanes_n];
    let mut order: Vec<usize> = (0..e.train.len()).collect();
    order.sort_unstable_by(|&a, &b| e.train[b].cmp(&e.train[a]));
    let mut releases: Vec<(u64, u64)> = Vec::new();
    for &wk in &order {
        let min = lane.iter_mut().min().expect("lane");
        *min += e.train[wk];
        let finish = *min;
        if let Some(samples) = e.verify_samples.get(wk) {
            for &s in samples {
                releases.push((finish, s));
            }
        }
    }
    releases.sort_unstable();
    for (release, dur) in releases {
        let min = lane.iter_mut().min().expect("lane");
        *min = (*min).max(release) + dur;
    }
    let train_verify = lane.into_iter().max().unwrap_or(0);

    let eval = lpt(&e.eval_chunks, lanes_n);
    calib + train_verify + eval + e.remainder()
}

fn epochs_per_s(total_ns: u64, epochs: usize) -> f64 {
    epochs as f64 * 1e9 / total_ns as f64
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pool.json".to_string());
    let smoke = std::env::var("BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false);
    // The paper's 10-worker pool shape with multi-segment epochs and an
    // eval-heavy held-out set: workers outnumber lanes (so the scoped
    // train→verify barrier strands lane time) and the scoped pipeline's
    // serial phases (calibration replay units, evaluation) dominate.
    let (workers, steps, q, test_samples, epochs) = if smoke {
        (4usize, 8usize, 2usize, 96usize, 1usize)
    } else {
        (10, 16, 4, 2048, 3)
    };
    let mut config = PoolConfig::tiny_demo(Scheme::RPoLv2);
    config.epochs = epochs;
    config.steps_per_epoch = steps;
    config.q_samples = q;
    config.test_samples = test_samples;
    config.train_samples = (workers + 1) * 80;
    let behaviors = vec![WorkerBehavior::Honest; workers];

    // --- Instrumented serial reference run: real unit durations. ---
    let rec = Arc::new(Recorder::wall());
    let mut serial_pool = MiningPool::new(config, behaviors.clone()).with_recorder(rec.clone());
    let t0 = Instant::now();
    let serial_report = serial_pool.run();
    let serial_wall_ns = t0.elapsed().as_nanos() as u64;
    let spans = collect_epochs(&rec.events());
    assert_eq!(spans.len(), epochs, "one span group per epoch");
    for e in &spans {
        assert_eq!(e.train.len(), workers, "one training span per worker");
        assert_eq!(
            e.verify_workers.len(),
            workers,
            "one verification span per worker"
        );
        assert!(e.trace > 0, "calibration trace span missing");
        assert!(!e.eval_chunks.is_empty(), "evaluation chunk spans missing");
    }

    // --- Honest wall-clock runs of the two parallel runtimes. ---
    let t0 = Instant::now();
    let scoped_report = MiningPool::new(config, behaviors.clone()).run_scoped();
    let scoped_wall_ns = t0.elapsed().as_nanos() as u64;
    let t0 = Instant::now();
    let overlapped_report = MiningPool::new(config, behaviors.clone())
        .with_threads(8)
        .run_parallel();
    let overlapped_wall_ns = t0.elapsed().as_nanos() as u64;
    assert_eq!(
        serial_report.accuracy_curve(),
        scoped_report.accuracy_curve(),
        "scoped runtime diverged from serial"
    );
    assert_eq!(
        serial_report.accuracy_curve(),
        overlapped_report.accuracy_curve(),
        "overlapped runtime diverged from serial"
    );

    // --- Modeled makespans at 1/2/8 threads. ---
    let thread_counts = [1usize, 2, 8];
    let mut modeled = Vec::new();
    for &w in &thread_counts {
        let scoped_ns: u64 = spans.iter().map(|e| scoped_makespan(e, w)).sum();
        let overlapped_ns: u64 = spans.iter().map(|e| overlapped_makespan(e, w)).sum();
        let scoped_eps = epochs_per_s(scoped_ns, epochs);
        let overlapped_eps = epochs_per_s(overlapped_ns, epochs);
        modeled.push((w, scoped_eps, overlapped_eps, overlapped_eps / scoped_eps));
    }

    // --- Compressed-frame case (RPoLv3): the same mixed pool over the
    // in-memory transport under RPoLv1 (raw f32 framing) and RPoLv3
    // (packed bf16 framing). Detection must be identical — honest workers
    // accepted, the replayer rejected, epoch by epoch — before the byte
    // counts mean anything; only then are wire totals recorded.
    let wire_behaviors = vec![
        WorkerBehavior::Honest,
        WorkerBehavior::Honest,
        WorkerBehavior::ReplayPrevious,
    ];
    let v1_report = MiningPool::new(
        PoolConfig::tiny_demo(Scheme::RPoLv1).with_faults(FaultConfig::ideal(3)),
        wire_behaviors.clone(),
    )
    .run();
    let v3_report = MiningPool::new(
        PoolConfig::tiny_demo(Scheme::RPoLv3).with_faults(FaultConfig::ideal(3)),
        wire_behaviors,
    )
    .run();
    for (e, (v1e, v3e)) in v1_report.epochs.iter().zip(&v3_report.epochs).enumerate() {
        assert_eq!(
            v1e.report.accepted, v3e.report.accepted,
            "epoch {e}: v3 accepted set diverged from v1"
        );
        assert_eq!(
            v1e.report.rejected, v3e.report.rejected,
            "epoch {e}: v3 rejected set diverged from v1"
        );
    }
    assert!(v3_report.rejections() > 0, "replayer must be caught");
    let v1_wire = v1_report.transport_totals().wire_bytes;
    let v3_wire = v3_report.transport_totals().wire_bytes;
    let v3_saved = v3_report.transport_totals().bytes_saved;
    assert!(v3_wire < v1_wire, "packed framing must shrink the wire");
    let wire_reduction = 1.0 - v3_wire as f64 / v1_wire as f64;

    let hw_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"workers\": {workers}, \"steps_per_epoch\": {steps}, \"q_samples\": {q}, \"test_samples\": {test_samples}, \"epochs\": {epochs}, \"scheme\": \"RPoLv2\"}},\n"
    ));
    json.push_str(&format!("  \"host_hw_threads\": {hw_threads},\n"));
    json.push_str("  \"modeled\": [\n");
    for (i, (w, s, o, speedup)) in modeled.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {w}, \"scoped_epochs_per_s\": {s:.4}, \"overlapped_epochs_per_s\": {o:.4}, \"overlapped_vs_scoped\": {speedup:.3}}}{}\n",
            if i + 1 < modeled.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    // Wall-clock numbers are only comparable across modes when the host
    // actually has lanes to schedule on, so each mode records the thread
    // count it ran under; `check_bench.sh` skips ratio gating at 1.
    json.push_str("  \"measured_wall\": [\n");
    json.push_str(&format!(
        "    {{\"mode\": \"serial\", \"epochs_per_s\": {:.4}, \"host_hw_threads\": {hw_threads}}},\n",
        epochs_per_s(serial_wall_ns, epochs)
    ));
    json.push_str(&format!(
        "    {{\"mode\": \"scoped\", \"epochs_per_s\": {:.4}, \"host_hw_threads\": {hw_threads}}},\n",
        epochs_per_s(scoped_wall_ns, epochs)
    ));
    json.push_str(&format!(
        "    {{\"mode\": \"overlapped_8t\", \"epochs_per_s\": {:.4}, \"host_hw_threads\": {hw_threads}}}\n",
        epochs_per_s(overlapped_wall_ns, epochs)
    ));
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"wire\": {{\"pool\": \"2 honest + 1 replayer, ideal transport\", \"v1_wire_bytes\": {v1_wire}, \"v3_wire_bytes\": {v3_wire}, \"v3_bytes_saved\": {v3_saved}, \"wire_reduction\": {wire_reduction:.3}, \"detection_identical\": true}}\n"
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write benchmark output");

    println!("host hardware threads: {hw_threads}");
    for (i, e) in spans.iter().enumerate() {
        println!(
            "epoch {i}: trace {:.2}ms, calib_units {:.2}ms, train {:.2}ms, verify {:.2}ms, eval {:.2}ms, remainder {:.2}ms (total {:.2}ms)",
            e.trace as f64 / 1e6,
            e.calib_units.iter().sum::<u64>() as f64 / 1e6,
            e.train.iter().sum::<u64>() as f64 / 1e6,
            e.verify_workers.iter().sum::<u64>() as f64 / 1e6,
            e.eval_chunks.iter().sum::<u64>() as f64 / 1e6,
            e.remainder() as f64 / 1e6,
            e.total as f64 / 1e6,
        );
    }
    for (w, s, o, speedup) in &modeled {
        println!("modeled {w}t: scoped {s:.4} ep/s, overlapped {o:.4} ep/s ({speedup:.3}x)");
    }
    println!(
        "measured wall: serial {:.4} ep/s, scoped {:.4} ep/s, overlapped(8t) {:.4} ep/s",
        epochs_per_s(serial_wall_ns, epochs),
        epochs_per_s(scoped_wall_ns, epochs),
        epochs_per_s(overlapped_wall_ns, epochs)
    );
    println!(
        "wire: v1 {v1_wire} B, v3 {v3_wire} B ({:.1}% reduction, {v3_saved} B saved), detection identical",
        wire_reduction * 100.0
    );
    println!("wrote {out_path}");
}
