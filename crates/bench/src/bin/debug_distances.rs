//! Diagnostic: distribution of honest replay distances per (epoch,
//! segment) in a pool of honest workers, vs the calibrated α/β.
//!
//! Usage: `cargo run --release -p rpol-bench --bin debug_distances`

use rpol::calibrate::{CalibrationPolicy, Calibrator};
use rpol::tasks::TaskConfig;
use rpol::trainer::LocalTrainer;
use rpol_nn::data::SyntheticImages;
use rpol_sim::gpu::{GpuModel, NoiseInjector};
use rpol_tensor::rng::Pcg32;

fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        .sqrt() as f32
}

fn main() {
    let cfg = TaskConfig::task_a();
    let steps = 15;
    let n = 6;
    let mut rng = Pcg32::seed_from(0xDEB);
    let data = SyntheticImages::generate(&cfg.spec, 160 * (n + 1), &mut rng);
    let shards = data.shard(n + 1);
    let calibrator = Calibrator::new(
        &cfg,
        &shards[n],
        CalibrationPolicy::default(),
        GpuModel::top2(),
    );
    let mut global = cfg.build_model().flatten_params();
    for epoch in 0..6u64 {
        let (cal, _) = calibrator.calibrate(&global, 0xAA ^ epoch, steps, epoch);
        print!("epoch {epoch}: alpha={:.4} ", cal.alpha);
        let mut traces = Vec::new();
        #[allow(clippy::needless_range_loop)]
        for w in 0..n {
            let gpu = GpuModel::ALL[w % 4];
            let mut model = cfg.build_model();
            model.load_params(&global);
            let mut trainer = LocalTrainer::new(
                &cfg,
                &shards[w],
                NoiseInjector::new(gpu, (epoch << 8) ^ w as u64),
            );
            let nonce = (epoch << 4) ^ w as u64;
            let trace = trainer.run_epoch(&mut model, nonce, steps);
            // Verify each segment, print distance and per-segment progress.
            let mut verify_model = cfg.build_model();
            let mut verifier = LocalTrainer::new(
                &cfg,
                &shards[w],
                NoiseInjector::new(GpuModel::G3090, 0xFF00 ^ (epoch << 8) ^ w as u64),
            );
            let dists: Vec<String> = trace
                .segments
                .iter()
                .enumerate()
                .map(|(j, seg)| {
                    let replayed = verifier.replay_segment(
                        &mut verify_model,
                        &trace.checkpoints[j],
                        nonce,
                        *seg,
                    );
                    let d = euclidean(&replayed, &trace.checkpoints[j + 1]);
                    let progress = euclidean(&trace.checkpoints[j], &trace.checkpoints[j + 1]);
                    format!("{:.4}/{:.2}", d, progress)
                })
                .collect();
            print!("w{w}[{}] ", dists.join(" "));
            traces.push(trace);
        }
        println!();
        // Aggregate all workers into the next global.
        let mut next = global.clone();
        for trace in &traces {
            let fin = trace.final_weights();
            for (g, (&cur, &f)) in next.iter_mut().zip(global.iter().zip(fin)) {
                *g += (f - cur) / n as f32;
            }
        }
        global = next;
    }
}
