//! Fig. 5 regenerator: the adaptive LSH calibration study.
//!
//! For four tasks (mini-ResNet18/50 × CIFAR-10/100 stand-ins) and each
//! epoch, this harness reports:
//!
//! * the measured **maximum reproduction error** of an honest worker
//!   (trains on GA10, verified from G3090 — the near-worst pairing),
//! * the **minimum spoof distance** of the Eq. 12 adversary that honestly
//!   trains the first third of checkpoints and extrapolates the rest,
//! * the calibrated **α** and **β = 5α**,
//! * measured **FNR_lsh** (honest checkpoints failing LSH matching) and
//!   **FPR_lsh** (spoofed checkpoints passing LSH matching) across
//!   repeated trials.
//!
//! Expected shape (paper): spoof distances decrease toward convergence but
//! stay far above reproduction errors; β upper-bounds every honest error
//! (0 end-to-end false negatives); both measured rates sit below the 5%
//! theoretical bound.
//!
//! Usage: `cargo run --release -p rpol-bench --bin fig5_calibration \
//!         [--epochs=4] [--trials=8] [--steps=30]`

use rpol::adversary::spoof_next_checkpoint;
use rpol::calibrate::{CalibrationPolicy, Calibrator};
use rpol::tasks::{ModelArch, TaskConfig};
use rpol::trainer::LocalTrainer;
use rpol_bench::{arg_usize, pct, print_table};
use rpol_nn::data::{ImageSpec, SyntheticImages};
use rpol_sim::gpu::{GpuModel, NoiseInjector};
use rpol_tensor::rng::Pcg32;

fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        .sqrt() as f32
}

struct EpochStats {
    max_repro: f32,
    min_spoof: f32,
    alpha: f32,
    beta: f32,
    lsh_fails_honest: usize,
    honest_total: usize,
    lsh_passes_spoof: usize,
    spoof_total: usize,
    beta_covers_honest: bool,
}

fn main() {
    let epochs = arg_usize("epochs", 4);
    let trials = arg_usize("trials", 8);
    let steps = arg_usize("steps", 30);

    let tasks: [(&str, ModelArch, ImageSpec); 4] = [
        (
            "mini-ResNet18 / CIFAR-10-like",
            ModelArch::MiniResNet18,
            ImageSpec::cifar10_like(),
        ),
        (
            "mini-ResNet18 / CIFAR-100-like",
            ModelArch::MiniResNet18,
            ImageSpec::cifar100_like(),
        ),
        (
            "mini-ResNet50 / CIFAR-10-like",
            ModelArch::MiniResNet50,
            ImageSpec::cifar10_like(),
        ),
        (
            "mini-ResNet50 / CIFAR-100-like",
            ModelArch::MiniResNet50,
            ImageSpec::cifar100_like(),
        ),
    ];

    for (label, arch, spec) in tasks {
        let mut cfg = TaskConfig::task_a();
        cfg.arch = arch;
        cfg.spec = spec;
        let mut rng = Pcg32::seed_from(0xF15);
        let data = SyntheticImages::generate(&cfg.spec, 400, &mut rng);
        let shards = data.shard(2);
        let (manager_shard, worker_shard) = (&shards[0], &shards[1]);
        let calibrator = Calibrator::new(
            &cfg,
            manager_shard,
            CalibrationPolicy::default(),
            GpuModel::top2(),
        );

        let mut global = cfg.build_model().flatten_params();
        let mut rows = Vec::new();
        for epoch in 0..epochs {
            let (cal, _) = calibrator.calibrate(&global, 0xCA ^ epoch as u64, steps, epoch as u64);
            let family = cal.family(global.len());
            let mut stats = EpochStats {
                max_repro: 0.0,
                min_spoof: f32::INFINITY,
                alpha: cal.alpha,
                beta: cal.beta,
                lsh_fails_honest: 0,
                honest_total: 0,
                lsh_passes_spoof: 0,
                spoof_total: 0,
                beta_covers_honest: true,
            };
            let mut next_global = global.clone();
            for trial in 0..trials {
                let seed = (epoch as u64) << 16 | trial as u64;
                // Honest worker on GA10.
                let mut model = cfg.build_model();
                model.load_params(&global);
                let mut worker = LocalTrainer::new(
                    &cfg,
                    worker_shard,
                    NoiseInjector::new(GpuModel::GA10, 0x10_000 ^ seed),
                );
                let nonce = 0x1F ^ seed;
                let trace = worker.run_epoch(&mut model, nonce, steps);
                if trial == 0 {
                    next_global = trace.final_weights().to_vec();
                }
                // Verification replays on G3090.
                let mut verify_model = cfg.build_model();
                let mut verifier = LocalTrainer::new(
                    &cfg,
                    worker_shard,
                    NoiseInjector::new(GpuModel::G3090, 0x20_000 ^ seed),
                );
                for (j, seg) in trace.segments.iter().enumerate() {
                    let replayed = verifier.replay_segment(
                        &mut verify_model,
                        &trace.checkpoints[j],
                        nonce,
                        *seg,
                    );
                    let dist = euclidean(&replayed, &trace.checkpoints[j + 1]);
                    stats.max_repro = stats.max_repro.max(dist);
                    stats.honest_total += 1;
                    if dist >= stats.beta {
                        stats.beta_covers_honest = false;
                    }
                    let committed = family.hash(&trace.checkpoints[j + 1]);
                    if !family.hash(&replayed).matches(&committed) {
                        stats.lsh_fails_honest += 1;
                    }
                }
                // Adversary: honest first third, Eq. 12 spoof for the rest.
                let honest_prefix = (trace.segments.len() / 3).max(1);
                let mut forged: Vec<Vec<f32>> = trace.checkpoints[..=honest_prefix].to_vec();
                for _ in honest_prefix..trace.segments.len() {
                    forged.push(spoof_next_checkpoint(&forged, 0.5));
                }
                for (j, seg) in trace.segments.iter().enumerate().skip(honest_prefix) {
                    let replayed =
                        verifier.replay_segment(&mut verify_model, &forged[j], nonce, *seg);
                    let dist = euclidean(&replayed, &forged[j + 1]);
                    stats.min_spoof = stats.min_spoof.min(dist);
                    stats.spoof_total += 1;
                    if family.hash(&replayed).matches(&family.hash(&forged[j + 1])) {
                        stats.lsh_passes_spoof += 1;
                    }
                }
            }
            global = next_global;

            rows.push(vec![
                (epoch + 1).to_string(),
                format!("{:.2e}", stats.max_repro),
                format!("{:.2e}", stats.min_spoof),
                format!("{:.2e}", stats.alpha),
                format!("{:.2e}", stats.beta),
                pct(stats.lsh_fails_honest as f64 / stats.honest_total as f64),
                pct(cal.expected_fnr()),
                pct(stats.lsh_passes_spoof as f64 / stats.spoof_total as f64),
                stats.beta_covers_honest.to_string(),
            ]);
        }
        print_table(
            &format!("Fig. 5 — {label} ({trials} trials/epoch)"),
            &[
                "epoch",
                "max repro error",
                "min spoof dist",
                "alpha",
                "beta",
                "FNR_lsh",
                "Eq.5 E[FNR]",
                "FPR_lsh",
                "β covers honest?",
            ],
            &rows,
        );
    }
    println!(
        "Expected shape: min spoof distance ≫ max reproduction error; \
         β always above honest errors (→ 0 end-to-end false negatives via \
         double-check); FNR_lsh and FPR_lsh below the theoretical 5%."
    );
}
