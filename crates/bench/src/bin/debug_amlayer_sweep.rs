//! Diagnostic: sweep AMLayer (c, depth) for the clean-accuracy gap vs
//! address-replacing attack drop trade-off.
//!
//! Usage: `cargo run --release -p rpol-bench --bin debug_amlayer_sweep`

use rpol::adversary::replace_amlayer;
use rpol::tasks::TaskConfig;
use rpol_bench::harness::{evaluate_flat, task_data, train_single, RunSpec};
use rpol_bench::print_table;
use rpol_crypto::Address;
use rpol_tensor::stats;

fn main() {
    let spec = RunSpec {
        epochs: 20,
        steps_per_epoch: 25,
        train_samples: 800,
        test_samples: 400,
        seed: 0x5EEE,
    };
    let owner = Address::from_seed(0xA1);
    let base = TaskConfig::task_a();
    let plain = train_single(&base, None, &spec);
    let mut rows = Vec::new();
    for (c, depth) in [
        (0.5f32, 1usize),
        (0.8, 1),
        (0.8, 2),
        (0.9, 2),
        (0.9, 3),
        (0.95, 3),
    ] {
        let mut cfg = base;
        cfg.lipschitz_c = c;
        cfg.amlayer_depth = depth;
        let encoded = train_single(&cfg, Some(&owner), &spec);
        let (_, tx, ty) = task_data(&cfg, &spec);
        let attacks: Vec<f32> = (0..6)
            .map(|i| {
                let thief = Address::from_seed(0xBAD0 + i);
                let forged = replace_amlayer(&cfg, &encoded.final_weights, &thief);
                evaluate_flat(&cfg, &forged, &tx, &ty)
            })
            .collect();
        rows.push(vec![
            format!("c={c}, depth={depth}"),
            format!("{:.1}%", plain.final_accuracy() * 100.0),
            format!("{:.1}%", encoded.final_accuracy() * 100.0),
            format!("{:.1}%", stats::mean(&attacks) * 100.0),
        ]);
    }
    print_table(
        "AMLayer (c, depth) sweep — clean parity vs attack collapse",
        &["config", "origin acc", "AMLayer acc", "attack acc"],
        &rows,
    );
}
