//! Ablation studies for RPoL's design knobs (DESIGN.md §6 calls these
//! out): the sampling count `q`, the checkpoint interval `i`, the LSH
//! budget `K_lsh`, and the double-check fallback.
//!
//! Usage: `cargo run --release -p rpol-bench --bin ablation_sweeps [--trials=6]`

use rpol::adversary::spoof_next_checkpoint;
use rpol::calibrate::{CalibrationPolicy, Calibrator};
use rpol::sampling::evasion_probability;
use rpol::tasks::TaskConfig;
use rpol::trainer::LocalTrainer;
use rpol_bench::{arg_usize, pct, print_table};
use rpol_lsh::tuning::{tune, TuningConfig};
use rpol_nn::data::SyntheticImages;
use rpol_sim::gpu::{GpuModel, NoiseInjector};
use rpol_tensor::rng::Pcg32;
use rpol_tensor::stats;

fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        .sqrt() as f32
}

/// Sweep 1: evasion probability vs sample count `q` for a worker that
/// spoofs two of three segments (h_A = 1/3), measured empirically against
/// the Theorem 2 bound.
fn sweep_q(trials: usize) {
    let cfg = TaskConfig::task_a();
    let steps = 15; // 3 segments
    let mut rng = Pcg32::seed_from(0xAB1);
    let data = SyntheticImages::generate(&cfg.spec, 400, &mut rng);
    let shards = data.shard(2);
    let calibrator = Calibrator::new(
        &cfg,
        &shards[0],
        CalibrationPolicy::default(),
        GpuModel::top2(),
    );
    let global = cfg.build_model().flatten_params();
    let (cal, _) = calibrator.calibrate(&global, 0xC0, steps, 0);

    let mut rows = Vec::new();
    for q in 1..=3usize {
        let mut evasions = 0;
        for trial in 0..trials {
            // The adversary trains segment 0 honestly, spoofs 1 and 2.
            let mut model = cfg.build_model();
            model.load_params(&global);
            let mut trainer = LocalTrainer::new(
                &cfg,
                &shards[1],
                NoiseInjector::new(GpuModel::GA10, 0x5000 + trial as u64),
            );
            let nonce = 0x77 + trial as u64;
            let trace = trainer.run_epoch(&mut model, nonce, steps);
            let mut forged = trace.checkpoints[..=1].to_vec();
            for _ in 1..trace.segments.len() {
                forged.push(spoof_next_checkpoint(&forged, 0.5));
            }
            // Sample q segments at random; evasion = all sampled honest.
            let mut sampler = Pcg32::seed_from(0x9999 + (q * 100 + trial) as u64);
            let mut indices: Vec<usize> = (0..trace.segments.len()).collect();
            sampler.shuffle(&mut indices);
            let sampled = &indices[..q];
            let mut verify_model = cfg.build_model();
            let mut verifier = LocalTrainer::new(
                &cfg,
                &shards[1],
                NoiseInjector::new(GpuModel::G3090, 0x6000 + trial as u64),
            );
            let caught = sampled.iter().any(|&j| {
                let replayed = verifier.replay_segment(
                    &mut verify_model,
                    &forged[j],
                    nonce,
                    trace.segments[j],
                );
                euclidean(&replayed, &forged[j + 1]) >= cal.beta
            });
            if !caught {
                evasions += 1;
            }
        }
        let empirical = evasions as f64 / trials as f64;
        // h_A = 1/3 honest segments; FPR ≈ 0 for distance checks.
        let theory = evasion_probability(q as u32, 1.0 / 3.0, 0.0);
        rows.push(vec![q.to_string(), pct(empirical), pct(theory)]);
    }
    print_table(
        "Ablation — evasion rate vs sampled checkpoints q (adversary honest on 1/3)",
        &["q", "measured evasion", "Theorem 2 bound"],
        &rows,
    );
}

/// Sweep 2: reproduction error and per-epoch storage vs checkpoint
/// interval.
fn sweep_interval() {
    let base = TaskConfig::task_a();
    let mut rng = Pcg32::seed_from(0xAB2);
    let data = SyntheticImages::generate(&base.spec, 200, &mut rng);
    let mut rows = Vec::new();
    for interval in [2usize, 5, 10] {
        let mut cfg = base;
        cfg.checkpoint_interval = interval;
        let mut model = cfg.build_model();
        let mut trainer = LocalTrainer::new(&cfg, &data, NoiseInjector::new(GpuModel::GA10, 0x42));
        let trace = trainer.run_epoch(&mut model, 0x13, 20);
        let mut verify_model = cfg.build_model();
        let mut verifier =
            LocalTrainer::new(&cfg, &data, NoiseInjector::new(GpuModel::G3090, 0x43));
        let dists: Vec<f32> = trace
            .segments
            .iter()
            .enumerate()
            .map(|(j, seg)| {
                let replayed =
                    verifier.replay_segment(&mut verify_model, &trace.checkpoints[j], 0x13, *seg);
                euclidean(&replayed, &trace.checkpoints[j + 1])
            })
            .collect();
        let storage = trace.checkpoints.len() * trace.checkpoints[0].len() * 4;
        rows.push(vec![
            interval.to_string(),
            format!("{:.2e}", stats::mean(&dists)),
            format!("{}", trace.checkpoints.len()),
            format!("{:.1} KB", storage as f64 / 1e3),
        ]);
    }
    print_table(
        "Ablation — checkpoint interval: error grows, storage shrinks",
        &[
            "interval",
            "mean repro error",
            "checkpoints",
            "storage/epoch",
        ],
        &rows,
    );
}

/// Sweep 3: LSH operating point vs compute budget `K_lsh`.
fn sweep_klsh() {
    let mut rows = Vec::new();
    for budget in [2usize, 4, 8, 16, 32, 64] {
        let out = tune(&TuningConfig::new(1.0, 5.0).with_budget(budget));
        rows.push(vec![
            budget.to_string(),
            format!(
                "r={:.2}, k={}, l={}",
                out.params.r, out.params.k, out.params.l
            ),
            format!("{:.3}", out.pr_alpha),
            format!("{:.3}", out.pr_beta),
        ]);
    }
    print_table(
        "Ablation — LSH budget K_lsh vs achievable operating point (α=1, β=5)",
        &["K_lsh", "optimal params", "Pr_lsh(α) ↑", "Pr_lsh(β) ↓"],
        &rows,
    );
}

/// Sweep 4: the double-check fallback — how many honest checkpoints the
/// bare LSH match would reject, all of which the fallback rescues.
fn sweep_double_check(trials: usize) {
    let cfg = TaskConfig::task_a();
    let steps = 15;
    let mut rng = Pcg32::seed_from(0xAB4);
    let data = SyntheticImages::generate(&cfg.spec, 400, &mut rng);
    let shards = data.shard(2);
    let calibrator = Calibrator::new(
        &cfg,
        &shards[0],
        CalibrationPolicy::default(),
        GpuModel::top2(),
    );
    let global = cfg.build_model().flatten_params();
    let (cal, _) = calibrator.calibrate(&global, 0xD0, steps, 0);
    let dim = global.len();
    let family = cal.family(dim);

    let mut lsh_fails = 0;
    let mut distance_fails = 0;
    let mut total = 0;
    for trial in 0..trials {
        let mut model = cfg.build_model();
        model.load_params(&global);
        let mut trainer = LocalTrainer::new(
            &cfg,
            &shards[1],
            NoiseInjector::new(GpuModel::GA10, 0x7000 + trial as u64),
        );
        let nonce = 0x88 + trial as u64;
        let trace = trainer.run_epoch(&mut model, nonce, steps);
        let mut verify_model = cfg.build_model();
        let mut verifier = LocalTrainer::new(
            &cfg,
            &shards[1],
            NoiseInjector::new(GpuModel::G3090, 0x8000 + trial as u64),
        );
        for (j, seg) in trace.segments.iter().enumerate() {
            let replayed =
                verifier.replay_segment(&mut verify_model, &trace.checkpoints[j], nonce, *seg);
            total += 1;
            if !family
                .hash(&replayed)
                .matches(&family.hash(&trace.checkpoints[j + 1]))
            {
                lsh_fails += 1;
                // The fallback: raw distance against β.
                if euclidean(&replayed, &trace.checkpoints[j + 1]) >= cal.beta {
                    distance_fails += 1;
                }
            }
        }
    }
    print_table(
        "Ablation — double-check fallback on honest checkpoints",
        &["quantity", "value"],
        &[
            vec!["honest checkpoints verified".into(), total.to_string()],
            vec![
                "LSH-only rejections (would-be FNs)".into(),
                format!("{lsh_fails} ({})", pct(lsh_fails as f64 / total as f64)),
            ],
            vec![
                "rejections after double-check".into(),
                format!(
                    "{distance_fails} ({})",
                    pct(distance_fails as f64 / total as f64)
                ),
            ],
        ],
    );
    println!("without the double-check, every LSH false negative would cost an honest worker its epoch reward.");
}

fn main() {
    let trials = arg_usize("trials", 6);
    sweep_q(trials);
    sweep_interval();
    sweep_klsh();
    sweep_double_check(trials * 3);
}
