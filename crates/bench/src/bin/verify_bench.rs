//! Verification data-plane benchmark emitting `BENCH_verify.json`.
//!
//! Times the three vectorized stages of the commit/verify path against
//! their retained scalar oracles:
//!
//! * **checkpoint commitment hashing** — per-checkpoint `sha256_f32` vs
//!   the multi-lane `sha256_f32_batch` used by `EpochCommitment::commit_v1`;
//! * **LSH digest computation** — per-checkpoint `hash_scalar` +
//!   `group_digests` vs the GEMM-lowered `hash_batch` +
//!   `group_digests_batch` used by `LshCommitment::commit`;
//! * **end-to-end sampled replay** — `Verifier::verify_samples` on the
//!   tiny task, the latency a manager pays per worker per epoch.
//!
//! Every vectorized result is asserted bitwise-equal to its scalar oracle
//! before being timed — a benchmark of a wrong kernel is worthless here.
//!
//! `BENCH_SMOKE=1` shrinks shapes and timing budgets for the CI
//! regression gate (`scripts/check_bench.sh`); the committed baseline is
//! produced by a full run (`scripts/bench_verify.sh`).
//!
//! Usage: `cargo run --release -p rpol-bench --bin verify_bench [out.json]`

use rpol::commitment::EpochCommitment;
use rpol::tasks::TaskConfig;
use rpol::trainer::LocalTrainer;
use rpol::verify::{ProofProvider, ProofUnavailable, Verifier, WorkerVerdict};
use rpol::wire;
use rpol_crypto::bytes::bf16_as_le_bytes;
use rpol_crypto::sha256::{sha256, sha256_f32, Digest};
use rpol_crypto::{sha256_bf16_batch, sha256_f32_batch};
use rpol_exec::Executor;
use rpol_lsh::{LshFamily, LshParams, Signature};
use rpol_nn::data::SyntheticImages;
use rpol_sim::gpu::{GpuModel, NoiseInjector};
use rpol_tensor::gemm;
use rpol_tensor::rng::Pcg32;
use std::hint::black_box;
use std::time::Instant;

/// Median-of-`samples` timing, each sample adaptively sized to run at
/// least `min_ms` milliseconds.
fn time_ns_cfg(min_ms: u128, samples: usize, mut f: impl FnMut()) -> f64 {
    let mut iters = 1u64;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        if t0.elapsed().as_millis() >= min_ms {
            break;
        }
        iters *= 2;
    }
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

struct Record {
    op: &'static str,
    shape: String,
    ns_per_iter: f64,
    mb_per_s: f64,
    speedup_vs_scalar: f64,
}

struct VecProvider(Vec<Vec<f32>>);

impl ProofProvider for VecProvider {
    fn open_checkpoint(
        &self,
        index: usize,
    ) -> Result<std::borrow::Cow<'_, [f32]>, ProofUnavailable> {
        Ok(std::borrow::Cow::Borrowed(&self.0[index]))
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_verify.json".to_string());
    let smoke = std::env::var("BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false);
    // Smoke keeps the same memory-bound regime (projection matrix well
    // past L2) at a fraction of the wall-clock.
    let (dim, m, min_ms, samples) = if smoke {
        (64_000usize, 8usize, 5u128, 3usize)
    } else {
        (100_000usize, 16usize, 50u128, 5usize)
    };
    let time_ns = |f: &mut dyn FnMut()| time_ns_cfg(min_ms, samples, f);
    let mut records: Vec<Record> = Vec::new();
    let shape = format!("{m}x{dim}");
    let bytes = (m * dim * 4) as f64;

    let mut rng = Pcg32::seed_from(42);
    let checkpoints: Vec<Vec<f32>> = (0..m)
        .map(|_| (0..dim).map(|_| rng.next_normal() * 0.05).collect())
        .collect();
    let refs: Vec<&[f32]> = checkpoints.iter().map(|w| w.as_slice()).collect();

    // --- Checkpoint commitment hashing: scalar oracle vs batch lanes. ---
    let scalar_digests: Vec<Digest> = refs.iter().map(|w| sha256_f32(w)).collect();
    assert_eq!(
        scalar_digests,
        sha256_f32_batch(&refs),
        "batch hasher diverged from the scalar oracle"
    );
    let hash_scalar_ns = time_ns(&mut || {
        black_box(
            black_box(&refs)
                .iter()
                .map(|w| sha256_f32(w))
                .collect::<Vec<Digest>>(),
        );
    });
    records.push(Record {
        op: "commit_hash_scalar",
        shape: shape.clone(),
        ns_per_iter: hash_scalar_ns,
        mb_per_s: bytes * 1000.0 / hash_scalar_ns,
        speedup_vs_scalar: 1.0,
    });
    let hash_batch_ns = time_ns(&mut || {
        black_box(sha256_f32_batch(black_box(&refs)));
    });
    records.push(Record {
        op: "commit_hash_batch",
        shape: shape.clone(),
        ns_per_iter: hash_batch_ns,
        mb_per_s: bytes * 1000.0 / hash_batch_ns,
        speedup_vs_scalar: hash_scalar_ns / hash_batch_ns,
    });

    // --- Quantized commitment hashing (RPoLv3): the packed bf16 image
    // halves the bytes SHA-256 has to move per checkpoint. Throughput is
    // still reported in committed *model* bytes (f32), so the record is
    // directly comparable to the full-precision rows above: same work
    // accounted, fewer bytes hashed. Oracle: scalar SHA-256 over the same
    // packed image.
    let quant_oracle: Vec<Digest> = refs.iter().map(|w| sha256(&bf16_as_le_bytes(w))).collect();
    assert_eq!(
        quant_oracle,
        sha256_bf16_batch(&refs),
        "quantized batch hasher diverged from the scalar packed-image oracle"
    );
    let hash_quant_ns = time_ns(&mut || {
        black_box(sha256_bf16_batch(black_box(&refs)));
    });
    records.push(Record {
        op: "commit_hash_quant",
        shape: shape.clone(),
        ns_per_iter: hash_quant_ns,
        mb_per_s: bytes * 1000.0 / hash_quant_ns,
        speedup_vs_scalar: hash_scalar_ns / hash_quant_ns,
    });

    // --- LSH digests: scalar chain vs GEMM lowering + batched SHA. ---
    let family = LshFamily::generate(dim, LshParams::new(4.0, 4, 8), 7);
    let scalar_sigs: Vec<Signature> = refs.iter().map(|w| family.hash_scalar(w)).collect();
    let scalar_entries: Vec<Vec<Digest>> = scalar_sigs.iter().map(|s| s.group_digests()).collect();
    for threads in [1, gemm::default_threads()] {
        let sigs = family.hash_batch_threads(&refs, threads);
        assert_eq!(sigs, scalar_sigs, "GEMM lowering diverged at {threads}t");
        assert_eq!(
            Signature::group_digests_batch(&sigs),
            scalar_entries,
            "batched group digests diverged"
        );
    }
    let lsh_scalar_ns = time_ns(&mut || {
        black_box(
            black_box(&refs)
                .iter()
                .map(|w| family.hash_scalar(w).group_digests())
                .collect::<Vec<Vec<Digest>>>(),
        );
    });
    records.push(Record {
        op: "lsh_digest_scalar",
        shape: shape.clone(),
        ns_per_iter: lsh_scalar_ns,
        mb_per_s: bytes * 1000.0 / lsh_scalar_ns,
        speedup_vs_scalar: 1.0,
    });
    let lsh_1t_ns = time_ns(&mut || {
        let sigs = family.hash_batch_threads(black_box(&refs), 1);
        black_box(Signature::group_digests_batch(&sigs));
    });
    records.push(Record {
        op: "lsh_digest_gemm_1t",
        shape: shape.clone(),
        ns_per_iter: lsh_1t_ns,
        mb_per_s: bytes * 1000.0 / lsh_1t_ns,
        speedup_vs_scalar: lsh_scalar_ns / lsh_1t_ns,
    });
    let threads = gemm::default_threads();
    if threads > 1 {
        let lsh_mt_ns = time_ns(&mut || {
            let sigs = family.hash_batch(black_box(&refs));
            black_box(Signature::group_digests_batch(&sigs));
        });
        records.push(Record {
            op: "lsh_digest_gemm_mt",
            shape: shape.clone(),
            ns_per_iter: lsh_mt_ns,
            mb_per_s: bytes * 1000.0 / lsh_mt_ns,
            speedup_vs_scalar: lsh_scalar_ns / lsh_mt_ns,
        });
    }

    // --- Packed wire framing (RPoLv3): payload bytes of one epoch
    // submission (final weights + commitment) vs the raw f32 framing the
    // transport's `bytes_saved` counter measures against. The packed frame
    // must round-trip bit-for-bit before its size or encode rate counts.
    // `speedup_vs_scalar` carries the raw/packed *size* ratio — the wire
    // compression factor the regression gate checks (1.67x ≙ 40% fewer
    // payload bytes).
    let lattice: Vec<Vec<f32>> = checkpoints
        .iter()
        .map(|w| rpol_tensor::quant::bf16_image(w))
        .collect();
    let v3_commit = EpochCommitment::commit_v3(&lattice, &family);
    let final_w = lattice.last().expect("checkpoints nonempty");
    let packed_frame = wire::encode_submission(final_w, Some(&v3_commit));
    let (decoded_w, decoded_c) =
        wire::decode_submission(packed_frame.clone()).expect("packed frame must decode");
    assert_eq!(
        decoded_w.iter().map(|w| w.to_bits()).collect::<Vec<u32>>(),
        final_w.iter().map(|w| w.to_bits()).collect::<Vec<u32>>(),
        "packed submission weights diverged after round-trip"
    );
    assert_eq!(
        decoded_c.as_ref(),
        Some(&v3_commit),
        "packed submission commitment diverged after round-trip"
    );
    let raw_size = wire::submission_raw_wire_size(final_w.len(), Some(&v3_commit));
    assert!(
        packed_frame.len() < raw_size,
        "packed frame ({}) not smaller than raw framing ({})",
        packed_frame.len(),
        raw_size
    );
    let wire_ns = time_ns(&mut || {
        black_box(wire::encode_submission(
            black_box(final_w),
            Some(black_box(&v3_commit)),
        ));
    });
    records.push(Record {
        op: "wire_submission_packed",
        shape: format!("{dim}w+{m}cp"),
        ns_per_iter: wire_ns,
        mb_per_s: raw_size as f64 * 1000.0 / wire_ns,
        speedup_vs_scalar: raw_size as f64 / packed_frame.len() as f64,
    });

    // --- End-to-end sampled replay on the tiny task (RPoLv2). ---
    let cfg = TaskConfig::tiny();
    let data = SyntheticImages::generate(&cfg.spec, 64, &mut Pcg32::seed_from(1));
    let mut model = cfg.build_model();
    let mut trainer = LocalTrainer::new(&cfg, &data, NoiseInjector::new(GpuModel::GA10, 11));
    let trace = trainer.run_epoch(&mut model, 5, 6);
    let model_dim = trace.checkpoints[0].len();
    let e2e_family = LshFamily::generate(model_dim, LshParams::new(4.0, 4, 4), 7);
    let commitment = EpochCommitment::commit_v2(&trace.checkpoints, &e2e_family);
    let provider = VecProvider(trace.checkpoints.clone());
    let e2e_samples: &[usize] = if smoke { &[0] } else { &[0, 1, 2] };
    let mut verifier = Verifier::new(
        &cfg,
        &data,
        5,
        0.5,
        Some(&e2e_family),
        NoiseInjector::new(GpuModel::G3090, 42),
    );
    let verdict = verifier.verify_samples(
        &mut model,
        &commitment,
        &trace.segments,
        e2e_samples,
        &provider,
    );
    assert!(
        verdict.all_accepted(),
        "honest e2e replay rejected: {:?}",
        verdict.outcomes
    );
    let e2e_ns = time_ns(&mut || {
        black_box(verifier.verify_samples(
            &mut model,
            &commitment,
            &trace.segments,
            black_box(e2e_samples),
            &provider,
        ));
    });
    records.push(Record {
        op: "verify_samples_e2e_v2",
        shape: format!("{}samples x {}w", e2e_samples.len(), model_dim),
        ns_per_iter: e2e_ns,
        mb_per_s: (e2e_samples.len() * model_dim * 4) as f64 * 1000.0 / e2e_ns,
        speedup_vs_scalar: 1.0,
    });

    // --- Threaded e2e: the same samples fanned out per-segment on the
    // persistent executor (the manager's overlapped scheduling unit), one
    // verifier lane per sample, merged in index order. Asserted equal to
    // the batch verdict before timing. On a single hardware thread this
    // mostly measures scheduling overhead; with cores it measures the
    // per-worker verification latency the pool actually pays.
    let exec = Executor::new(Executor::default_threads());
    let lanes: Vec<std::sync::Mutex<(Verifier, rpol_nn::model::Sequential)>> = e2e_samples
        .iter()
        .map(|_| {
            std::sync::Mutex::new((
                Verifier::new(
                    &cfg,
                    &data,
                    5,
                    0.5,
                    Some(&e2e_family),
                    NoiseInjector::new(GpuModel::G3090, 42),
                ),
                cfg.build_model(),
            ))
        })
        .collect();
    let verify_mt = || {
        let verdicts = exec.run_indexed(e2e_samples.len(), |i| {
            let mut lane = lanes[i].lock().unwrap();
            let (v, m) = &mut *lane;
            v.verify_sample(m, &commitment, &trace.segments, e2e_samples[i], &provider)
        });
        WorkerVerdict::from_samples(verdicts)
    };
    assert_eq!(
        verify_mt(),
        verdict,
        "per-sample executor fan-out diverged from the batch verdict"
    );
    let e2e_mt_ns = time_ns(&mut || {
        black_box(verify_mt());
    });
    records.push(Record {
        op: "verify_samples_e2e_mt",
        shape: format!(
            "{}samples x {}w x {}t",
            e2e_samples.len(),
            model_dim,
            exec.threads()
        ),
        ns_per_iter: e2e_mt_ns,
        mb_per_s: (e2e_samples.len() * model_dim * 4) as f64 * 1000.0 / e2e_mt_ns,
        speedup_vs_scalar: e2e_ns / e2e_mt_ns,
    });

    // --- End-to-end sampled replay under RPoLv3: the same manager-side
    // latency with a quantized (bf16-lattice) trajectory and a quantized
    // commitment. `speedup_vs_scalar` compares against the v2 e2e row —
    // the quantized scheme must not make per-worker verification slower.
    let mut q_model = cfg.build_model();
    let mut q_trainer = LocalTrainer::new(&cfg, &data, NoiseInjector::new(GpuModel::GA10, 11));
    let q_trace = q_trainer.run_epoch_quantized(&mut q_model, 5, 6);
    let q_commitment = EpochCommitment::commit_v3(&q_trace.checkpoints, &e2e_family);
    let q_provider = VecProvider(q_trace.checkpoints.clone());
    let mut q_verifier = Verifier::new(
        &cfg,
        &data,
        5,
        0.5,
        Some(&e2e_family),
        NoiseInjector::new(GpuModel::G3090, 42),
    );
    let mut q_replay = cfg.build_model();
    let q_verdict = q_verifier.verify_samples(
        &mut q_replay,
        &q_commitment,
        &q_trace.segments,
        e2e_samples,
        &q_provider,
    );
    assert!(
        q_verdict.all_accepted(),
        "honest v3 e2e replay rejected: {:?}",
        q_verdict.outcomes
    );
    let e2e_v3_ns = time_ns(&mut || {
        black_box(q_verifier.verify_samples(
            &mut q_replay,
            &q_commitment,
            &q_trace.segments,
            black_box(e2e_samples),
            &q_provider,
        ));
    });
    records.push(Record {
        op: "verify_samples_e2e_v3",
        shape: format!("{}samples x {}w", e2e_samples.len(), model_dim),
        ns_per_iter: e2e_v3_ns,
        mb_per_s: (e2e_samples.len() * model_dim * 4) as f64 * 1000.0 / e2e_v3_ns,
        speedup_vs_scalar: e2e_ns / e2e_v3_ns,
    });

    let mut json = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"op\": \"{}\", \"shape\": \"{}\", \"ns_per_iter\": {:.1}, \"mb_per_s\": {:.1}, \"speedup_vs_scalar\": {:.2}}}{}\n",
            r.op,
            r.shape,
            r.ns_per_iter,
            r.mb_per_s,
            r.speedup_vs_scalar,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    std::fs::write(&out_path, &json).expect("write benchmark output");

    for r in &records {
        println!(
            "{:<22} {:>16} {:>16.1} ns/iter {:>9.1} MB/s {:>6.2}x",
            r.op, r.shape, r.ns_per_iter, r.mb_per_s, r.speedup_vs_scalar
        );
    }
    println!("wrote {out_path}");
}
