//! Standalone GEMM benchmark emitting `BENCH_gemm.json`.
//!
//! Times the retained naive reference kernel against the blocked backend
//! (single-threaded, and multi-threaded when the host has cores to use) on
//! the two anchor shapes, and records ns/iter, GFLOP/s and the speedup of
//! each kernel over the naive baseline for the same shape. The blocked
//! results are asserted bitwise-equal to the naive ones before being
//! reported — a benchmark of a wrong kernel is worthless here.
//!
//! Usage: `cargo run --release -p rpol-bench --bin gemm_bench [out.json]`

use rpol_tensor::gemm::{self, Trans};
use rpol_tensor::rng::Pcg32;
use std::hint::black_box;
use std::time::Instant;

const SHAPES: &[(usize, usize, usize)] = &[(64, 784, 128), (256, 256, 256)];

/// Median-of-5 timing, each sample adaptively sized to run ≥50 ms.
fn time_ns(mut f: impl FnMut()) -> f64 {
    let mut iters = 1u64;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        if t0.elapsed().as_millis() >= 50 {
            break;
        }
        iters *= 2;
    }
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[2]
}

struct Record {
    op: &'static str,
    shape: (usize, usize, usize),
    ns_per_iter: f64,
    gflops: f64,
    speedup_vs_naive: f64,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_gemm.json".to_string());
    let mut rng = Pcg32::seed_from(42);
    let mut records: Vec<Record> = Vec::new();

    for &(m, n, k) in SHAPES {
        let a: Vec<f32> = (0..m * k).map(|_| rng.next_normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.next_normal()).collect();
        let flops = 2.0 * m as f64 * n as f64 * k as f64;

        let reference = gemm::matmul_naive(m, n, k, &a, &b);
        let blocked = gemm::matmul(m, n, k, &a, Trans::No, &b, Trans::No, 1);
        assert_eq!(
            reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            blocked.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "blocked kernel diverged from reference at {m}x{n}x{k}"
        );

        let naive_ns = time_ns(|| {
            black_box(gemm::matmul_naive(m, n, k, black_box(&a), black_box(&b)));
        });
        records.push(Record {
            op: "matmul_naive",
            shape: (m, n, k),
            ns_per_iter: naive_ns,
            gflops: flops / naive_ns,
            speedup_vs_naive: 1.0,
        });

        let blocked_ns = time_ns(|| {
            black_box(gemm::matmul(
                m,
                n,
                k,
                black_box(&a),
                Trans::No,
                black_box(&b),
                Trans::No,
                1,
            ));
        });
        records.push(Record {
            op: "matmul_blocked_1t",
            shape: (m, n, k),
            ns_per_iter: blocked_ns,
            gflops: flops / blocked_ns,
            speedup_vs_naive: naive_ns / blocked_ns,
        });

        let threads = gemm::default_threads();
        if threads > 1 {
            let multi_ns = time_ns(|| {
                black_box(gemm::matmul(
                    m,
                    n,
                    k,
                    black_box(&a),
                    Trans::No,
                    black_box(&b),
                    Trans::No,
                    threads,
                ));
            });
            records.push(Record {
                op: "matmul_blocked_mt",
                shape: (m, n, k),
                ns_per_iter: multi_ns,
                gflops: flops / multi_ns,
                speedup_vs_naive: naive_ns / multi_ns,
            });
        }
    }

    let mut json = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let (m, n, k) = r.shape;
        json.push_str(&format!(
            "  {{\"op\": \"{}\", \"shape\": \"{}x{}x{}\", \"ns_per_iter\": {:.1}, \"gflops\": {:.3}, \"speedup_vs_naive\": {:.2}}}{}\n",
            r.op,
            m,
            n,
            k,
            r.ns_per_iter,
            r.gflops,
            r.speedup_vs_naive,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    std::fs::write(&out_path, &json).expect("write benchmark output");

    for r in &records {
        let (m, n, k) = r.shape;
        println!(
            "{:<20} {:>13} {:>14.1} ns/iter {:>8.3} GFLOP/s {:>6.2}x",
            r.op,
            format!("{m}x{n}x{k}"),
            r.ns_per_iter,
            r.gflops,
            r.speedup_vs_naive
        );
    }
    println!("wrote {out_path}");
}
