//! Fig. 6 regenerator: global-model test accuracy under attack, with and
//! without verification, as the adversary fraction grows from 10% to 90%.
//!
//! Four settings per task, as in the paper:
//!
//! * `BL_Adv1` — no verification, Adv1 (replay) adversaries aggregated,
//! * `BL_Adv2` — no verification, Adv2 (10% training + Eq. 12 spoof),
//! * `RPoLv1`  — sampled raw-weight verification (Adv1 + Adv2 mixed in),
//! * `RPoLv2`  — LSH verification (same adversaries).
//!
//! Expected shape (paper): both RPoL variants dominate the baselines at
//! every adversary fraction, the gap grows with the fraction, and
//! RPoLv1 ≡ RPoLv2 in accuracy.
//!
//! Results are averaged over `--reps` independent pool seeds to damp
//! run-to-run training noise.
//!
//! Usage: `cargo run --release -p rpol-bench --bin fig6_attacks \
//!         [--epochs=8] [--workers=10] [--reps=3] [--taskb=0]`

use rpol::adversary::WorkerBehavior;
use rpol::pool::{MiningPool, PoolConfig, Scheme};
use rpol::tasks::TaskConfig;
use rpol_bench::{arg_usize, pct, print_table};

fn behaviors(n: usize, adversaries: usize, adv: WorkerBehavior) -> Vec<WorkerBehavior> {
    (0..n)
        .map(|i| {
            if i < adversaries {
                adv
            } else {
                WorkerBehavior::Honest
            }
        })
        .collect()
}

fn run(
    task: TaskConfig,
    scheme: Scheme,
    behaviors: Vec<WorkerBehavior>,
    epochs: usize,
    reps: usize,
) -> f32 {
    let mut total = 0.0;
    for rep in 0..reps {
        let mut cfg = PoolConfig::paper_like(task, scheme, epochs);
        cfg.steps_per_epoch = 25; // 5 segments: Adv2 trains 1, fakes 4
        cfg.train_samples = 160 * (behaviors.len() + 1);
        cfg.seed ^= (rep as u64) << 32;
        let mut pool = MiningPool::new(cfg, behaviors.clone());
        total += pool.run_parallel().final_accuracy();
    }
    total / reps as f32
}

fn main() {
    let epochs = arg_usize("epochs", 8);
    let workers = arg_usize("workers", 10);
    let reps = arg_usize("reps", 3);
    let include_task_b = arg_usize("taskb", 0) != 0;

    let mut tasks = vec![("Task A (mini-ResNet18/CIFAR-10-like)", TaskConfig::task_a())];
    if include_task_b {
        tasks.push((
            "Task B (mini-ResNet50/CIFAR-100-like)",
            TaskConfig::task_b(),
        ));
    }

    let adv2 = WorkerBehavior::adv2_default();
    for (label, task) in tasks {
        let mut rows = Vec::new();
        for tenths in [1usize, 3, 5, 7, 9] {
            let adversaries = (workers * tenths).div_ceil(10);
            let bl1 = run(
                task,
                Scheme::Baseline,
                behaviors(workers, adversaries, WorkerBehavior::ReplayPrevious),
                epochs,
                reps,
            );
            let bl2 = run(
                task,
                Scheme::Baseline,
                behaviors(workers, adversaries, adv2),
                epochs,
                reps,
            );
            // RPoL pools face the harder Adv2 mixture (paper uses both; the
            // verified result is the same — detected workers are dropped).
            let v1 = run(
                task,
                Scheme::RPoLv1,
                behaviors(workers, adversaries, adv2),
                epochs,
                reps,
            );
            let v2 = run(
                task,
                Scheme::RPoLv2,
                behaviors(workers, adversaries, adv2),
                epochs,
                reps,
            );
            rows.push(vec![
                pct(adversaries as f64 / workers as f64),
                pct(bl1 as f64),
                pct(bl2 as f64),
                pct(v1 as f64),
                pct(v2 as f64),
                (v1.min(v2) >= bl1.max(bl2)).to_string(),
            ]);
        }
        print_table(
            &format!("Fig. 6 — {label}, final accuracy after {epochs} epochs, {workers} workers"),
            &[
                "adversaries",
                "BL_Adv1",
                "BL_Adv2",
                "RPoLv1",
                "RPoLv2",
                "RPoL wins?",
            ],
            &rows,
        );
    }
    println!(
        "Expected shape: RPoLv1/RPoLv2 ≥ baselines everywhere, growing gap \
         with adversary fraction, v1 ≈ v2."
    );
}
