//! Criterion benchmarks for the blocked GEMM backend.
//!
//! Two shapes anchor the comparison: `64×784×128` (the Dense layer shape
//! from the mini-VGG classifier head at batch 64) and `256×256×256` (the
//! square shape the issue's ≥3× speedup acceptance bar is measured on).
//! Each is run through the retained naive reference kernel, the blocked
//! kernel single-threaded, and the fused-transpose variants.

use criterion::{criterion_group, criterion_main, Criterion};
use rpol_tensor::gemm::{self, Trans};
use rpol_tensor::rng::Pcg32;
use std::hint::black_box;

const SHAPES: &[(usize, usize, usize)] = &[(64, 784, 128), (256, 256, 256)];

fn randn(len: usize, rng: &mut Pcg32) -> Vec<f32> {
    (0..len).map(|_| rng.next_normal()).collect()
}

fn bench_gemm(c: &mut Criterion) {
    let mut rng = Pcg32::seed_from(7);
    for &(m, n, k) in SHAPES {
        let a = randn(m * k, &mut rng);
        let b = randn(k * n, &mut rng);
        let bt = {
            // B stored [n, k] for the NT variant.
            let mut t = vec![0.0f32; n * k];
            for p in 0..k {
                for j in 0..n {
                    t[j * k + p] = b[p * n + j];
                }
            }
            t
        };
        c.bench_function(&format!("gemm_naive_{m}x{n}x{k}"), |bch| {
            bch.iter(|| gemm::matmul_naive(m, n, k, black_box(&a), black_box(&b)))
        });
        c.bench_function(&format!("gemm_blocked_{m}x{n}x{k}"), |bch| {
            bch.iter(|| {
                gemm::matmul(
                    m,
                    n,
                    k,
                    black_box(&a),
                    Trans::No,
                    black_box(&b),
                    Trans::No,
                    1,
                )
            })
        });
        c.bench_function(&format!("gemm_blocked_nt_{m}x{n}x{k}"), |bch| {
            bch.iter(|| {
                gemm::matmul(
                    m,
                    n,
                    k,
                    black_box(&a),
                    Trans::No,
                    black_box(&bt),
                    Trans::Yes,
                    1,
                )
            })
        });
    }
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
