//! Criterion benchmarks for the verification data plane.
//!
//! Finer-grained companions to `verify_bench` (which emits the
//! `BENCH_verify.json` acceptance artifact): checkpoint commitment
//! hashing scalar vs batch, LSH digests scalar vs GEMM-lowered, and the
//! end-to-end `verify_samples` replay on the tiny task. Shapes are scaled
//! down from the standalone binary so `cargo bench` stays interactive.

use criterion::{criterion_group, criterion_main, Criterion};
use rpol::commitment::EpochCommitment;
use rpol::tasks::TaskConfig;
use rpol::trainer::LocalTrainer;
use rpol::verify::{ProofProvider, ProofUnavailable, Verifier};
use rpol_crypto::sha256::{sha256_f32, Digest};
use rpol_crypto::sha256_f32_batch;
use rpol_lsh::{LshFamily, LshParams, Signature};
use rpol_nn::data::SyntheticImages;
use rpol_sim::gpu::{GpuModel, NoiseInjector};
use rpol_tensor::rng::Pcg32;
use std::hint::black_box;

const DIM: usize = 16_384;
const CHECKPOINTS: usize = 8;

struct VecProvider(Vec<Vec<f32>>);

impl ProofProvider for VecProvider {
    fn open_checkpoint(
        &self,
        index: usize,
    ) -> Result<std::borrow::Cow<'_, [f32]>, ProofUnavailable> {
        Ok(std::borrow::Cow::Borrowed(&self.0[index]))
    }
}

fn bench_verify(c: &mut Criterion) {
    let mut rng = Pcg32::seed_from(42);
    let checkpoints: Vec<Vec<f32>> = (0..CHECKPOINTS)
        .map(|_| (0..DIM).map(|_| rng.next_normal() * 0.05).collect())
        .collect();
    let refs: Vec<&[f32]> = checkpoints.iter().map(|w| w.as_slice()).collect();

    c.bench_function("commit_hash_scalar", |bch| {
        bch.iter(|| {
            black_box(&refs)
                .iter()
                .map(|w| sha256_f32(w))
                .collect::<Vec<Digest>>()
        })
    });
    c.bench_function("commit_hash_batch", |bch| {
        bch.iter(|| sha256_f32_batch(black_box(&refs)))
    });

    let family = LshFamily::generate(DIM, LshParams::new(4.0, 4, 8), 7);
    c.bench_function("lsh_digest_scalar", |bch| {
        bch.iter(|| {
            black_box(&refs)
                .iter()
                .map(|w| family.hash_scalar(w).group_digests())
                .collect::<Vec<Vec<Digest>>>()
        })
    });
    c.bench_function("lsh_digest_gemm_1t", |bch| {
        bch.iter(|| {
            let sigs = family.hash_batch_threads(black_box(&refs), 1);
            Signature::group_digests_batch(&sigs)
        })
    });

    let cfg = TaskConfig::tiny();
    let data = SyntheticImages::generate(&cfg.spec, 64, &mut Pcg32::seed_from(1));
    let mut model = cfg.build_model();
    let mut trainer = LocalTrainer::new(&cfg, &data, NoiseInjector::new(GpuModel::GA10, 11));
    let trace = trainer.run_epoch(&mut model, 5, 6);
    let model_dim = trace.checkpoints[0].len();
    let e2e_family = LshFamily::generate(model_dim, LshParams::new(4.0, 4, 4), 7);
    let commitment = EpochCommitment::commit_v2(&trace.checkpoints, &e2e_family);
    let provider = VecProvider(trace.checkpoints.clone());
    let mut verifier = Verifier::new(
        &cfg,
        &data,
        5,
        0.5,
        Some(&e2e_family),
        NoiseInjector::new(GpuModel::G3090, 42),
    );
    c.bench_function("verify_samples_e2e_v2", |bch| {
        bch.iter(|| {
            verifier.verify_samples(
                &mut model,
                &commitment,
                &trace.segments,
                black_box(&[0usize]),
                &provider,
            )
        })
    });

    // Observability overhead on the replay path. `verify_samples_e2e_v2`
    // above runs with the shared noop recorder; the `obs_disabled` case
    // attaches a real (but disabled) recorder so every span/event site
    // pays its `enabled()` guard — the contract is that this stays within
    // 2% of the noop case. `obs_enabled` shows the full recording cost
    // for comparison; its buffer is drained each iteration so the span
    // store cannot grow without bound.
    let rec_off = rpol_obs::Recorder::logical();
    rec_off.disable();
    let mut verifier_off = Verifier::new(
        &cfg,
        &data,
        5,
        0.5,
        Some(&e2e_family),
        NoiseInjector::new(GpuModel::G3090, 42),
    )
    .with_recorder(&rec_off);
    c.bench_function("verify_samples_e2e_v2_obs_disabled", |bch| {
        bch.iter(|| {
            verifier_off.verify_samples(
                &mut model,
                &commitment,
                &trace.segments,
                black_box(&[0usize]),
                &provider,
            )
        })
    });

    let rec_on = rpol_obs::Recorder::logical();
    let mut verifier_on = Verifier::new(
        &cfg,
        &data,
        5,
        0.5,
        Some(&e2e_family),
        NoiseInjector::new(GpuModel::G3090, 42),
    )
    .with_recorder(&rec_on);
    c.bench_function("verify_samples_e2e_v2_obs_enabled", |bch| {
        bch.iter(|| {
            let verdict = verifier_on.verify_samples(
                &mut model,
                &commitment,
                &trace.segments,
                black_box(&[0usize]),
                &provider,
            );
            rec_on.drain_events();
            verdict
        })
    });
}

criterion_group!(benches, bench_verify);
criterion_main!(benches);
