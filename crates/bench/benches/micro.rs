//! Criterion micro-benchmarks for the protocol's hot primitives.
//!
//! These complement the table/figure regenerators with per-operation
//! costs: hashing and committing checkpoints, LSH signing a weight vector
//! (the paper reports ~250 ms for 50 ResNet50 checkpoints — i.e. LSH is
//! negligible next to training), AMLayer derivation (power iteration),
//! and a full verify-one-checkpoint replay vs a plain training step.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rpol::amlayer::{AmLayer, AmLayerSpec};
use rpol::commitment::EpochCommitment;
use rpol::tasks::TaskConfig;
use rpol::trainer::{LocalTrainer, Segment};
use rpol_crypto::sha256::{sha256, sha256_f32};
use rpol_crypto::{Address, MerkleTree};
use rpol_lsh::{LshFamily, LshParams};
use rpol_nn::data::SyntheticImages;
use rpol_sim::gpu::{GpuModel, NoiseInjector};
use rpol_tensor::rng::Pcg32;
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let data = vec![0xABu8; 1 << 20];
    c.bench_function("sha256_1MiB", |b| b.iter(|| sha256(black_box(&data))));
    let weights = vec![0.5f32; 100_000];
    c.bench_function("sha256_f32_100k_weights", |b| {
        b.iter(|| sha256_f32(black_box(&weights)))
    });
}

fn bench_merkle(c: &mut Criterion) {
    let leaves: Vec<Vec<u8>> = (0..256u32).map(|i| i.to_be_bytes().to_vec()).collect();
    let refs: Vec<&[u8]> = leaves.iter().map(|l| l.as_slice()).collect();
    c.bench_function("merkle_build_256_leaves", |b| {
        b.iter(|| MerkleTree::from_leaves(black_box(&refs)))
    });
    let tree = MerkleTree::from_leaves(&refs);
    c.bench_function("merkle_prove_and_verify", |b| {
        b.iter(|| {
            let proof = tree.prove(128);
            black_box(proof.verify(tree.root(), &leaves[128]))
        })
    });
}

fn bench_lsh(c: &mut Criterion) {
    let dim = 100_000;
    let family = LshFamily::generate(dim, LshParams::new(1.0, 4, 4), 7);
    let mut rng = Pcg32::seed_from(1);
    let x: Vec<f32> = (0..dim).map(|_| rng.next_normal()).collect();
    c.bench_function("lsh_sign_100k_weights_k4_l4", |b| {
        b.iter(|| family.hash(black_box(&x)))
    });
    let sig = family.hash(&x);
    c.bench_function("lsh_signature_digest", |b| b.iter(|| sig.digest()));
}

fn bench_amlayer(c: &mut Criterion) {
    let spec = AmLayerSpec::for_channels(3);
    c.bench_function("amlayer_derive_weights", |b| {
        b.iter(|| AmLayer::derive_weight_stack(black_box(&Address::from_seed(7)), spec, 0.9))
    });
}

fn bench_commitments(c: &mut Criterion) {
    let checkpoints: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32; 10_000]).collect();
    let family = LshFamily::generate(10_000, LshParams::new(1.0, 4, 4), 3);
    c.bench_function("commit_v1_10_checkpoints_10k", |b| {
        b.iter(|| EpochCommitment::commit_v1(black_box(&checkpoints)))
    });
    c.bench_function("commit_v2_10_checkpoints_10k", |b| {
        b.iter(|| EpochCommitment::commit_v2(black_box(&checkpoints), &family))
    });
}

fn bench_training_and_replay(c: &mut Criterion) {
    let cfg = TaskConfig::tiny();
    let data = SyntheticImages::generate(&cfg.spec, 64, &mut Pcg32::seed_from(1));
    let segment = Segment {
        start_step: 0,
        steps: cfg.checkpoint_interval,
    };
    c.bench_function("train_one_segment", |b| {
        b.iter_batched(
            || cfg.build_model(),
            |mut model| {
                let mut trainer =
                    LocalTrainer::new(&cfg, &data, NoiseInjector::new(GpuModel::GA10, 5));
                trainer.run_segment(&mut model, 9, segment);
                model
            },
            BatchSize::SmallInput,
        )
    });
    let weights = cfg.build_model().flatten_params();
    c.bench_function("verify_replay_one_segment", |b| {
        b.iter_batched(
            || cfg.build_model(),
            |mut model| {
                let mut trainer =
                    LocalTrainer::new(&cfg, &data, NoiseInjector::new(GpuModel::G3090, 6));
                trainer.replay_segment(&mut model, &weights, 9, segment)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_wire(c: &mut Criterion) {
    let weights = vec![0.5f32; 10_000];
    let checkpoints: Vec<Vec<f32>> = (0..5).map(|i| vec![i as f32; 10_000]).collect();
    let commitment = EpochCommitment::commit_v1(&checkpoints);
    c.bench_function("wire_encode_submission_10k", |b| {
        b.iter(|| rpol::wire::encode_submission(black_box(&weights), Some(&commitment)))
    });
    let encoded = rpol::wire::encode_submission(&weights, Some(&commitment));
    c.bench_function("wire_decode_submission_10k", |b| {
        b.iter(|| rpol::wire::decode_submission(black_box(encoded.clone())).expect("decodes"))
    });
}

fn bench_tuning(c: &mut Criterion) {
    use rpol_lsh::tuning::{tune, TuningConfig};
    c.bench_function("lsh_tune_eq6_budget16", |b| {
        b.iter(|| tune(black_box(&TuningConfig::new(1.0, 5.0).with_budget(16))))
    });
}

fn bench_json(c: &mut Criterion) {
    let report = {
        use rpol::adversary::WorkerBehavior;
        use rpol::pool::{MiningPool, PoolConfig, Scheme};
        let mut pool = MiningPool::new(
            PoolConfig::tiny_demo(Scheme::RPoLv2),
            vec![WorkerBehavior::Honest; 2],
        );
        pool.run()
    };
    c.bench_function("json_export_pool_report", |b| {
        b.iter(|| rpol_json::to_string_pretty(black_box(&report)).expect("serializes"))
    });
}

criterion_group!(
    benches,
    bench_sha256,
    bench_merkle,
    bench_lsh,
    bench_amlayer,
    bench_commitments,
    bench_training_and_replay,
    bench_wire,
    bench_tuning,
    bench_json
);
criterion_main!(benches);
