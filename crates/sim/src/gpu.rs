//! GPU models and the training-nondeterminism injector.
//!
//! §VII-C measures DNN reproduction errors across four GPUs and finds:
//!
//! 1. errors exist even for the same task on the same GPU model,
//! 2. errors grow with GPU performance (more parallelism → more atomics),
//! 3. cross-GPU pairs see larger errors than same-GPU pairs, largest for
//!    the top-2 pair (G3090 + GA10),
//! 4. per-checkpoint errors on i.i.d. shards follow a normal distribution,
//! 5. errors vary across epochs and optimizers but the structure holds
//!    within an epoch,
//! 6. errors grow linearly with the checkpoint interval.
//!
//! [`NoiseInjector`] reproduces all six: after every optimizer step it adds
//! i.i.d. Gaussian noise to the weights with standard deviation
//! `σ_rel(gpu) · ‖Δθ‖ / √d` — i.e. noise proportional to the magnitude of
//! the step just taken (as real nondeterminism is: atomics perturb the
//! accumulated gradients). Facts (1)–(3) follow from `σ_rel` growing with
//! GPU speed; (4) from the CLT over many independent per-step noises;
//! (5) because `‖Δθ‖` shrinks as training converges and differs per
//! optimizer; (6) because variances add across the steps of an interval.

use rpol_tensor::rng::Pcg32;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four GPU models of the paper's evaluation (§VII-C), ordered by
/// descending FP32 throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GpuModel {
    /// NVIDIA GeForce RTX 3090 — 35.7 TFLOPS FP32 ("G3090").
    G3090,
    /// NVIDIA A10 (Alibaba gn7i) — 31.2 TFLOPS FP32 ("GA10").
    GA10,
    /// NVIDIA P100 (Alibaba gn5) — 10.6 TFLOPS FP32 ("GP100").
    GP100,
    /// NVIDIA T4 (Alibaba gn6i) — 8.1 TFLOPS FP32 ("GT4").
    GT4,
}

impl GpuModel {
    /// All models, fastest first (the paper's ordering).
    pub const ALL: [GpuModel; 4] = [
        GpuModel::G3090,
        GpuModel::GA10,
        GpuModel::GP100,
        GpuModel::GT4,
    ];

    /// FP32 throughput in TFLOPS (paper §VII-C).
    pub fn fp32_tflops(&self) -> f64 {
        match self {
            GpuModel::G3090 => 35.7,
            GpuModel::GA10 => 31.2,
            GpuModel::GP100 => 10.6,
            GpuModel::GT4 => 8.1,
        }
    }

    /// Relative nondeterminism scale `σ_rel`: the standard deviation of
    /// per-weight noise as a fraction of the RMS weight update. Calibrated
    /// so faster GPUs (more parallel reduction orders) produce larger
    /// errors, matching the paper's Fig. 4 ordering.
    pub fn noise_rel_sigma(&self) -> f32 {
        // ~ 5e-6 · sqrt(TFLOPS / 10) — calibrated so replayed segments
        // stay in the regime where divergence accumulates roughly
        // linearly rather than chaotically: with larger σ the noise
        // frequently flips ReLU gates during replay, producing a heavy
        // constant-magnitude tail that real cuDNN atomics noise (relative
        // error ~1e-7) essentially never triggers.
        (5e-6 * (self.fp32_tflops() / 10.0).sqrt()) as f32
    }

    /// Hourly rent in USD on Alibaba cloud. The paper prices GA10 at
    /// $1.33/h (G3090 is not offered); other models are scaled by relative
    /// throughput for the cost extrapolations.
    pub fn price_per_hour(&self) -> f64 {
        1.33 * self.fp32_tflops() / GpuModel::GA10.fp32_tflops()
    }

    /// Wall-clock seconds to execute `flops` floating-point operations at
    /// a conventional 35% utilization efficiency.
    pub fn compute_seconds(&self, flops: f64) -> f64 {
        assert!(flops >= 0.0, "negative flops");
        flops / (self.fp32_tflops() * 1e12 * 0.35)
    }

    /// The top-2 fastest models — what the pool manager uses for
    /// calibration runs to measure near-worst-case reproduction errors
    /// (§V-C).
    pub fn top2() -> (GpuModel, GpuModel) {
        (GpuModel::G3090, GpuModel::GA10)
    }
}

impl fmt::Display for GpuModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            GpuModel::G3090 => "G3090",
            GpuModel::GA10 => "GA10",
            GpuModel::GP100 => "GP100",
            GpuModel::GT4 => "GT4",
        };
        f.write_str(name)
    }
}

/// Injects per-step training nondeterminism for a given GPU.
///
/// Each injector has its own RNG stream: two injectors with the same GPU
/// model but different seeds model two *runs* on identical hardware, which
/// still diverge (paper finding 1).
///
/// # Examples
///
/// ```
/// use rpol_sim::gpu::{GpuModel, NoiseInjector};
///
/// let mut inj = NoiseInjector::new(GpuModel::G3090, 42);
/// let mut weights = vec![1.0f32; 100];
/// let before = weights.clone();
/// inj.perturb_after_step(&mut weights, 0.5);
/// assert_ne!(weights, before);
/// ```
#[derive(Debug, Clone)]
pub struct NoiseInjector {
    model: GpuModel,
    rng: Pcg32,
    /// When set, the injector is a deterministic-hardware baseline.
    zero: bool,
}

impl NoiseInjector {
    /// Creates an injector for one training run on `model`.
    pub fn new(model: GpuModel, run_seed: u64) -> Self {
        Self {
            model,
            rng: Pcg32::seed_from(run_seed ^ 0x6E01_5E00),
            zero: false,
        }
    }

    /// A silent injector useful as a "perfectly deterministic hardware"
    /// baseline: [`NoiseInjector::perturb_after_step`] becomes a no-op.
    pub fn noiseless(model: GpuModel) -> Self {
        let mut inj = Self::new(model, 0);
        inj.zero = true;
        inj
    }

    /// The GPU model.
    pub fn model(&self) -> GpuModel {
        self.model
    }

    /// Adds the two components of training nondeterminism to `weights`
    /// after an optimizer step whose update had Euclidean norm
    /// `update_norm`:
    ///
    /// 1. **run-to-run noise** — i.i.d. Gaussian per element with std
    ///    `σ_rel · update_norm / √d` (atomics reduction-order effects);
    /// 2. **kernel fingerprint drift** — a *deterministic per-GPU-model*
    ///    direction of the same magnitude, modelling systematic library /
    ///    kernel-selection differences. Two runs on the same GPU model
    ///    share the drift (it cancels in their difference); runs on
    ///    different models do not, which is why the paper measures larger
    ///    errors for cross-GPU pairs — largest for the top-2 pair.
    pub fn perturb_after_step(&mut self, weights: &mut [f32], update_norm: f32) {
        // Requiring a finite positive norm also skips NaN update norms —
        // produced when a replay runs from adversarial NaN/Inf weights —
        // instead of panicking the noise sampler.
        let valid_norm = update_norm.is_finite() && update_norm > 0.0;
        if self.zero || !valid_norm || weights.is_empty() {
            return;
        }
        let sigma = self.model.noise_rel_sigma() * update_norm / (weights.len() as f32).sqrt();
        // The fingerprint direction is a pure function of the GPU model.
        let mut fingerprint = Pcg32::seed_from(0xF17E_0000 ^ self.model.fp32_tflops().to_bits());
        for w in weights.iter_mut() {
            *w += self.rng.normal(0.0, sigma) + sigma * fingerprint.next_normal();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpol_tensor::stats;

    #[test]
    fn gpu_ordering_matches_paper() {
        let t: Vec<f64> = GpuModel::ALL.iter().map(|g| g.fp32_tflops()).collect();
        assert!(t.windows(2).all(|w| w[0] > w[1]), "not descending: {t:?}");
        assert_eq!(t, vec![35.7, 31.2, 10.6, 8.1]);
    }

    #[test]
    fn noise_grows_with_gpu_speed() {
        let s: Vec<f32> = GpuModel::ALL.iter().map(|g| g.noise_rel_sigma()).collect();
        assert!(s.windows(2).all(|w| w[0] > w[1]), "not descending: {s:?}");
    }

    #[test]
    fn ga10_price_matches_paper() {
        assert!((GpuModel::GA10.price_per_hour() - 1.33).abs() < 1e-9);
    }

    #[test]
    fn compute_seconds_scales_inversely() {
        let flops = 1e12;
        assert!(GpuModel::G3090.compute_seconds(flops) < GpuModel::GT4.compute_seconds(flops));
    }

    #[test]
    fn same_gpu_two_runs_diverge() {
        let mut a = NoiseInjector::new(GpuModel::GT4, 1);
        let mut b = NoiseInjector::new(GpuModel::GT4, 2);
        let mut wa = vec![0.0f32; 1000];
        let mut wb = vec![0.0f32; 1000];
        a.perturb_after_step(&mut wa, 1.0);
        b.perturb_after_step(&mut wb, 1.0);
        assert_ne!(wa, wb);
        // Both nonzero.
        assert!(wa.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn expected_error_magnitude() {
        // Noise and fingerprint components each contribute σ_rel·‖Δθ‖,
        // so a single perturbation has E‖ε‖ ≈ √2·σ_rel·‖Δθ‖.
        let mut inj = NoiseInjector::new(GpuModel::G3090, 3);
        let d = 10_000;
        let update_norm = 2.0f32;
        let mut w = vec![0.0f32; d];
        inj.perturb_after_step(&mut w, update_norm);
        let err: f32 = w.iter().map(|&x| x * x).sum::<f32>().sqrt();
        let expected = std::f32::consts::SQRT_2 * GpuModel::G3090.noise_rel_sigma() * update_norm;
        assert!(
            (err - expected).abs() < expected * 0.1,
            "err {err} vs expected {expected}"
        );
    }

    #[test]
    fn same_model_pairs_cancel_fingerprint() {
        // The drift is identical for two runs on the same GPU model, so
        // the *difference* between the runs contains only i.i.d. noise.
        let run = |seed: u64| {
            let mut inj = NoiseInjector::new(GpuModel::GA10, seed);
            let mut w = vec![0.0f32; 5_000];
            inj.perturb_after_step(&mut w, 1.0);
            w
        };
        let (a, b) = (run(1), run(2));
        let diff: f32 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| (x - y) * (x - y))
            .sum::<f32>()
            .sqrt();
        // √2·σ (two independent noise draws), not 2σ (which would include
        // uncancelled drift).
        let expected = std::f32::consts::SQRT_2 * GpuModel::GA10.noise_rel_sigma();
        assert!(
            (diff - expected).abs() < expected * 0.15,
            "diff {diff} vs {expected}"
        );
    }

    #[test]
    fn cross_model_pairs_keep_fingerprint_gap() {
        // Same seed pattern, different GPU models: the fingerprint
        // difference adds to the noise, so cross-pairs diverge more.
        let run = |model: GpuModel, seed: u64| {
            let mut inj = NoiseInjector::new(model, seed);
            let mut w = vec![0.0f32; 5_000];
            inj.perturb_after_step(&mut w, 1.0);
            w
        };
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter()
                .zip(b)
                .map(|(&x, &y)| (x - y) * (x - y))
                .sum::<f32>()
                .sqrt()
        };
        let same = dist(&run(GpuModel::G3090, 1), &run(GpuModel::G3090, 2));
        let cross = dist(&run(GpuModel::G3090, 1), &run(GpuModel::GA10, 2));
        assert!(cross > same, "cross {cross} !> same {same}");
    }

    #[test]
    fn noiseless_is_noop() {
        let mut inj = NoiseInjector::noiseless(GpuModel::G3090);
        let mut w = vec![1.0f32; 10];
        inj.perturb_after_step(&mut w, 5.0);
        assert_eq!(w, vec![1.0f32; 10]);
    }

    #[test]
    fn checkpoint_distances_normal_across_runs() {
        // Distances between pairs of noisy runs over many steps should be
        // approximately normal (paper finding 4).
        let d = 2000;
        let steps = 25;
        let mut distances = Vec::new();
        for trial in 0..60 {
            let mut a = NoiseInjector::new(GpuModel::G3090, 100 + trial);
            let mut b = NoiseInjector::new(GpuModel::GA10, 900 + trial);
            let mut wa = vec![0.0f32; d];
            let mut wb = vec![0.0f32; d];
            for _ in 0..steps {
                a.perturb_after_step(&mut wa, 1.0);
                b.perturb_after_step(&mut wb, 1.0);
            }
            let dist: f32 = wa
                .iter()
                .zip(&wb)
                .map(|(&x, &y)| (x - y) * (x - y))
                .sum::<f32>()
                .sqrt();
            distances.push(dist);
        }
        let ks = stats::ks_normality_test(&distances);
        assert!(ks.is_normal(0.01), "distances not normal: {ks:?}");
    }

    #[test]
    fn error_grows_with_interval() {
        // Between two same-model runs the drift cancels and noise
        // variance adds across steps: distance after 4x the steps ≈ 2x.
        let run = |steps: usize, seed: u64| -> Vec<f32> {
            let mut a = NoiseInjector::new(GpuModel::G3090, seed);
            let mut w = vec![0.0f32; 5000];
            for _ in 0..steps {
                a.perturb_after_step(&mut w, 1.0);
            }
            w
        };
        let dist = |steps: usize| -> f32 {
            let a = run(steps, 7);
            let b = run(steps, 8);
            a.iter()
                .zip(&b)
                .map(|(&x, &y)| (x - y) * (x - y))
                .sum::<f32>()
                .sqrt()
        };
        let e1 = dist(5);
        let e4 = dist(20);
        assert!(
            (e4 / e1 - 2.0).abs() < 0.3,
            "interval scaling off: {e1} -> {e4}"
        );
    }
}
