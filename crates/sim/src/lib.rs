//! Environment substrate for the RPoL reproduction.
//!
//! The paper's evaluation runs on hardware we substitute with calibrated
//! models (see DESIGN.md §2):
//!
//! * [`gpu`] — the four GPU models of §VII-C (RTX 3090, A10, P100, T4)
//!   with their FP32 throughput, plus the **nondeterminism injector** that
//!   reproduces cuDNN-style reproduction errors: per-step Gaussian noise
//!   whose magnitude scales with GPU speed and with the size of the weight
//!   update (so errors vary by epoch and optimizer, as the paper observes),
//! * [`net`] — the wide-area network model (10 Gbps manager, 100 Mbps
//!   workers) used for the one-epoch time and overhead tables,
//! * [`clock`] — a simulated clock accumulating compute/communication time
//!   by category,
//! * [`cost`] — Alibaba-cloud capital-cost model with the paper's prices,
//! * [`workload`] — the paper's model/dataset size catalogue (ResNet50 =
//!   90.7 MB, VGG16 = 527 MB, ImageNet = 1,281,167 images) for Table II/III.

pub mod clock;
pub mod cost;
pub mod gpu;
pub mod net;
pub mod workload;

pub use clock::SimClock;
pub use cost::CostModel;
pub use gpu::{GpuModel, NoiseInjector};
pub use net::{NetModelError, NetworkModel};
pub use workload::{DatasetKind, ModelKind, Workload};
