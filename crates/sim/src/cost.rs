//! Capital-cost model with the paper's Alibaba-cloud prices (§VII-E).

use serde::{Deserialize, Serialize};

/// Unit prices for compute, wide-area traffic, and storage.
///
/// # Examples
///
/// ```
/// use rpol_sim::CostModel;
///
/// let m = CostModel::paper_default();
/// // One GPU-hour plus 10 GB of traffic.
/// let usd = m.total_usd(3600.0, 10_000_000_000, 0, 0.0);
/// assert!((usd - 2.53).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// GPU rent in USD per hour (paper: $1.33/h for GA10).
    pub gpu_per_hour: f64,
    /// Wide-area traffic in USD per GB (paper: $0.12/GB).
    pub comm_per_gb: f64,
    /// Storage in USD per GB-month (paper: $5 per 100 GB per month).
    pub storage_per_gb_month: f64,
}

impl CostModel {
    /// The paper's prices.
    pub fn paper_default() -> Self {
        Self {
            gpu_per_hour: 1.33,
            comm_per_gb: 0.12,
            storage_per_gb_month: 0.05,
        }
    }

    /// Total USD for a job consuming `gpu_seconds` of GPU time,
    /// `comm_bytes` of traffic, and `storage_bytes` held for
    /// `storage_months` months.
    ///
    /// # Panics
    ///
    /// Panics on negative inputs.
    pub fn total_usd(
        &self,
        gpu_seconds: f64,
        comm_bytes: u64,
        storage_bytes: u64,
        storage_months: f64,
    ) -> f64 {
        assert!(
            gpu_seconds >= 0.0 && storage_months >= 0.0,
            "negative input"
        );
        let gb = 1_000_000_000.0;
        self.gpu_per_hour * gpu_seconds / 3600.0
            + self.comm_per_gb * comm_bytes as f64 / gb
            + self.storage_per_gb_month * storage_bytes as f64 / gb * storage_months
    }
}

/// The approximate Bitcoin block reward the paper cites for perspective
/// (~$133,000 in January 2023).
pub const MINING_REWARD_USD_JAN_2023: f64 = 133_000.0;

/// The paper's electricity-to-income ratio for Bitcoin miners in 2022
/// (Digiconomist): training cost `C_train = 0.88` when one verified
/// submission's reward is normalized to 1 (used in Theorem 3).
pub const C_TRAIN_RATIO: f64 = 0.88;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_prices() {
        let m = CostModel::paper_default();
        assert_eq!(m.gpu_per_hour, 1.33);
        assert_eq!(m.comm_per_gb, 0.12);
        assert_eq!(m.storage_per_gb_month, 0.05);
    }

    #[test]
    fn cost_components_add_up() {
        let m = CostModel::paper_default();
        // 1 hour GPU + 10 GB traffic + 100 GB-month storage.
        let usd = m.total_usd(3600.0, 10_000_000_000, 100_000_000_000, 1.0);
        assert!((usd - (1.33 + 1.2 + 5.0)).abs() < 1e-9, "usd = {usd}");
    }

    #[test]
    fn zero_job_is_free() {
        assert_eq!(CostModel::paper_default().total_usd(0.0, 0, 0, 0.0), 0.0);
    }

    #[test]
    fn comm_dominates_for_big_transfers() {
        let m = CostModel::paper_default();
        let comm_only = m.total_usd(0.0, 62_000_000_000, 0, 0.0);
        // 62 GB (Table III RPoLv1 comm) ≈ $7.44.
        assert!((comm_only - 7.44).abs() < 0.01);
    }
}
