//! A simulated clock accumulating time by category.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Accumulates simulated seconds under named categories (e.g. `"compute"`,
/// `"comm"`, `"verify"`), so epoch-time breakdowns can be reported the way
/// the paper's Table II/III splits them. Alongside the time buckets it
/// keeps integer **event counters** (e.g. retries, timeouts per message
/// kind) so a transport trace can report "how often" next to "how long".
///
/// # Examples
///
/// ```
/// use rpol_sim::SimClock;
///
/// let mut clock = SimClock::new();
/// clock.add("compute", 30.0);
/// clock.add("comm", 12.5);
/// clock.add("compute", 2.5);
/// clock.tick("retry");
/// assert_eq!(clock.get("compute"), 32.5);
/// assert_eq!(clock.total(), 45.0);
/// assert_eq!(clock.events("retry"), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimClock {
    buckets: BTreeMap<String, f64>,
    counters: BTreeMap<String, u64>,
}

impl SimClock {
    /// Creates an empty clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `seconds` under `category`.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative or non-finite.
    pub fn add(&mut self, category: &str, seconds: f64) {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "invalid duration {seconds}"
        );
        *self.buckets.entry(category.to_string()).or_insert(0.0) += seconds;
    }

    /// Accumulated seconds under `category` (0 if never touched).
    pub fn get(&self, category: &str) -> f64 {
        self.buckets.get(category).copied().unwrap_or(0.0)
    }

    /// Total accumulated seconds across categories.
    pub fn total(&self) -> f64 {
        self.buckets.values().sum()
    }

    /// Iterates `(category, seconds)` in category order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.buckets.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Increments the event counter under `category` by one.
    pub fn tick(&mut self, category: &str) {
        self.add_events(category, 1);
    }

    /// Adds `n` events under `category`.
    pub fn add_events(&mut self, category: &str, n: u64) {
        *self.counters.entry(category.to_string()).or_insert(0) += n;
    }

    /// Accumulated event count under `category` (0 if never ticked).
    pub fn events(&self, category: &str) -> u64 {
        self.counters.get(category).copied().unwrap_or(0)
    }

    /// Iterates `(category, events)` in category order.
    pub fn iter_events(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Merges another clock into this one (both seconds and events).
    pub fn merge(&mut self, other: &SimClock) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
        for (k, n) in other.iter_events() {
            self.add_events(k, n);
        }
    }

    /// Resets all buckets and counters.
    pub fn reset(&mut self) {
        self.buckets.clear();
        self.counters.clear();
    }

    /// Mirrors this clock into an observability recorder: each time bucket
    /// becomes a gauge `{prefix}.time.{category}` (accumulated with
    /// `gauge_add`) and each event counter a counter
    /// `{prefix}.events.{category}`. The clock's own fields stay the source
    /// of truth — the registry is a view, published at deterministic merge
    /// points (see `rpol::pool`).
    pub fn publish(&self, rec: &rpol_obs::Recorder, prefix: &str) {
        if !rec.enabled() {
            return;
        }
        for (category, seconds) in self.iter() {
            rec.gauge_add(&format!("{prefix}.time.{category}"), seconds);
        }
        for (category, events) in self.iter_events() {
            rec.counter_add(&format!("{prefix}.events.{category}"), events);
        }
    }
}

impl fmt::Display for SimClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimClock[total {:.2}s", self.total())?;
        for (k, v) in self.iter() {
            write!(f, ", {k} {v:.2}s")?;
        }
        for (k, n) in self.iter_events() {
            write!(f, ", {k} ×{n}")?;
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_and_total() {
        let mut c = SimClock::new();
        c.add("a", 1.0);
        c.add("b", 2.0);
        c.add("a", 3.0);
        assert_eq!(c.get("a"), 4.0);
        assert_eq!(c.get("missing"), 0.0);
        assert_eq!(c.total(), 6.0);
    }

    #[test]
    fn merge_sums_buckets() {
        let mut a = SimClock::new();
        a.add("x", 1.0);
        a.tick("r");
        let mut b = SimClock::new();
        b.add("x", 2.0);
        b.add("y", 5.0);
        b.add_events("r", 3);
        a.merge(&b);
        assert_eq!(a.get("x"), 3.0);
        assert_eq!(a.get("y"), 5.0);
        assert_eq!(a.events("r"), 4);
    }

    #[test]
    fn counters_accumulate_independently_of_seconds() {
        let mut c = SimClock::new();
        c.tick("retry");
        c.tick("retry");
        c.add_events("drop", 5);
        assert_eq!(c.events("retry"), 2);
        assert_eq!(c.events("drop"), 5);
        assert_eq!(c.events("missing"), 0);
        assert_eq!(c.total(), 0.0, "events do not add seconds");
    }

    #[test]
    fn reset_clears() {
        let mut c = SimClock::new();
        c.add("x", 1.0);
        c.tick("r");
        c.reset();
        assert_eq!(c.total(), 0.0);
        assert_eq!(c.events("r"), 0);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_rejected() {
        SimClock::new().add("x", -1.0);
    }

    #[test]
    fn publish_mirrors_into_registry() {
        let mut c = SimClock::new();
        c.add("net:task", 1.5);
        c.add("net:task", 0.5);
        c.tick("retry");
        c.add_events("drop", 2);
        let rec = rpol_obs::Recorder::logical();
        c.publish(&rec, "sim.clock");
        c.publish(&rec, "sim.clock"); // accumulates like merge would
        let snap = rec.snapshot();
        assert_eq!(snap.gauge("sim.clock.time.net:task"), 4.0);
        assert_eq!(snap.counter("sim.clock.events.retry"), 2);
        assert_eq!(snap.counter("sim.clock.events.drop"), 4);
    }

    #[test]
    fn publish_to_disabled_recorder_is_inert() {
        let mut c = SimClock::new();
        c.add("x", 1.0);
        let rec = rpol_obs::Recorder::logical();
        rec.disable();
        c.publish(&rec, "p");
        assert!(rec.snapshot().gauges.is_empty());
    }

    #[test]
    fn display_nonempty() {
        let mut c = SimClock::new();
        c.add("compute", 1.5);
        let s = format!("{c}");
        assert!(s.contains("compute"));
    }
}
