//! Wide-area network model (§VII-E setup).
//!
//! The paper's testbed has one manager with 10 Gbps and workers with
//! 100 Mbps each. Transfers are modelled as bandwidth-bound flows: a
//! point-to-point transfer is limited by the slower endpoint; fan-out /
//! fan-in to `n` workers runs the worker links in parallel but cannot
//! exceed the manager's aggregate link.

use serde::{Deserialize, Serialize};

/// Why a [`NetworkModel`] could not be constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetModelError {
    /// A bandwidth was zero, negative, or non-finite.
    InvalidBandwidth,
    /// The latency was negative or non-finite.
    InvalidLatency,
}

impl std::fmt::Display for NetModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetModelError::InvalidBandwidth => f.write_str("bandwidth must be positive and finite"),
            NetModelError::InvalidLatency => f.write_str("latency must be non-negative and finite"),
        }
    }
}

impl std::error::Error for NetModelError {}

/// Bandwidth parameters for the pool's star topology.
///
/// # Examples
///
/// ```
/// use rpol_sim::NetworkModel;
///
/// let net = NetworkModel::paper_default();
/// // 90.7 MB (ResNet50) to 10 workers: worker links are the bottleneck.
/// let t = net.broadcast_seconds(90_700_000, 10);
/// assert!((t - 7.3).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Manager uplink/downlink in bits per second.
    pub manager_bps: f64,
    /// Per-worker uplink/downlink in bits per second.
    pub worker_bps: f64,
    /// Per-message latency in seconds (handshakes, RPC overhead).
    pub latency_s: f64,
}

impl NetworkModel {
    /// The paper's setting: 10 Gbps manager, 100 Mbps workers, 20 ms RTT.
    pub fn paper_default() -> Self {
        Self {
            manager_bps: 10e9,
            worker_bps: 100e6,
            latency_s: 0.02,
        }
    }

    /// Creates a custom model, validating its parameters.
    ///
    /// A bad model (e.g. from CLI-supplied fault profiles) is reported as
    /// a [`NetModelError`] rather than aborting the process.
    ///
    /// # Errors
    ///
    /// Returns an error unless both bandwidths are positive and finite and
    /// the latency is non-negative and finite.
    pub fn new(manager_bps: f64, worker_bps: f64, latency_s: f64) -> Result<Self, NetModelError> {
        if !(manager_bps.is_finite() && worker_bps.is_finite())
            || manager_bps <= 0.0
            || worker_bps <= 0.0
        {
            return Err(NetModelError::InvalidBandwidth);
        }
        if !latency_s.is_finite() || latency_s < 0.0 {
            return Err(NetModelError::InvalidLatency);
        }
        Ok(Self {
            manager_bps,
            worker_bps,
            latency_s,
        })
    }

    /// Seconds to move `bytes` between the manager and one worker.
    pub fn p2p_seconds(&self, bytes: u64) -> f64 {
        self.latency_s + (bytes as f64 * 8.0) / self.manager_bps.min(self.worker_bps)
    }

    /// Seconds for the manager to send `bytes` to each of `n` workers
    /// (e.g. global-model broadcast). Worker links run in parallel;
    /// the manager's aggregate link caps total throughput.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn broadcast_seconds(&self, bytes: u64, n: usize) -> f64 {
        assert!(n > 0, "no workers");
        let per_worker = (bytes as f64 * 8.0) / self.worker_bps;
        let aggregate = (bytes as f64 * 8.0 * n as f64) / self.manager_bps;
        self.latency_s + per_worker.max(aggregate)
    }

    /// Seconds for `n` workers to each upload `bytes` to the manager
    /// (e.g. local-update gather). Symmetric to broadcast in this model.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gather_seconds(&self, bytes: u64, n: usize) -> f64 {
        self.broadcast_seconds(bytes, n)
    }

    /// Total bytes moved in a broadcast or gather of `bytes` per worker.
    pub fn fanout_bytes(&self, bytes: u64, n: usize) -> u64 {
        bytes * n as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_values() {
        let net = NetworkModel::paper_default();
        assert_eq!(net.manager_bps, 10e9);
        assert_eq!(net.worker_bps, 100e6);
    }

    #[test]
    fn p2p_limited_by_worker_link() {
        let net = NetworkModel::paper_default();
        // 100 MB over 100 Mbps ≈ 8 s (plus latency).
        let t = net.p2p_seconds(100_000_000);
        assert!((t - 8.02).abs() < 0.01, "t = {t}");
    }

    #[test]
    fn broadcast_parallel_until_manager_saturates() {
        let net = NetworkModel::paper_default();
        let bytes = 100_000_000u64; // 100 MB
                                    // 10 workers: aggregate 8 Gbps < manager 10 Gbps → worker-bound, ≈8 s.
        let t10 = net.broadcast_seconds(bytes, 10);
        assert!((t10 - 8.02).abs() < 0.01, "t10 = {t10}");
        // 200 workers: 160 Gbps demand → manager-bound, ≈16 s.
        let t200 = net.broadcast_seconds(bytes, 200);
        assert!((t200 - 16.02).abs() < 0.01, "t200 = {t200}");
    }

    #[test]
    fn gather_matches_broadcast() {
        let net = NetworkModel::paper_default();
        assert_eq!(
            net.gather_seconds(1_000_000, 10),
            net.broadcast_seconds(1_000_000, 10)
        );
    }

    #[test]
    fn fanout_bytes_multiplies() {
        let net = NetworkModel::paper_default();
        assert_eq!(net.fanout_bytes(100, 10), 1000);
    }

    #[test]
    fn invalid_models_report_errors() {
        assert_eq!(
            NetworkModel::new(0.0, 1.0, 0.0),
            Err(NetModelError::InvalidBandwidth)
        );
        assert_eq!(
            NetworkModel::new(1.0, -5.0, 0.0),
            Err(NetModelError::InvalidBandwidth)
        );
        assert_eq!(
            NetworkModel::new(f64::NAN, 1.0, 0.0),
            Err(NetModelError::InvalidBandwidth)
        );
        assert_eq!(
            NetworkModel::new(1.0, 1.0, -0.1),
            Err(NetModelError::InvalidLatency)
        );
        assert_eq!(
            NetworkModel::new(1.0, 1.0, f64::INFINITY),
            Err(NetModelError::InvalidLatency)
        );
        let ok = NetworkModel::new(10e9, 100e6, 0.02).expect("valid");
        assert_eq!(ok, NetworkModel::paper_default());
    }
}
