//! The paper's model/dataset workload catalogue (§VII-E).
//!
//! Table II and III are driven by the *sizes* of the paper's heavy
//! workloads, not by actually training them: ResNet50 weighs 90.7 MB,
//! VGG16 527 MB, ImageNet has 1,281,167 images. This module records those
//! constants plus standard per-sample FLOP counts so the analytic timing
//! model can regenerate the tables.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The DNN architectures appearing in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// ResNet-18 (11.7 M parameters).
    ResNet18,
    /// ResNet-50 (paper: 90.7 MB of weights).
    ResNet50,
    /// VGG-16 (paper: 527 MB of weights).
    Vgg16,
}

impl ModelKind {
    /// Weight payload in bytes (paper's reported sizes).
    pub fn weight_bytes(&self) -> u64 {
        match self {
            ModelKind::ResNet18 => 44_700_000,
            ModelKind::ResNet50 => 90_700_000,
            ModelKind::Vgg16 => 527_000_000,
        }
    }

    /// Forward-pass FLOPs per 224×224 sample (standard published numbers).
    pub fn flops_per_sample(&self) -> f64 {
        match self {
            ModelKind::ResNet18 => 1.8e9,
            ModelKind::ResNet50 => 4.1e9,
            ModelKind::Vgg16 => 15.5e9,
        }
    }

    /// Training FLOPs per sample: the conventional forward + 2× backward.
    pub fn train_flops_per_sample(&self) -> f64 {
        3.0 * self.flops_per_sample()
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ModelKind::ResNet18 => "ResNet18",
            ModelKind::ResNet50 => "ResNet50",
            ModelKind::Vgg16 => "VGG16",
        };
        f.write_str(name)
    }
}

/// The datasets appearing in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// CIFAR-10: 50,000 training images of 32×32×3.
    Cifar10,
    /// CIFAR-100: 50,000 training images of 32×32×3.
    Cifar100,
    /// ImageNet-1k: 1,281,167 training images (paper's count).
    ImageNet,
}

impl DatasetKind {
    /// Number of training samples.
    pub fn train_samples(&self) -> u64 {
        match self {
            DatasetKind::Cifar10 | DatasetKind::Cifar100 => 50_000,
            DatasetKind::ImageNet => 1_281_167,
        }
    }

    /// Bytes per raw sample.
    pub fn bytes_per_sample(&self) -> u64 {
        match self {
            // 32·32·3 bytes.
            DatasetKind::Cifar10 | DatasetKind::Cifar100 => 3_072,
            // ImageNet JPEG average ≈ 110 KB.
            DatasetKind::ImageNet => 110_000,
        }
    }
}

impl fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DatasetKind::Cifar10 => "CIFAR-10",
            DatasetKind::Cifar100 => "CIFAR-100",
            DatasetKind::ImageNet => "ImageNet",
        };
        f.write_str(name)
    }
}

/// A (model, dataset, batch size) training workload.
///
/// # Examples
///
/// ```
/// use rpol_sim::workload::{DatasetKind, ModelKind, Workload};
///
/// let w = Workload::new(ModelKind::ResNet50, DatasetKind::ImageNet);
/// assert_eq!(w.samples_per_worker(100), 12_811);
/// assert_eq!(w.checkpoints_per_worker(100, 5), 21);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Workload {
    /// The architecture being trained.
    pub model: ModelKind,
    /// The training dataset.
    pub dataset: DatasetKind,
    /// Mini-batch size (paper default 128).
    pub batch_size: u64,
}

impl Workload {
    /// Creates a workload with the paper's default batch size (128).
    pub fn new(model: ModelKind, dataset: DatasetKind) -> Self {
        Self {
            model,
            dataset,
            batch_size: 128,
        }
    }

    /// Samples assigned to each of `n` workers under equal division.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn samples_per_worker(&self, n: usize) -> u64 {
        assert!(n > 0, "no workers");
        self.dataset.train_samples() / n as u64
    }

    /// SGD steps per worker per epoch.
    pub fn steps_per_worker(&self, n: usize) -> u64 {
        self.samples_per_worker(n).div_ceil(self.batch_size)
    }

    /// Training FLOPs per worker per epoch.
    pub fn flops_per_worker(&self, n: usize) -> f64 {
        self.samples_per_worker(n) as f64 * self.model.train_flops_per_sample()
    }

    /// Checkpoints produced per worker per epoch at checkpoint interval
    /// `interval` (the paper stores weights every `i = 5` steps).
    ///
    /// # Panics
    ///
    /// Panics if `interval == 0`.
    pub fn checkpoints_per_worker(&self, n: usize, interval: u64) -> u64 {
        assert!(interval > 0, "zero checkpoint interval");
        self.steps_per_worker(n).div_ceil(interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes() {
        assert_eq!(ModelKind::ResNet50.weight_bytes(), 90_700_000);
        assert_eq!(ModelKind::Vgg16.weight_bytes(), 527_000_000);
        assert_eq!(DatasetKind::ImageNet.train_samples(), 1_281_167);
    }

    #[test]
    fn division_among_workers() {
        let w = Workload::new(ModelKind::ResNet50, DatasetKind::ImageNet);
        assert_eq!(w.samples_per_worker(100), 12_811);
        assert_eq!(w.steps_per_worker(100), 101); // ceil(12811/128)
    }

    #[test]
    fn checkpoints_at_interval_5() {
        let w = Workload::new(ModelKind::ResNet50, DatasetKind::ImageNet);
        // 101 steps, interval 5 → 21 checkpoints.
        assert_eq!(w.checkpoints_per_worker(100, 5), 21);
    }

    #[test]
    fn flops_scale_with_model() {
        let r = Workload::new(ModelKind::ResNet50, DatasetKind::ImageNet);
        let v = Workload::new(ModelKind::Vgg16, DatasetKind::ImageNet);
        assert!(v.flops_per_worker(10) > r.flops_per_worker(10));
    }

    #[test]
    fn display_names() {
        assert_eq!(ModelKind::Vgg16.to_string(), "VGG16");
        assert_eq!(DatasetKind::ImageNet.to_string(), "ImageNet");
    }
}
