//! Property-based tests for the environment substrate.

use proptest::prelude::*;
use rpol_sim::cost::CostModel;
use rpol_sim::gpu::{GpuModel, NoiseInjector};
use rpol_sim::net::NetworkModel;
use rpol_sim::workload::{DatasetKind, ModelKind, Workload};
use rpol_sim::SimClock;

proptest! {
    #[test]
    fn compute_seconds_linear_in_flops(flops in 0.0f64..1e15, scale in 1.0f64..10.0) {
        for gpu in GpuModel::ALL {
            let t1 = gpu.compute_seconds(flops);
            let t2 = gpu.compute_seconds(flops * scale);
            prop_assert!((t2 - t1 * scale).abs() < 1e-6 * t2.max(1.0));
        }
    }

    #[test]
    fn injector_deterministic_per_seed(seed in any::<u64>(), norm in 0.01f32..10.0) {
        let run = |s: u64| {
            let mut inj = NoiseInjector::new(GpuModel::GA10, s);
            let mut w = vec![0.5f32; 64];
            inj.perturb_after_step(&mut w, norm);
            w
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    #[test]
    fn noise_scales_with_update_norm(seed in any::<u64>(), norm in 0.1f32..10.0) {
        let err = |n: f32| {
            let mut inj = NoiseInjector::new(GpuModel::G3090, seed);
            let mut w = vec![0.0f32; 4096];
            inj.perturb_after_step(&mut w, n);
            w.iter().map(|&x| x * x).sum::<f32>().sqrt()
        };
        let e1 = err(norm);
        let e2 = err(norm * 2.0);
        prop_assert!((e2 / e1 - 2.0).abs() < 0.2, "scaling off: {e1} vs {e2}");
    }

    #[test]
    fn broadcast_time_monotone_in_bytes_and_workers(
        bytes in 1u64..1_000_000_000, n in 1usize..500
    ) {
        let net = NetworkModel::paper_default();
        prop_assert!(net.broadcast_seconds(bytes, n) <= net.broadcast_seconds(bytes * 2, n));
        prop_assert!(net.broadcast_seconds(bytes, n) <= net.broadcast_seconds(bytes, n * 2) + 1e-12);
        prop_assert!(net.p2p_seconds(bytes) >= net.latency_s);
    }

    #[test]
    fn cost_is_additive(
        gpu_s in 0.0f64..100_000.0,
        comm in 0u64..1_000_000_000_000,
        storage in 0u64..1_000_000_000_000
    ) {
        let m = CostModel::paper_default();
        let total = m.total_usd(gpu_s, comm, storage, 1.0);
        let parts = m.total_usd(gpu_s, 0, 0, 0.0)
            + m.total_usd(0.0, comm, 0, 0.0)
            + m.total_usd(0.0, 0, storage, 1.0);
        prop_assert!((total - parts).abs() < 1e-9 * total.max(1.0));
    }

    #[test]
    fn workload_partitions_conserve_samples(n in 1usize..1000) {
        let w = Workload::new(ModelKind::ResNet50, DatasetKind::ImageNet);
        let per = w.samples_per_worker(n);
        prop_assert!(per * n as u64 <= DatasetKind::ImageNet.train_samples());
        prop_assert!((per + 1) * n as u64 >= DatasetKind::ImageNet.train_samples());
        // Steps cover the per-worker samples.
        prop_assert!(w.steps_per_worker(n) * w.batch_size >= per);
    }

    #[test]
    fn clock_accumulates_commutatively(xs in proptest::collection::vec(0.0f64..100.0, 1..20)) {
        let mut forward = SimClock::new();
        for &x in &xs {
            forward.add("t", x);
        }
        let mut reverse = SimClock::new();
        for &x in xs.iter().rev() {
            reverse.add("t", x);
        }
        prop_assert!((forward.total() - reverse.total()).abs() < 1e-9);
    }
}
