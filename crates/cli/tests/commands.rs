//! Integration tests driving the CLI commands as library calls.
//!
//! Every test takes `LOCK`: the observability commands reset/enable the
//! process-wide recorder, and even obs-free pool runs bump global leaf
//! counters (commitments, nn passes) that would bleed into a concurrent
//! test's exported snapshot.

use rpol_cli::commands;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn raw(items: &[&str]) -> Vec<String> {
    items.iter().map(|s| s.to_string()).collect()
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rpol-cli-test-{name}"))
}

#[test]
fn soundness_runs_with_defaults_and_overrides() {
    let _g = lock();
    commands::soundness(&raw(&[])).expect("defaults work");
    commands::soundness(&raw(&["--pr-err=0.05", "--pr-beta=0.1", "--c-train=0.5"]))
        .expect("overrides work");
    assert!(commands::soundness(&raw(&["--pr-err=2.0"])).is_err());
    assert!(commands::soundness(&raw(&["--bogus=1"])).is_err());
}

#[test]
fn overhead_covers_all_models() {
    let _g = lock();
    for model in ["resnet18", "resnet50", "vgg16"] {
        commands::overhead(&raw(&[&format!("--model={model}"), "--workers=10"]))
            .expect("model works");
    }
    assert!(commands::overhead(&raw(&["--model=alexnet"])).is_err());
    assert!(commands::overhead(&raw(&["--workers=0"])).is_err());
}

#[test]
fn pool_runs_small_and_validates() {
    let _g = lock();
    commands::pool(&raw(&[
        "--scheme=v1",
        "--workers=3",
        "--adversaries=1",
        "--epochs=1",
    ]))
    .expect("small pool runs");
    assert!(commands::pool(&raw(&["--scheme=zk"])).is_err());
    assert!(commands::pool(&raw(&["--workers=2", "--adversaries=2"])).is_err());
}

#[test]
fn pool_hierarchy_flags_run_and_validate() {
    let _g = lock();
    commands::pool(&raw(&[
        "--scheme=v1",
        "--workers=4",
        "--adversaries=1",
        "--epochs=1",
        "--committees=2",
        "--committee-audit=1",
    ]))
    .expect("hierarchical pool runs");
    // Zero committees is a configuration error, not a panic.
    let err = commands::pool(&raw(&["--committees=0"])).unwrap_err();
    assert!(err.contains("--committees"), "got: {err}");
    // Auditing more verdicts than the smallest committee holds is too.
    let err = commands::pool(&raw(&[
        "--workers=4",
        "--committees=2",
        "--committee-audit=50",
    ]))
    .unwrap_err();
    assert!(err.contains("--committee-audit"), "got: {err}");
    // The audit budget means nothing without committees to audit.
    let err = commands::pool(&raw(&["--committee-audit=1"])).unwrap_err();
    assert!(err.contains("--committees"), "got: {err}");
    // The baseline emits no verdicts to commit.
    let err = commands::pool(&raw(&["--scheme=baseline", "--committees=2"])).unwrap_err();
    assert!(err.contains("verifying scheme"), "got: {err}");
    // The chaos transport path stays flat.
    let err = commands::pool(&raw(&["--committees=2", "--faults=lossy"])).unwrap_err();
    assert!(err.contains("--faults"), "got: {err}");
}

#[test]
fn calibrate_runs_small() {
    let _g = lock();
    commands::calibrate(&raw(&["--epochs=1", "--steps=4"])).expect("calibrates");
}

#[test]
fn pool_trace_out_is_deterministic_and_checkable() {
    let _g = lock();
    let trace_a = tmp("trace-a.jsonl");
    let trace_b = tmp("trace-b.jsonl");
    let metrics_a = tmp("metrics-a.json");
    let metrics_b = tmp("metrics-b.json");
    let run = |trace: &PathBuf, metrics: &PathBuf| {
        commands::pool(&raw(&[
            "--workers=3",
            "--adversaries=1",
            "--epochs=1",
            "--faults",
            &format!("--trace-out={}", trace.display()),
            &format!("--metrics-out={}", metrics.display()),
        ]))
        .expect("faulty pool with sinks runs");
    };
    run(&trace_a, &metrics_a);
    run(&trace_b, &metrics_b);
    let bytes_a = std::fs::read(&trace_a).expect("trace a written");
    let bytes_b = std::fs::read(&trace_b).expect("trace b written");
    assert!(!bytes_a.is_empty());
    assert_eq!(bytes_a, bytes_b, "same-seed traces must be byte-identical");
    assert_eq!(
        std::fs::read(&metrics_a).expect("metrics a written"),
        std::fs::read(&metrics_b).expect("metrics b written"),
        "same-seed metrics must be byte-identical"
    );

    let file = format!("--file={}", trace_a.display());
    commands::trace_check(&raw(&[&file])).expect("default required spans present");
    commands::trace_check(&raw(&[&file, "--require=rpol.transport.exchange"]))
        .expect("transport events present in a faulty trace");
    assert!(
        commands::trace_check(&raw(&[&file, "--require=no.such.span"])).is_err(),
        "missing span must fail the check"
    );
    for path in [trace_a, trace_b, metrics_a, metrics_b] {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn overhead_metrics_out_parses_and_covers_schemes() {
    let _g = lock();
    let metrics = tmp("overhead-metrics.json");
    commands::overhead(&raw(&[
        "--workers=10",
        "--faults=lossy",
        &format!("--metrics-out={}", metrics.display()),
    ]))
    .expect("overhead with metrics sink runs");
    let text = std::fs::read_to_string(&metrics).expect("metrics written");
    let value = rpol_json::parse(&text).expect("metrics JSON parses");
    let counters = value.get("counters").expect("counters section");
    for scheme in ["Baseline", "RPoLv1", "RPoLv2"] {
        assert!(
            counters
                .get(&format!("cli.overhead.{scheme}.comm_bytes"))
                .is_some(),
            "missing comm bytes for {scheme}"
        );
    }
    let _ = std::fs::remove_file(metrics);
}

#[test]
fn trace_check_rejects_garbage_and_empty() {
    let _g = lock();
    let bad = tmp("bad.jsonl");
    std::fs::write(&bad, "not json\n").expect("write");
    let file = format!("--file={}", bad.display());
    assert!(commands::trace_check(&raw(&[&file])).is_err());
    std::fs::write(&bad, "").expect("write");
    assert!(commands::trace_check(&raw(&[&file])).is_err());
    assert!(commands::trace_check(&raw(&["--file=/no/such/file.jsonl"])).is_err());
    let _ = std::fs::remove_file(bad);
}
