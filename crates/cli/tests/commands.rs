//! Integration tests driving the CLI commands as library calls.

use rpol_cli::commands;

fn raw(items: &[&str]) -> Vec<String> {
    items.iter().map(|s| s.to_string()).collect()
}

#[test]
fn soundness_runs_with_defaults_and_overrides() {
    commands::soundness(&raw(&[])).expect("defaults work");
    commands::soundness(&raw(&["--pr-err=0.05", "--pr-beta=0.1", "--c-train=0.5"]))
        .expect("overrides work");
    assert!(commands::soundness(&raw(&["--pr-err=2.0"])).is_err());
    assert!(commands::soundness(&raw(&["--bogus=1"])).is_err());
}

#[test]
fn overhead_covers_all_models() {
    for model in ["resnet18", "resnet50", "vgg16"] {
        commands::overhead(&raw(&[&format!("--model={model}"), "--workers=10"]))
            .expect("model works");
    }
    assert!(commands::overhead(&raw(&["--model=alexnet"])).is_err());
    assert!(commands::overhead(&raw(&["--workers=0"])).is_err());
}

#[test]
fn pool_runs_small_and_validates() {
    commands::pool(&raw(&[
        "--scheme=v1",
        "--workers=3",
        "--adversaries=1",
        "--epochs=1",
    ]))
    .expect("small pool runs");
    assert!(commands::pool(&raw(&["--scheme=zk"])).is_err());
    assert!(commands::pool(&raw(&["--workers=2", "--adversaries=2"])).is_err());
}

#[test]
fn calibrate_runs_small() {
    commands::calibrate(&raw(&["--epochs=1", "--steps=4"])).expect("calibrates");
}
