//! CLI command implementations.

use crate::args::Args;
use rpol::adversary::WorkerBehavior;
use rpol::calibrate::{CalibrationPolicy, Calibrator};
use rpol::client::{ClientTuning, WorkerClient};
use rpol::committee::Hierarchy;
use rpol::economics::EconomicModel;
use rpol::mining::{DifficultyController, MiningCompetition};
use rpol::pool::{MiningPool, PoolConfig, Scheme};
use rpol::sampling::soundness_table;
use rpol::server::{
    run_socket_pool, BindAddr, PoolServer, ReactorBackend, ServerConfig, SocketRunOptions,
};
use rpol::tasks::TaskConfig;
use rpol::timing::{epoch_breakdown, epoch_breakdown_faulty, TimingConfig};
use rpol::transport::{FaultConfig, FaultProfile, RetryPolicy};
use rpol::wire::{self, NetControl};
use rpol_chain::task::TrainingTask;
use rpol_json::Value;
use rpol_nn::data::SyntheticImages;
use rpol_obs::export::{events_to_jsonl, render_table, snapshot_to_json};
use rpol_obs::MetricsSnapshot;
use rpol_sim::cost::CostModel;
use rpol_sim::gpu::GpuModel;
use rpol_sim::net::NetworkModel;
use rpol_sim::workload::{DatasetKind, ModelKind, Workload};
use rpol_tensor::rng::Pcg32;
use std::fs;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Reads the shared fault-profile options (`--faults`, `--fault-seed`,
/// `--drop`, `--corrupt`, `--truncate`). Returns `None` when the perfect
/// legacy channels should be used; any rate override enables the
/// transport on top of an ideal base profile.
fn fault_config(args: &Args) -> Result<Option<FaultConfig>, String> {
    let name = args.string("faults", "none");
    let overridden = ["drop", "corrupt", "truncate"]
        .iter()
        .any(|k| args.get(k).is_some());
    let profile = match name.as_str() {
        "none" if !overridden => return Ok(None),
        "none" => FaultProfile::ideal(),
        // A bare `--faults` parses as `faults=true`: default to lossy.
        "lossy" | "true" => FaultProfile::lossy(),
        "harsh" => FaultProfile::harsh(),
        other => return Err(format!("unknown fault profile: {other}")),
    };
    let mut fault = FaultConfig {
        profile,
        policy: RetryPolicy::default(),
        net: NetworkModel::paper_default(),
        seed: args.usize("fault-seed", 42)? as u64,
    };
    fault.profile.drop_prob = args.f64("drop", fault.profile.drop_prob)?;
    fault.profile.corrupt_prob = args.f64("corrupt", fault.profile.corrupt_prob)?;
    fault.profile.truncate_prob = args.f64("truncate", fault.profile.truncate_prob)?;
    fault
        .validate()
        .map_err(|e| format!("invalid fault options: {e}"))?;
    Ok(Some(fault))
}

const FAULT_OPTIONS: [&str; 5] = ["faults", "fault-seed", "drop", "corrupt", "truncate"];

const OBS_OPTIONS: [&str; 3] = ["trace-out", "metrics-out", "profile-out"];

/// Where `--trace-out` / `--metrics-out` / `--profile-out` should land,
/// if requested.
struct ObsSinks {
    trace: Option<String>,
    metrics: Option<String>,
    profile: Option<String>,
}

impl ObsSinks {
    fn active(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some() || self.profile.is_some()
    }
}

/// Reads the observability options and, when any sink is requested, resets
/// and enables the process-wide recorder so leaf-layer counters (tensor
/// GEMM, nn passes, commitments) land in the same export.
fn obs_setup(args: &Args) -> ObsSinks {
    let sinks = ObsSinks {
        trace: args.get("trace-out").map(str::to_string),
        metrics: args.get("metrics-out").map(str::to_string),
        profile: args.get("profile-out").map(str::to_string),
    };
    if sinks.active() {
        let rec = rpol_obs::global();
        rec.reset();
        rec.enable();
    }
    sinks
}

/// Disables the global recorder and writes the requested trace/metrics
/// files. Returns the metrics snapshot so callers can print summaries.
fn obs_finish(sinks: &ObsSinks) -> Result<Option<MetricsSnapshot>, String> {
    if !sinks.active() {
        return Ok(None);
    }
    let rec = rpol_obs::global();
    rec.disable();
    if let Some(path) = &sinks.trace {
        let jsonl = events_to_jsonl(&rec.events())
            .map_err(|e| format!("trace serialization failed: {e}"))?;
        fs::write(path, jsonl).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if let Some(path) = &sinks.profile {
        fs::write(path, rec.folded_profile()).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    let snapshot = rec.snapshot();
    if let Some(path) = &sinks.metrics {
        let json = snapshot_to_json(&snapshot)
            .map_err(|e| format!("metrics serialization failed: {e}"))?;
        fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(Some(snapshot))
}

/// Renders the Table II/III-style per-phase split from exported metrics:
/// simulated transport time per phase plus the protocol byte counters.
fn phase_breakdown_table(snapshot: &MetricsSnapshot) -> String {
    let mut rows = Vec::new();
    for (name, seconds) in &snapshot.gauges {
        if let Some(phase) = name.strip_prefix("sim.clock.time.") {
            let events = snapshot.counter(&format!("sim.clock.events.{phase}"));
            rows.push(vec![
                phase.to_string(),
                format!("{seconds:.3}"),
                events.to_string(),
            ]);
        }
    }
    let mut out = String::new();
    if !rows.is_empty() {
        out.push_str(&render_table(&["phase", "seconds", "events"], &rows));
    }
    let traffic: Vec<Vec<String>> = [
        ("broadcast", "rpol.comm.broadcast_bytes"),
        ("submission", "rpol.comm.submission_bytes"),
        ("proof", "rpol.comm.proof_bytes"),
        ("commit wire", "rpol.commit.wire_bytes"),
        ("transport wire", "rpol.transport.wire_bytes"),
    ]
    .iter()
    .filter(|(_, counter)| snapshot.counters.contains_key(*counter))
    .map(|(label, counter)| vec![label.to_string(), snapshot.counter(counter).to_string()])
    .collect();
    if !traffic.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&render_table(&["traffic", "bytes"], &traffic));
    }
    out
}

/// Prints per-command help text.
pub fn print_command_help(command: &str) {
    let text = match command {
        "pool" => {
            "rpol pool — run a mining pool\n\
             --scheme=baseline|v1|v2   verification scheme (default v2)\n\
             --workers=N               pool size (default 6)\n\
             --adversaries=N           cheating workers among them (default 2)\n\
             --epochs=N                epochs to run (default 4)\n\
             --parallel                train workers on threads\n\
             --committees=C            shard verification into C committees\n\
             \x20                          (two-tier hierarchy, DESIGN.md §15)\n\
             --committee-audit=Q       top-tier spot-audits per committee\n\
             \x20                          (default 1; requires --committees)\n\
             --json                    emit the full report as JSON\n\
             --faults=none|lossy|harsh route messages over a faulty transport\n\
             \x20                          (bare --faults means lossy)\n\
             --fault-seed=N            fault seed (default 42)\n\
             --drop=P --corrupt=P --truncate=P   override fault rates\n\
             --trace-out=FILE          write a JSONL span/event trace\n\
             --metrics-out=FILE        write the metrics registry as JSON\n\
             --profile-out=FILE        write span self-times in collapsed-stack\n\
             \x20                          (flamegraph folded) form"
        }
        "serve" => {
            "rpol serve — run the manager as a socket server\n\
             --listen=ADDR             host:port or unix:/path (default 127.0.0.1:7070)\n\
             --loopback                single-process smoke: spawn the worker\n\
             \x20                          clients on threads over a loopback socket\n\
             --scheme=baseline|v1|v2|v3  verification scheme (default v2)\n\
             --workers=N               roster size (default 6)\n\
             --adversaries=N           cheating workers among them (default 2)\n\
             --epochs=N                epochs to run (default 4)\n\
             --parallel-verify         verify sampled steps on threads\n\
             --backend=scan|readiness  reactor backend (default: readiness where\n\
             \x20                          the epoll shim exists, else scan; both\n\
             \x20                          are wire-identical)\n\
             --committees=C            shard verification into C committees\n\
             --committee-audit=Q       top-tier spot-audits per committee (default 1)\n\
             --json                    emit the full report as JSON\n\
             --faults=none|lossy|harsh chaos-proxy profile (both ends must match)\n\
             --fault-seed=N            fault seed (default 42)\n\
             --drop=P --corrupt=P --truncate=P   override fault rates\n\
             --trace-out=FILE          write a JSONL span/event trace\n\
             --metrics-out=FILE        write the metrics registry as JSON\n\
             --profile-out=FILE        write span self-times in collapsed-stack\n\
             \x20                          (flamegraph folded) form"
        }
        "worker" => {
            "rpol worker — run one worker client against a remote manager\n\
             --connect=ADDR            host:port or unix:/path (default 127.0.0.1:7070)\n\
             --id=N                    this worker's roster id (default 0)\n\
             --trace-out=FILE          write this process's JSONL trace (child\n\
             \x20                          spans under the manager's propagated\n\
             \x20                          trace context; stitch with `rpol stitch`)\n\
             --metrics-out=FILE --profile-out=FILE   as in `rpol pool`\n\
             --scheme/--workers/--adversaries/--epochs and the fault options\n\
             \x20                          must match the server's invocation exactly:\n\
             \x20                          shards, behaviours, and chaos draws all\n\
             \x20                          derive from them"
        }
        "status" => {
            "rpol status — probe a running manager's live introspection plane\n\
             --connect=ADDR     manager address (default 127.0.0.1:7070)\n\
             --json             print the raw StatusReport JSON\n\
             --timeout-ms=N     probe read timeout (default 5000)\n\
             \n\
             The probe is a plain TCP connection sending one chaos-exempt\n\
             Status frame: no handshake, no roster slot, no effect on the\n\
             run's chaos draws or deterministic trace. The report's counter\n\
             map always equals its NetStats block (tests/net_status.rs)."
        }
        "stitch" => {
            "rpol stitch — merge per-process JSONL traces into one timeline\n\
             --traces=LIST      comma-separated `name=path` or bare paths\n\
             \x20                   (file stem becomes the process name)\n\
             --out=FILE         write the merged JSONL (default: stdout)\n\
             \n\
             Events merge in (ts, process, seq) order; each line gains a\n\
             `proc` field naming its source process. With logical clocks\n\
             and propagated trace contexts the merged timeline is causally\n\
             ordered and byte-identical across same-seed runs."
        }
        "calibrate" => {
            "rpol calibrate — trace adaptive LSH calibration\n\
             --epochs=N   epochs to trace (default 4)\n\
             --steps=N    steps per epoch (default 20)"
        }
        "soundness" => {
            "rpol soundness — Theorem 2/3 analysis\n\
             --pr-err=F       target soundness error (default 0.01)\n\
             --pr-beta=F      Pr_lsh(beta) (default 0.05)\n\
             --c-train=F      honest training cost (default 0.88)"
        }
        "compete" => {
            "rpol compete — verified vs unverified pool over consensus rounds\n\
             --rounds=N    rounds to race (default 4)\n\
             --workers=N   workers per pool (default 5)"
        }
        "overhead" => {
            "rpol overhead — Table II/III analytic model\n\
             --model=resnet50|vgg16   workload (default resnet50)\n\
             --workers=N              pool size (default 100)\n\
             --faults=none|lossy|harsh   charge WAN retransmissions\n\
             --drop=P --corrupt=P --truncate=P   override fault rates\n\
             --trace-out=FILE   write scheme events as JSONL\n\
             --metrics-out=FILE write the analytic gauges as JSON"
        }
        "trace-check" => {
            "rpol trace-check — validate a --trace-out JSONL trace\n\
             --file=FILE      the trace to check (required)\n\
             --require=A,B    comma-separated span/event names that must\n\
             \x20                appear (default: the core pool spans)"
        }
        _ => "unknown command; run `rpol help`",
    };
    eprintln!("{text}");
}

/// Reads the shared pool-roster options (`--scheme`, `--workers`,
/// `--adversaries`, `--epochs`) used by `pool`, `serve`, and `worker`.
/// Both sides of a socket run must pass identical values so their
/// [`PoolConfig`]s (and thus data shards and chaos draws) match.
fn roster_config(args: &Args) -> Result<(Scheme, usize, usize, usize), String> {
    let scheme = match args.string("scheme", "v2").as_str() {
        "baseline" => Scheme::Baseline,
        "v1" => Scheme::RPoLv1,
        "v2" => Scheme::RPoLv2,
        "v3" => Scheme::RPoLv3,
        other => return Err(format!("unknown scheme: {other}")),
    };
    let workers = args.usize("workers", 6)?;
    let adversaries = args.usize("adversaries", 2)?;
    let epochs = args.usize("epochs", 4)?;
    if adversaries >= workers {
        return Err("need at least one honest worker".to_string());
    }
    Ok((scheme, workers, adversaries, epochs))
}

const ROSTER_OPTIONS: [&str; 4] = ["scheme", "workers", "adversaries", "epochs"];

const HIERARCHY_OPTIONS: [&str; 2] = ["committees", "committee-audit"];

/// Reads the two-tier committee options (`--committees`, `--committee-audit`)
/// shared by `pool` and `serve`. Returns `None` when neither flag is given
/// (flat pipeline); otherwise validates the hierarchy against the scheme,
/// the fault config, and the concrete roster before handing it back.
fn hierarchy_config(
    args: &Args,
    scheme: Scheme,
    workers: usize,
    fault: Option<&FaultConfig>,
    seed: u64,
) -> Result<Option<Hierarchy>, String> {
    if args.get("committees").is_none() {
        if args.get("committee-audit").is_some() {
            return Err("--committee-audit requires --committees".to_string());
        }
        return Ok(None);
    }
    let committees = args.usize("committees", 1)?;
    let q_top = args.usize("committee-audit", 1)?;
    if matches!(scheme, Scheme::Baseline) {
        return Err(
            "--committees requires a verifying scheme (v1/v2/v3): the baseline \
             emits no verdicts to commit"
                .to_string(),
        );
    }
    if fault.is_some() {
        return Err("--committees cannot be combined with --faults".to_string());
    }
    let hierarchy = Hierarchy::new(committees, q_top)?;
    hierarchy.validate(workers, seed)?;
    Ok(Some(hierarchy))
}

/// The canonical adversary mix: the first `adversaries` workers alternate
/// Adv2 and replay attacks, the rest are honest.
fn roster_behaviors(workers: usize, adversaries: usize) -> Vec<WorkerBehavior> {
    (0..workers)
        .map(|i| {
            if i < adversaries {
                if i % 2 == 0 {
                    WorkerBehavior::adv2_default()
                } else {
                    WorkerBehavior::ReplayPrevious
                }
            } else {
                WorkerBehavior::Honest
            }
        })
        .collect()
}

/// Builds the [`PoolConfig`] both ends of a socket run agree on.
fn roster_pool_config(
    args: &Args,
    scheme: Scheme,
    workers: usize,
    epochs: usize,
) -> Result<PoolConfig, String> {
    let mut config = PoolConfig::paper_like(TaskConfig::task_a(), scheme, epochs);
    config.train_samples = 160 * (workers + 1);
    config.fault = fault_config(args)?;
    Ok(config)
}

/// One-line summary of the socket layer's final counters.
fn net_summary(net: &rpol::server::NetStats) -> String {
    format!(
        "net: {} accepted, {} handshakes, {} frames in / {} out, \
         {:.2} MB in / {:.2} MB out, {} corrupt, {} shed, {} evicted, {} disconnects",
        net.accepted,
        net.handshakes,
        net.frames_in,
        net.frames_out,
        net.bytes_in as f64 / 1e6,
        net.bytes_out as f64 / 1e6,
        net.corrupt_frames,
        net.shed_submissions,
        net.evicted,
        net.disconnects,
    )
}

/// `rpol pool` — run one pool and print its per-epoch report.
pub fn pool(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw)?;
    let mut allowed = vec!["parallel", "json"];
    allowed.extend(ROSTER_OPTIONS);
    allowed.extend(HIERARCHY_OPTIONS);
    allowed.extend(FAULT_OPTIONS);
    allowed.extend(OBS_OPTIONS);
    args.expect_only(&allowed)?;
    let (scheme, workers, adversaries, epochs) = roster_config(&args)?;
    let mut config = roster_pool_config(&args, scheme, workers, epochs)?;
    config.hierarchy =
        hierarchy_config(&args, scheme, workers, config.fault.as_ref(), config.seed)?;
    let fault = config.fault;
    let behaviors = roster_behaviors(workers, adversaries);
    let sinks = obs_setup(&args);
    let mut pool = MiningPool::new(config, behaviors);
    if sinks.active() {
        pool = pool.with_recorder(rpol_obs::global().clone());
    }
    let report = if args.get("parallel").is_some() {
        pool.run_parallel()
    } else {
        pool.run()
    };
    let snapshot = obs_finish(&sinks)?;

    if args.get("json").is_some() {
        let json = rpol_json::to_string_pretty(&report)
            .map_err(|e| format!("report serialization failed: {e}"))?;
        println!("{json}");
        return Ok(());
    }

    println!("{scheme} pool, {workers} workers ({adversaries} adversarial), {epochs} epochs");
    println!(
        "{:>6} {:>10} {:>9} {:>9} {:>12} {:>14}",
        "epoch", "accuracy", "accepted", "rejected", "quarantined", "double-checks"
    );
    for rec in &report.epochs {
        println!(
            "{:>6} {:>9.1}% {:>9} {:>9} {:>12} {:>14}",
            rec.report.epoch + 1,
            rec.test_accuracy * 100.0,
            rec.report.accepted.len(),
            rec.report.rejected.len(),
            rec.report.quarantined.len(),
            rec.report.double_checks,
        );
    }
    println!(
        "total: {} rejected submissions, {:.1} MB moved, {:.1} MB checkpoint storage, {:.2}s wall",
        report.rejections(),
        report.total_comm_bytes() as f64 / 1e6,
        report.worker_storage_bytes as f64 / 1e6,
        report.total_wall_seconds(),
    );
    if config.hierarchy.is_some() {
        let h: Vec<_> = report
            .epochs
            .iter()
            .filter_map(|rec| rec.report.hierarchy)
            .collect();
        let peak = report
            .epochs
            .iter()
            .map(|rec| rec.report.peak_commit_bytes)
            .max()
            .unwrap_or(0);
        println!(
            "hierarchy: {} committees, {} verdicts, {} audits ({} mismatched), \
             {:.1} kB batches, {:.1} kB peak commit memory",
            h.first().map(|r| r.committees).unwrap_or(0),
            h.iter().map(|r| r.verdicts).sum::<u64>(),
            h.iter().map(|r| r.audits).sum::<u64>(),
            h.iter().map(|r| r.audit_mismatches).sum::<u64>(),
            h.iter().map(|r| r.batch_bytes).sum::<u64>() as f64 / 1e3,
            peak as f64 / 1e3,
        );
    }
    if fault.is_some() {
        let t = report.transport_totals();
        println!(
            "transport: {} exchanges, {} retries, {} drops, {} corruptions, {} timeouts, \
             {} dead links, {:.1} MB on the wire",
            t.exchanges,
            t.retries,
            t.drops,
            t.corruptions,
            t.timeouts,
            t.failures,
            t.wire_bytes as f64 / 1e6,
        );
    }
    if let Some(snapshot) = &snapshot {
        let table = phase_breakdown_table(snapshot);
        if !table.is_empty() {
            println!("\nper-phase breakdown (metrics registry):");
            print!("{table}");
        }
    }
    Ok(())
}

/// `rpol calibrate` — print per-epoch α/β/LSH parameters.
pub fn calibrate(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw)?;
    args.expect_only(&["epochs", "steps"])?;
    let epochs = args.usize("epochs", 4)? as u64;
    let steps = args.usize("steps", 20)?;

    let cfg = TaskConfig::task_a();
    let data = SyntheticImages::generate(&cfg.spec, 400, &mut Pcg32::seed_from(0xC11));
    let shards = data.shard(2);
    let calibrator = Calibrator::new(
        &cfg,
        &shards[0],
        CalibrationPolicy::default(),
        GpuModel::top2(),
    );
    let mut global = cfg.build_model().flatten_params();
    println!(
        "{:>6} {:>12} {:>12} {:>14} {:>12} {:>12}",
        "epoch", "alpha", "beta", "LSH {r,k,l}", "Pr_lsh(α)", "Pr_lsh(β)"
    );
    for epoch in 0..epochs {
        let (cal, trained) = calibrator.calibrate(&global, 0xA0 ^ epoch, steps, epoch);
        println!(
            "{:>6} {:>12.3e} {:>12.3e} {:>14} {:>11.1}% {:>11.1}%",
            epoch + 1,
            cal.alpha,
            cal.beta,
            format!("{{{:.1e},{},{}}}", cal.params.r, cal.params.k, cal.params.l),
            cal.tuning.pr_alpha * 100.0,
            cal.tuning.pr_beta * 100.0,
        );
        global = trained;
    }
    Ok(())
}

/// `rpol soundness` — Theorem 2/3 tables.
pub fn soundness(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw)?;
    args.expect_only(&["pr-err", "pr-beta", "c-train"])?;
    let pr_err = args.f64("pr-err", 0.01)?;
    let pr_beta = args.f64("pr-beta", 0.05)?;
    let c_train = args.f64("c-train", 0.88)?;
    if !(0.0..1.0).contains(&pr_err) || pr_err <= 0.0 {
        return Err("--pr-err must be in (0, 1)".to_string());
    }
    let ratios: Vec<f64> = (1..10).map(|i| i as f64 / 10.0).collect();

    println!(
        "Theorem 2 — samples for soundness error ≤ {:.2}%:",
        pr_err * 100.0
    );
    println!("{:>8} {:>6} {:>16}", "h_A", "q", "achieved error");
    for point in soundness_table(pr_err, pr_beta, &ratios) {
        println!(
            "{:>7.0}% {:>6} {:>15.3}%",
            point.honesty_ratio * 100.0,
            point.q,
            point.achieved_error * 100.0
        );
    }

    let econ = EconomicModel {
        c_train,
        pr_lsh_beta: pr_beta,
        ..EconomicModel::paper_example()
    };
    println!("\nTheorem 3 — economic deterrence (C_train = {c_train}):");
    println!("{:>8} {:>6} {:>14}", "h_A", "q", "gain at that q");
    for &h in &ratios {
        let q = econ.samples_to_deter(h);
        println!(
            "{:>7.0}% {:>6} {:>+14.3}",
            h * 100.0,
            q,
            econ.adversary_gain(h, q)
        );
    }
    Ok(())
}

/// `rpol compete` — verified vs unverified pool.
pub fn compete(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw)?;
    args.expect_only(&["rounds", "workers"])?;
    let rounds = args.usize("rounds", 4)?;
    let workers = args.usize("workers", 5)?;
    if workers < 3 {
        return Err("--workers must be at least 3".to_string());
    }

    let cfg = TaskConfig::task_a();
    let task = TrainingTask::new(0, cfg.spec, 160 * (workers + 1), 300, 0x0C0, 3);
    let controller = DifficultyController::new(0.90, 3, 2, 6);
    let mut competition = MiningCompetition::new(task, cfg, controller, 100.0);
    let mut behaviors = vec![WorkerBehavior::Honest; workers];
    for (i, b) in behaviors.iter_mut().take(workers * 2 / 5).enumerate() {
        *b = if i % 2 == 0 {
            WorkerBehavior::adv2_default()
        } else {
            WorkerBehavior::ReplayPrevious
        };
    }
    let mut config = PoolConfig::paper_like(cfg, Scheme::RPoLv2, 3);
    config.train_samples = 160 * (workers + 1);
    competition.register("rpol-pool", config, behaviors.clone());
    let mut config = PoolConfig::paper_like(cfg, Scheme::Baseline, 3);
    config.train_samples = 160 * (workers + 1);
    competition.register("baseline-pool", config, behaviors);

    println!("racing {rounds} rounds, {workers} workers per pool (~40% adversarial)...");
    let report = competition.run(rounds);
    for (name, wins, rewards) in &report.standings {
        println!("{name:<14} won {wins}/{rounds} blocks, {rewards:.0} reward units");
    }
    Ok(())
}

/// `rpol overhead` — the analytic Table II/III model.
pub fn overhead(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw)?;
    let mut allowed = vec!["model", "workers"];
    allowed.extend(FAULT_OPTIONS);
    allowed.extend(OBS_OPTIONS);
    args.expect_only(&allowed)?;
    let model = match args.string("model", "resnet50").as_str() {
        "resnet50" => ModelKind::ResNet50,
        "vgg16" => ModelKind::Vgg16,
        "resnet18" => ModelKind::ResNet18,
        other => return Err(format!("unknown model: {other}")),
    };
    let workers = args.usize("workers", 100)?;
    if workers == 0 {
        return Err("--workers must be positive".to_string());
    }
    let workload = Workload::new(model, DatasetKind::ImageNet);
    let cost = CostModel::paper_default();
    let fault = fault_config(&args)?;

    match &fault {
        None => println!("{model} on ImageNet, {workers} workers (analytic model):"),
        Some(f) => println!(
            "{model} on ImageNet, {workers} workers (analytic model, \
             {:.0}% drop / {:.0}% corrupt / {:.0}% truncate):",
            f.profile.drop_prob * 100.0,
            f.profile.corrupt_prob * 100.0,
            f.profile.truncate_prob * 100.0,
        ),
    }
    let sinks = obs_setup(&args);
    println!(
        "{:<10} {:>11} {:>12} {:>11} {:>12} {:>10}",
        "scheme", "epoch time", "manager cpu", "comm", "storage/W", "cost"
    );
    let mut phase_rows = Vec::new();
    for scheme in [
        Scheme::Baseline,
        Scheme::RPoLv1,
        Scheme::RPoLv2,
        Scheme::RPoLv3,
    ] {
        let cfg = TimingConfig::paper_setting(workload, scheme, workers);
        let b = match &fault {
            None => epoch_breakdown(&cfg),
            Some(f) => epoch_breakdown_faulty(&cfg, &f.profile, &f.policy),
        };
        println!(
            "{:<10} {:>10.0}s {:>11.0}s {:>9.1}GB {:>10.1}GB {:>9.2}$",
            scheme.to_string(),
            b.epoch_seconds(),
            b.manager_compute_s(),
            b.comm_bytes as f64 / 1e9,
            b.storage_per_worker_bytes as f64 / 1e9,
            b.capital_cost_usd(workers, &cost),
        );
        phase_rows.push(vec![
            scheme.to_string(),
            format!("{:.0}", b.worker_compute_s),
            format!("{:.0}", b.manager_verify_s),
            format!("{:.0}", b.manager_calibrate_s),
            format!("{:.0}", b.comm_s),
            b.comm_bytes.to_string(),
        ]);
        if sinks.active() {
            let rec = rpol_obs::global();
            let tag = scheme.to_string();
            rec.gauge_set(&format!("cli.overhead.{tag}.train_s"), b.worker_compute_s);
            rec.gauge_set(&format!("cli.overhead.{tag}.verify_s"), b.manager_verify_s);
            rec.gauge_set(
                &format!("cli.overhead.{tag}.calibrate_s"),
                b.manager_calibrate_s,
            );
            rec.gauge_set(&format!("cli.overhead.{tag}.comm_s"), b.comm_s);
            rec.counter_add(&format!("cli.overhead.{tag}.comm_bytes"), b.comm_bytes);
            rpol_obs::event!(
                rec,
                "cli.overhead.scheme",
                scheme = tag.as_str(),
                comm_bytes = b.comm_bytes
            );
        }
    }
    println!("\nper-phase breakdown (analytic, seconds):");
    print!(
        "{}",
        render_table(
            &[
                "scheme",
                "train",
                "verify",
                "calibrate",
                "comm",
                "comm bytes"
            ],
            &phase_rows,
        )
    );
    obs_finish(&sinks)?;
    Ok(())
}

/// Span/event names every pool trace must contain; `trace-check` verifies
/// them unless overridden with `--require`.
const REQUIRED_TRACE_NAMES: [&str; 3] = [
    "rpol.pool.epoch",
    "rpol.worker.train_epoch",
    "rpol.verify.worker",
];

/// `rpol trace-check` — validate a `--trace-out` JSONL file: every line
/// parses as a JSON object with a `name`, and all required names appear.
pub fn trace_check(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw)?;
    args.expect_only(&["file", "require"])?;
    let path = args
        .get("file")
        .ok_or_else(|| "trace-check needs --file <trace.jsonl>".to_string())?;
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut names = std::collections::BTreeSet::new();
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        let value =
            rpol_json::parse(line).map_err(|e| format!("{path}:{}: invalid JSON: {e}", i + 1))?;
        let name = value
            .get("name")
            .and_then(|n| n.as_str())
            .ok_or_else(|| format!("{path}:{}: event has no string `name`", i + 1))?;
        names.insert(name.to_string());
        lines += 1;
    }
    if lines == 0 {
        return Err(format!("{path}: trace is empty"));
    }
    let required: Vec<String> = match args.get("require") {
        Some(list) => list.split(',').map(str::to_string).collect(),
        None => REQUIRED_TRACE_NAMES.iter().map(|s| s.to_string()).collect(),
    };
    for name in &required {
        if !names.contains(name) {
            return Err(format!("{path}: missing required span/event `{name}`"));
        }
    }
    println!(
        "{path}: {lines} events, {} distinct names, {} required present",
        names.len(),
        required.len()
    );
    Ok(())
}

/// `rpol serve` — stand the manager up as a socket server.
pub fn serve(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw)?;
    let mut allowed = vec!["listen", "loopback", "parallel-verify", "json", "backend"];
    allowed.extend(ROSTER_OPTIONS);
    allowed.extend(HIERARCHY_OPTIONS);
    allowed.extend(FAULT_OPTIONS);
    allowed.extend(OBS_OPTIONS);
    args.expect_only(&allowed)?;
    let (scheme, workers, adversaries, epochs) = roster_config(&args)?;
    let mut config = roster_pool_config(&args, scheme, workers, epochs)?;
    config.hierarchy =
        hierarchy_config(&args, scheme, workers, config.fault.as_ref(), config.seed)?;
    let behaviors = roster_behaviors(workers, adversaries);
    let backend = match args.get("backend") {
        Some(v) => ReactorBackend::parse(v)
            .ok_or_else(|| format!("--backend={v}: expected `scan` or `readiness`"))?,
        None => ServerConfig::default().backend,
    };
    let server_cfg = ServerConfig {
        parallel_verify: args.get("parallel-verify").is_some(),
        backend,
        ..ServerConfig::default()
    };
    let sinks = obs_setup(&args);

    let (report, net) = if args.get("loopback").is_some() {
        // Single-process smoke mode: spawn the worker clients ourselves
        // and run the whole epoch sequence over a loopback socket.
        let options = SocketRunOptions {
            server: server_cfg,
            client: ClientTuning::default(),
            recorder: sinks.active().then(|| rpol_obs::global().clone()),
            ..SocketRunOptions::default()
        };
        let outcome = run_socket_pool(config, behaviors, options)
            .map_err(|e| format!("loopback run: {e}"))?;
        for client in &outcome.clients {
            println!(
                "worker {}: {} epochs trained, {} proofs served, {} reconnects, \
                 {} corrupt frames, {:.2} MB checkpoints, {}",
                client.worker_id,
                client.epochs_trained,
                client.proofs_served,
                client.reconnects,
                client.corrupt_frames,
                client.storage_bytes as f64 / 1e6,
                if client.clean_shutdown {
                    "clean shutdown"
                } else {
                    "gave up"
                },
            );
        }
        (outcome.report, outcome.net)
    } else {
        let addr = BindAddr::parse(&args.string("listen", "127.0.0.1:7070"));
        let mut pool = MiningPool::new(config, behaviors);
        if sinks.active() {
            pool = pool.with_recorder(rpol_obs::global().clone());
        }
        let mut server =
            PoolServer::bind(pool, &addr, server_cfg).map_err(|e| format!("bind: {e}"))?;
        eprintln!(
            "listening on {} — waiting for {} workers (`rpol worker --connect=... --id=N`)",
            server.local_addr(),
            workers
        );
        let report = server.run().map_err(|e| format!("serve: {e}"))?;
        let net = server.net_stats();
        (report, net)
    };
    let snapshot = obs_finish(&sinks)?;

    if args.get("json").is_some() {
        let json = rpol_json::to_string_pretty(&report)
            .map_err(|e| format!("report serialization failed: {e}"))?;
        println!("{json}");
        return Ok(());
    }
    println!(
        "{scheme} pool over sockets, {workers} workers ({adversaries} adversarial), \
         {epochs} epochs, {} reactor",
        backend.name()
    );
    for rec in &report.epochs {
        println!(
            "epoch {}: {:.1}% accuracy, {} accepted, {} rejected, {} quarantined, {:.2}s wall",
            rec.report.epoch + 1,
            rec.test_accuracy * 100.0,
            rec.report.accepted.len(),
            rec.report.rejected.len(),
            rec.report.quarantined.len(),
            rec.wall_seconds,
        );
    }
    println!("{}", net_summary(&net));
    if let Some(snapshot) = &snapshot {
        let table = phase_breakdown_table(snapshot);
        if !table.is_empty() {
            println!("\nper-phase breakdown (metrics registry):");
            print!("{table}");
        }
    }
    Ok(())
}

/// `rpol worker` — run one worker client against a remote manager.
pub fn worker(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw)?;
    let mut allowed = vec!["connect", "id"];
    allowed.extend(ROSTER_OPTIONS);
    allowed.extend(FAULT_OPTIONS);
    allowed.extend(OBS_OPTIONS);
    args.expect_only(&allowed)?;
    let (scheme, workers, adversaries, epochs) = roster_config(&args)?;
    let id = args.usize("id", 0)?;
    if id >= workers {
        return Err(format!("--id={id} out of range for --workers={workers}"));
    }
    let addr = args.string("connect", "127.0.0.1:7070");
    // The roster options must match the server's invocation exactly:
    // data shards, behaviours, and chaos draws all derive from them.
    let config = roster_pool_config(&args, scheme, workers, epochs)?;
    let behaviors = roster_behaviors(workers, adversaries);
    let worker = MiningPool::new(config, behaviors)
        .into_workers()
        .into_iter()
        .nth(id)
        .expect("id checked against roster");
    eprintln!("worker {id} connecting to {addr}");
    let sinks = obs_setup(&args);
    let mut client = WorkerClient::new(config, worker, addr, ClientTuning::default());
    if sinks.active() {
        client = client.with_recorder(rpol_obs::global().clone());
    }
    let report = client.run();
    obs_finish(&sinks)?;
    println!(
        "worker {}: {} epochs trained, {} proofs served, {} reconnects, {} heartbeats, \
         {} busy rejects, {} corrupt frames, {:.2} MB checkpoints, {}",
        report.worker_id,
        report.epochs_trained,
        report.proofs_served,
        report.reconnects,
        report.heartbeats,
        report.busy_rejects,
        report.corrupt_frames,
        report.storage_bytes as f64 / 1e6,
        if report.clean_shutdown {
            "clean shutdown"
        } else {
            "gave up"
        },
    );
    if !report.clean_shutdown {
        return Err("worker gave up before the server shut the session down".to_string());
    }
    Ok(())
}

/// `rpol status` — probe a running manager's live introspection plane.
///
/// Sends a chaos-exempt `NetControl::Status` frame over a fresh TCP
/// connection (no handshake needed) and renders the `StatusReport`. The
/// probe never joins the roster, so polling a live run perturbs neither
/// the protocol nor the deterministic trace.
pub fn status(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw)?;
    args.expect_only(&["connect", "json", "timeout-ms"])?;
    let addr = args.string("connect", "127.0.0.1:7070");
    if addr.starts_with("unix:") {
        return Err("status probes are TCP-only; use --connect host:port".to_string());
    }
    let timeout = Duration::from_millis(args.usize("timeout-ms", 5000)? as u64);
    let mut stream =
        TcpStream::connect(&addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("socket setup: {e}"))?;
    let framed = wire::seal_frame(&wire::encode_net_control(&NetControl::Status));
    stream
        .write_all(&framed)
        .map_err(|e| format!("cannot send status probe: {e}"))?;

    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let payload = loop {
        let k = stream
            .read(&mut chunk)
            .map_err(|e| format!("reading status report: {e}"))?;
        if k == 0 {
            return Err("manager closed the connection before answering".to_string());
        }
        buf.extend_from_slice(&chunk[..k]);
        if buf.len() >= 16 {
            if let Ok(payload) = wire::open_frame(bytes::Bytes::from(buf.clone())) {
                break payload;
            }
        }
    };
    let NetControl::StatusReport { json } =
        wire::decode_net_control(payload).map_err(|e| format!("malformed status report: {e:?}"))?
    else {
        return Err("manager answered with a non-status control frame".to_string());
    };

    if args.get("json").is_some() {
        println!("{json}");
        return Ok(());
    }
    let v = rpol_json::parse(&json).map_err(|e| format!("status report is not JSON: {e}"))?;
    let num = |path: &Value, key: &str| path.get(key).and_then(|x| x.as_u64()).unwrap_or(0);
    println!(
        "manager at {addr} — protocol {}, {} workers live, {} submissions inflight",
        num(&v, "protocol"),
        num(&v, "workers"),
        num(&v, "inflight"),
    );
    let backend = v.get("backend").and_then(|b| b.as_str()).unwrap_or("?");
    if let Some(q) = v.get("queues") {
        println!(
            "reactor: {backend} backend — pump queues: {} readable, {} writable, {} timer-due",
            num(q, "readable"),
            num(q, "writable"),
            num(q, "timer"),
        );
    }
    if let Some(p) = v.get("progress") {
        println!(
            "progress: epoch {}/{}, {} accepted, {} rejected, {} quarantined, \
             {} shed, {} committees, {:.1} kB peak commit memory",
            num(p, "epochs_done"),
            num(p, "epochs_total"),
            num(p, "accepted"),
            num(p, "rejected"),
            num(p, "quarantined"),
            num(p, "shed"),
            num(p, "committees"),
            num(p, "peak_commit_bytes") as f64 / 1e3,
        );
    }
    if let Some(rows) = v.get("connections").and_then(|c| c.as_array()) {
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|c| {
                vec![
                    num(c, "slot").to_string(),
                    c.get("worker")
                        .and_then(|w| w.as_f64())
                        .map(|w| {
                            if w < 0.0 {
                                "-".to_string()
                            } else {
                                format!("{w:.0}")
                            }
                        })
                        .unwrap_or_else(|| "-".to_string()),
                    c.get("phase")
                        .and_then(|p| p.as_str())
                        .unwrap_or("?")
                        .to_string(),
                    num(c, "idle_ms").to_string(),
                    num(c, "outbox").to_string(),
                ]
            })
            .collect();
        if !table.is_empty() {
            print!(
                "{}",
                render_table(&["slot", "worker", "phase", "idle ms", "outbox"], &table)
            );
        }
    }
    if let Some(entries) = v.get("counters").and_then(|c| c.entries()) {
        let rows: Vec<Vec<String>> = entries
            .iter()
            .map(|(name, val)| {
                vec![
                    name.clone(),
                    val.as_u64().map(|u| u.to_string()).unwrap_or_default(),
                ]
            })
            .collect();
        print!("{}", render_table(&["counter", "value"], &rows));
    }
    Ok(())
}

/// `rpol stitch` — merge per-process `--trace-out` JSONL traces into one
/// causally-ordered timeline (DESIGN.md §16). Each `--traces` entry is
/// `name=path` or a bare path (the file stem becomes the process name).
pub fn stitch(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw)?;
    args.expect_only(&["traces", "out"])?;
    let spec = args
        .get("traces")
        .ok_or_else(|| "stitch needs --traces a.jsonl,b.jsonl or name=path,...".to_string())?;
    let mut named: Vec<(String, String)> = Vec::new();
    for entry in spec.split(',').filter(|e| !e.is_empty()) {
        let (name, path) = match entry.split_once('=') {
            Some((name, path)) => (name.to_string(), path),
            None => {
                let stem = std::path::Path::new(entry)
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or(entry);
                (stem.to_string(), entry)
            }
        };
        let jsonl = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        named.push((name, jsonl));
    }
    let refs: Vec<(&str, &str)> = named
        .iter()
        .map(|(name, jsonl)| (name.as_str(), jsonl.as_str()))
        .collect();
    let merged = rpol_obs::stitch::stitch(&refs)?;
    match args.get("out") {
        Some(path) => {
            fs::write(path, &merged).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!(
                "stitched {} traces, {} events -> {path}",
                refs.len(),
                merged.lines().count()
            );
        }
        None => print!("{merged}"),
    }
    Ok(())
}
