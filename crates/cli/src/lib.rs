//! Library surface of the `rpol` CLI: argument parsing and command
//! implementations, exposed for integration testing.

pub mod args;
pub mod commands;
