//! `rpol` — command-line interface to the RPoL reproduction.
//!
//! ```text
//! rpol pool        run a mining pool with a configurable adversary mix
//! rpol serve       run the manager as a socket server
//! rpol worker      run one worker client against a remote manager
//! rpol status      probe a running manager's live introspection plane
//! rpol stitch      merge per-process JSONL traces into one timeline
//! rpol calibrate   trace the adaptive LSH calibration across epochs
//! rpol soundness   print the Theorem 2/3 sample-count analysis
//! rpol compete     race a verified pool against an unverified one
//! rpol overhead    print the Table II/III analytic overhead model
//! rpol trace-check validate a --trace-out JSONL trace
//! ```
//!
//! Run `rpol help` or `rpol <command> --help` for options.

use rpol_cli::commands;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        print_usage();
        return ExitCode::FAILURE;
    };
    let rest = &argv[1..];
    if rest.iter().any(|a| a == "--help" || a == "-h") {
        commands::print_command_help(command);
        return ExitCode::SUCCESS;
    }
    let result = match command.as_str() {
        "pool" => commands::pool(rest),
        "serve" => commands::serve(rest),
        "worker" => commands::worker(rest),
        "status" => commands::status(rest),
        "stitch" => commands::stitch(rest),
        "calibrate" => commands::calibrate(rest),
        "soundness" => commands::soundness(rest),
        "compete" => commands::compete(rest),
        "overhead" => commands::overhead(rest),
        "trace-check" => commands::trace_check(rest),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command: {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "rpol — robust & efficient proof of learning (ICDCS 2023 reproduction)\n\
         \n\
         usage: rpol <command> [options]\n\
         \n\
         commands:\n\
         \x20 pool        run a mining pool with a configurable adversary mix\n\
         \x20 serve       run the manager as a socket server\n\
         \x20 worker      run one worker client against a remote manager\n\
         \x20 status      probe a running manager's live introspection plane\n\
         \x20 stitch      merge per-process JSONL traces into one timeline\n\
         \x20 calibrate   trace the adaptive LSH calibration across epochs\n\
         \x20 soundness   print the Theorem 2/3 sample-count analysis\n\
         \x20 compete     race a verified pool against an unverified one\n\
         \x20 overhead    print the Table II/III analytic overhead model\n\
         \x20 trace-check validate a --trace-out JSONL trace\n\
         \x20 help        show this message\n\
         \n\
         run `rpol <command> --help` for the command's options"
    );
}
