//! Minimal `--key=value` / `--key value` argument parsing (no external
//! dependencies).

/// Parsed `--key=value` / `--key value` / `--flag` arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    /// Parses raw arguments. A `--key` followed by a token that is not
    /// itself an option takes that token as its value (`--trace-out t.jsonl`);
    /// otherwise it is a bare flag.
    ///
    /// # Errors
    ///
    /// Returns a message for any token that is neither an option nor the
    /// value of the preceding option.
    pub fn parse(raw: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let Some(body) = raw[i].strip_prefix("--") else {
                return Err(format!("unexpected argument: {}", raw[i]));
            };
            match body.split_once('=') {
                Some((k, v)) => pairs.push((k.to_string(), v.to_string())),
                None => match raw.get(i + 1) {
                    Some(next) if !next.starts_with("--") => {
                        pairs.push((body.to_string(), next.clone()));
                        i += 1;
                    }
                    _ => pairs.push((body.to_string(), "true".to_string())),
                },
            }
            i += 1;
        }
        Ok(Self { pairs })
    }

    /// The raw value of `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// A `usize` option with a default.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub fn usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got {v}")),
        }
    }

    /// An `f64` option with a default.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub fn f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a number, got {v}")),
        }
    }

    /// A string option with a default.
    pub fn string(&self, key: &str, default: &str) -> String {
        self.get(key).unwrap_or(default).to_string()
    }

    /// Rejects any key outside `allowed` (catches typos).
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown option.
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), String> {
        for (k, _) in &self.pairs {
            if !allowed.contains(&k.as_str()) {
                return Err(format!(
                    "unknown option --{k}; expected one of: {}",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs_and_flags() {
        let args = Args::parse(&raw(&["--epochs=5", "--verbose"])).expect("parses");
        assert_eq!(args.usize("epochs", 1).expect("int"), 5);
        assert_eq!(args.get("verbose"), Some("true"));
        assert_eq!(args.usize("missing", 7).expect("default"), 7);
    }

    #[test]
    fn last_value_wins() {
        let args = Args::parse(&raw(&["--n=1", "--n=2"])).expect("parses");
        assert_eq!(args.usize("n", 0).expect("int"), 2);
    }

    #[test]
    fn rejects_positional() {
        assert!(Args::parse(&raw(&["positional"])).is_err());
    }

    #[test]
    fn space_separated_values_attach_to_preceding_key() {
        let args = Args::parse(&raw(&[
            "--trace-out",
            "t.jsonl",
            "--faults",
            "--epochs",
            "2",
        ]))
        .expect("parses");
        assert_eq!(args.get("trace-out"), Some("t.jsonl"));
        assert_eq!(args.get("faults"), Some("true"));
        assert_eq!(args.usize("epochs", 0).expect("int"), 2);
    }

    #[test]
    fn rejects_bad_numbers() {
        let args = Args::parse(&raw(&["--n=abc"])).expect("parses");
        assert!(args.usize("n", 0).is_err());
        assert!(args.f64("n", 0.0).is_err());
    }

    #[test]
    fn expect_only_catches_typos() {
        let args = Args::parse(&raw(&["--epocs=3"])).expect("parses");
        assert!(args.expect_only(&["epochs"]).is_err());
        assert!(args.expect_only(&["epocs"]).is_ok());
    }
}
