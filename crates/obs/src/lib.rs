//! `rpol-obs`: zero-dependency observability for the RPoL workspace.
//!
//! Three pieces, one handle:
//!
//! * a lock-cheap [`MetricsRegistry`] of named counters (striped per-thread),
//!   gauges, and fixed-bucket histograms, merged on [`Recorder::snapshot`]
//!   with deterministic name-sorted ordering;
//! * a structured span/event tracer ([`span!`], [`event!`]) stamped by a
//!   pluggable [`Clock`] — [`WallClock`] in production, [`LogicalClock`] in
//!   tests and exports so same-seed runs emit byte-identical traces;
//! * JSONL / metrics-JSON / summary-table exporters built on `rpol-json`
//!   ([`export`]).
//!
//! # Recorder plumbing
//!
//! Components that can thread a handle take an explicit `Arc<Recorder>`
//! (`MiningPool::with_recorder`, `Verifier::set_recorder`, transport's
//! `exchange`), defaulting to the shared [`noop`] recorder, so tests get
//! fully isolated recorders and library users pay a single relaxed atomic
//! load when observability is off. Leaf layers that cannot thread a
//! parameter (tensor GEMM, nn forward/backward) bump counters on the
//! process-wide [`global`] recorder, which starts *disabled* and is only
//! switched on by the CLI's `--trace-out`/`--metrics-out` flags.
//!
//! Naming scheme: `crate.component.event` (e.g. `rpol.transport.retries`,
//! `tensor.gemm.flops_total`, span `rpol.verify.replay_segment`). See
//! DESIGN.md §11 for the full catalogue and the determinism contract.
//!
//! # Example
//!
//! ```
//! use rpol_obs::{Recorder, span, event};
//!
//! let rec = Recorder::logical();
//! {
//!     let _g = span!(rec, "demo.phase", epoch = 3u64);
//!     event!(rec, "demo.tick", worker = 1u64, ok = true);
//!     rec.counter_add("demo.ticks", 1);
//! }
//! let trace = rpol_obs::export::events_to_jsonl(&rec.events()).unwrap();
//! assert_eq!(trace.lines().count(), 2);
//! assert_eq!(rec.snapshot().counter("demo.ticks"), 1);
//! ```

pub mod export;
pub mod metrics;
pub mod stitch;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use trace::{
    Clock, Event, EventKind, LogicalClock, Recorder, SpanGuard, TraceContext, Value, WallClock,
};

use std::sync::{Arc, LazyLock};

static GLOBAL: LazyLock<Arc<Recorder>> = LazyLock::new(|| {
    let rec = Recorder::logical();
    rec.disable();
    Arc::new(rec)
});

static NOOP: LazyLock<Arc<Recorder>> = LazyLock::new(|| Arc::new(Recorder::new_noop()));

/// Process-wide recorder for layers that cannot thread an explicit handle
/// (tensor/nn counters) and for the CLI. Starts disabled; enabling it is an
/// explicit opt-in (the CLI does so for `--trace-out`/`--metrics-out`).
pub fn global() -> &'static Arc<Recorder> {
    &GLOBAL
}

/// Cheap check used to guard global-recorder instrumentation on hot paths.
#[inline]
pub fn global_enabled() -> bool {
    GLOBAL.enabled()
}

/// Shared permanently disabled recorder — the default for every component
/// that accepts an `Arc<Recorder>`. Calling `enable()` on it is a no-op, so
/// holding the shared handle can never accidentally switch instrumentation
/// on for unrelated components.
pub fn noop() -> &'static Arc<Recorder> {
    &NOOP
}

/// Builds the `&[(&str, Value)]` field slice for [`span!`]/[`event!`].
/// Accepts a comma list mixing bare identifiers (`epoch`) and explicit pairs
/// (`worker = w as u64`), in any order. Internal — use the two macros above.
#[doc(hidden)]
#[macro_export]
macro_rules! obs_fields {
    (@acc [$($out:tt)*]) => {
        &[$($out)*]
    };
    (@acc [$($out:tt)*] $k:ident = $v:expr $(, $($rest:tt)*)?) => {
        $crate::obs_fields!(@acc [$($out)* (stringify!($k), $crate::Value::from($v)),] $($($rest)*)?)
    };
    (@acc [$($out:tt)*] $k:ident $(, $($rest:tt)*)?) => {
        $crate::obs_fields!(@acc [$($out)* (stringify!($k), $crate::Value::from($k)),] $($($rest)*)?)
    };
}

/// Open a span on a recorder: `span!(rec, "name")`,
/// `span!(rec, "name", epoch, worker)` (field names from the identifiers) or
/// `span!(rec, "name", epoch = e, worker = w as u64)` — the two field styles
/// can be mixed. Returns a guard; bind it (`let _g = span!(...)`) so the
/// span covers the intended scope.
#[macro_export]
macro_rules! span {
    ($rec:expr, $name:expr $(,)?) => {
        $rec.span($name, &[])
    };
    ($rec:expr, $name:expr, $($fields:tt)+) => {
        $rec.span($name, $crate::obs_fields!(@acc [] $($fields)+))
    };
}

/// Record a point event on a recorder; same field syntax as [`span!`].
#[macro_export]
macro_rules! event {
    ($rec:expr, $name:expr $(,)?) => {
        $rec.event($name, &[])
    };
    ($rec:expr, $name:expr, $($fields:tt)+) => {
        $rec.event($name, $crate::obs_fields!(@acc [] $($fields)+))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macros_accept_bare_idents_and_pairs() {
        let rec = Recorder::logical();
        let epoch = 7u64;
        let worker = 2usize;
        {
            let _g = span!(rec, "m.span", epoch, worker);
        }
        event!(rec, "m.event", epoch = epoch + 1, label = "x");
        event!(rec, "m.bare");
        let ev = rec.events();
        assert_eq!(ev.len(), 3);
        // The span guard drops at the end of its block, so it lands first.
        assert_eq!(
            ev[0].fields,
            vec![
                ("epoch".to_string(), Value::U64(7)),
                ("worker".to_string(), Value::U64(2)),
            ]
        );
        assert_eq!(
            ev[1].fields,
            vec![
                ("epoch".to_string(), Value::U64(8)),
                ("label".to_string(), Value::Str("x".to_string())),
            ]
        );
        assert!(ev[2].fields.is_empty());
    }

    #[test]
    fn global_starts_disabled_and_noop_stays_off() {
        assert!(!noop().enabled());
        noop().enable();
        assert!(!noop().enabled());
    }

    #[test]
    fn same_call_sequence_same_bytes() {
        let run = || {
            let rec = Recorder::logical();
            for epoch in 0..3u64 {
                let _g = span!(rec, "r.epoch", epoch);
                event!(rec, "r.work", epoch, n = epoch * 2);
                rec.counter_add("r.count", epoch + 1);
                rec.gauge_set("r.level", epoch as f64 * 0.5);
            }
            (
                export::events_to_jsonl(&rec.events()).unwrap(),
                export::snapshot_to_json(&rec.snapshot()).unwrap(),
            )
        };
        assert_eq!(run(), run());
    }
}
