//! Merge per-process JSONL traces into one causally-ordered timeline.
//!
//! Each input is one process's trace as emitted by
//! [`crate::export::events_to_jsonl`]. The merge is deterministic: records
//! sort by `(ts, process_index, seq)` — the logical-clock timestamp is the
//! causal order (senders stamp a watermark into [`crate::TraceContext`] and
//! receivers `witness` it, so an effect can never stamp earlier than its
//! cause), the process index (the order traces are passed in) breaks
//! cross-process ties, and `seq` breaks in-process ties. Same seed + same
//! trace list → byte-identical merged output, the same discipline
//! `tests/obs_determinism.rs` pins for single-process traces.
//!
//! Output lines are the input lines with a `"proc":"<name>"` key injected
//! first, so the merged trace stays valid JSONL and every record names its
//! origin process.

/// Merge `(process_name, jsonl)` traces into one ordered JSONL string.
///
/// Fails with a description if any line is not valid JSON or lacks the
/// numeric `ts`/`seq` keys every tracer record carries.
pub fn stitch(traces: &[(&str, &str)]) -> Result<String, String> {
    let mut records: Vec<(u64, usize, u64, String)> = Vec::new();
    for (pidx, (name, jsonl)) in traces.iter().enumerate() {
        let quoted_name =
            rpol_json::to_string(name).map_err(|e| format!("process name {name:?}: {e:?}"))?;
        for (lno, line) in jsonl.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            let v = rpol_json::parse(line)
                .map_err(|e| format!("{name}:{}: invalid JSON: {e:?}", lno + 1))?;
            let field = |key: &str| {
                v.get(key)
                    .and_then(|f| f.as_u64())
                    .ok_or_else(|| format!("{name}:{}: missing numeric {key:?}", lno + 1))
            };
            let ts = field("ts")?;
            let seq = field("seq")?;
            let rest = line
                .strip_prefix('{')
                .ok_or_else(|| format!("{name}:{}: trace record must be a JSON object", lno + 1))?;
            let sep = if rest.trim_start().starts_with('}') {
                ""
            } else {
                ","
            };
            records.push((
                ts,
                pidx,
                seq,
                format!("{{\"proc\":{quoted_name}{sep}{rest}"),
            ));
        }
    }
    records.sort_by_key(|r| (r.0, r.1, r.2));
    let mut out = String::new();
    for (_, _, _, line) in records {
        out.push_str(&line);
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::events_to_jsonl;
    use crate::{Recorder, TraceContext};

    #[test]
    fn stitch_orders_by_ts_then_process_then_seq() {
        let a = "{\"seq\":0,\"ts\":5,\"kind\":\"event\",\"name\":\"a.x\",\"f\":{}}\n";
        let b = concat!(
            "{\"seq\":0,\"ts\":2,\"kind\":\"event\",\"name\":\"b.x\",\"f\":{}}\n",
            "{\"seq\":1,\"ts\":5,\"kind\":\"event\",\"name\":\"b.y\",\"f\":{}}\n",
        );
        let merged = stitch(&[("a", a), ("b", b)]).unwrap();
        let names: Vec<&str> = merged
            .lines()
            .map(|l| {
                rpol_json::parse(l).unwrap();
                if l.contains("b.x") {
                    "b.x"
                } else if l.contains("a.x") {
                    "a.x"
                } else {
                    "b.y"
                }
            })
            .collect();
        // ts=2 first; at ts=5 process index breaks the tie (a before b).
        assert_eq!(names, vec!["b.x", "a.x", "b.y"]);
        assert!(merged.lines().all(|l| l.starts_with("{\"proc\":\"")));
    }

    #[test]
    fn stitched_lines_stay_valid_json_with_proc_first() {
        let rec = Recorder::logical();
        rec.event("t.e", &[("msg", "quo\"te\\".into())]);
        let jsonl = events_to_jsonl(&rec.events()).unwrap();
        let merged = stitch(&[("worker \"0\"", &jsonl)]).unwrap();
        let v = rpol_json::parse(merged.trim_end()).unwrap();
        assert_eq!(v.get("proc").and_then(|p| p.as_str()), Some("worker \"0\""));
        assert_eq!(v.get("name").and_then(|p| p.as_str()), Some("t.e"));
    }

    #[test]
    fn witnessed_clocks_order_cause_before_effect() {
        // Sender opens a span, stamps a watermark, "sends" it; the receiver
        // witnesses the watermark before its child span. After stitching,
        // the receive-side record must sort after the send-side event.
        let sender = Recorder::logical();
        let receiver = Recorder::logical();
        // Receiver's clock races ahead of the sender locally: irrelevant,
        // the witness merge still orders the child after the send.
        let ctx = {
            let _g = sender.span("send.work", &[]);
            sender.event("send.msg", &[]);
            TraceContext {
                trace_id: 1,
                parent_span: 1,
                watermark: sender.now_ns(),
            }
        };
        {
            let (_g, _id) = receiver.child_span("recv.work", ctx, &[]);
        }
        let ta = events_to_jsonl(&sender.events()).unwrap();
        let tb = events_to_jsonl(&receiver.events()).unwrap();
        let merged = stitch(&[("sender", &ta), ("receiver", &tb)]).unwrap();
        let send_pos = merged.find("send.msg").unwrap();
        let recv_pos = merged.find("recv.work").unwrap();
        assert!(send_pos < recv_pos, "cause must precede effect:\n{merged}");
        // Determinism: stitching the same inputs twice gives the same bytes.
        assert_eq!(
            merged,
            stitch(&[("sender", &ta), ("receiver", &tb)]).unwrap()
        );
    }

    #[test]
    fn stitch_rejects_garbage_lines() {
        assert!(stitch(&[("p", "not json\n")]).is_err());
        assert!(stitch(&[("p", "{\"ts\":1}\n")]).is_err(), "missing seq");
        assert!(stitch(&[("p", "[1,2]\n")]).is_err(), "not an object");
    }
}
