//! Exporters: JSONL traces, metrics JSON, and plain-text summary tables.
//!
//! All JSON goes through `rpol-json`, so the byte layout is owned by one
//! serializer: same events + same snapshot → same bytes, which is what the
//! determinism tests pin.

use crate::metrics::MetricsSnapshot;
use crate::trace::Event;
use rpol_json::Error;

/// Render events as JSON Lines: one compact object per event, `\n`-separated,
/// with a trailing newline when non-empty.
pub fn events_to_jsonl(events: &[Event]) -> Result<String, Error> {
    let mut out = String::new();
    for ev in events {
        out.push_str(&rpol_json::to_string(ev)?);
        out.push('\n');
    }
    Ok(out)
}

/// Render a metrics snapshot as pretty-printed JSON (trailing newline).
pub fn snapshot_to_json(snapshot: &MetricsSnapshot) -> Result<String, Error> {
    let mut out = rpol_json::to_string_pretty(snapshot)?;
    out.push('\n');
    Ok(out)
}

/// Render an aligned plain-text table: headers, a dashed rule, then rows.
/// The first column is left-aligned, the rest right-aligned (numeric style).
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let emit_row = |out: &mut String, cells: &[String]| {
        for (i, w) in widths.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let cell = cells.get(i).map(String::as_str).unwrap_or("");
            if i == 0 {
                out.push_str(&format!("{cell:<w$}"));
            } else {
                out.push_str(&format!("{cell:>w$}"));
            }
        }
        // Trim trailing padding from the last column.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    emit_row(&mut out, &header_cells);
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    emit_row(&mut out, &rule);
    for row in rows {
        emit_row(&mut out, row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Recorder;

    #[test]
    fn jsonl_one_line_per_event_and_parses() {
        let rec = Recorder::logical();
        rec.event("a.b", &[("x", 1u64.into())]);
        {
            let _g = rec.span("a.c", &[]);
        }
        let jsonl = events_to_jsonl(&rec.events()).unwrap();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = rpol_json::parse(line).unwrap();
            assert!(v.get("name").is_some());
        }
        assert!(jsonl.ends_with('\n'));
    }

    #[test]
    fn snapshot_json_is_deterministic() {
        let rec = Recorder::logical();
        rec.counter_add("b", 2);
        rec.counter_add("a", 1);
        rec.gauge_set("g", 0.5);
        let one = snapshot_to_json(&rec.snapshot()).unwrap();
        let two = snapshot_to_json(&rec.snapshot()).unwrap();
        assert_eq!(one, two);
        let a = one.find("\"a\"").unwrap();
        let b = one.find("\"b\"").unwrap();
        assert!(a < b, "counters must export name-sorted");
    }

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["phase", "seconds"],
            &[
                vec!["net:task".into(), "1.5".into()],
                vec!["x".into(), "10.25".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "phase     seconds");
        assert_eq!(lines[1], "--------  -------");
        assert_eq!(lines[2], "net:task      1.5");
        assert_eq!(lines[3], "x           10.25");
    }
}
