//! Structured span/event tracer with a pluggable clock.
//!
//! Every record is an [`Event`]: a named point (`kind: "event"`) or a closed
//! span (`kind: "span"`, with `ts` = start and `dur` = elapsed). Spans are
//! recorded when their guard drops, so the trace never needs back-patching
//! and a single append-only buffer suffices. Timestamps come from a [`Clock`]
//! implementation: [`WallClock`] in production, [`LogicalClock`] in tests and
//! exports where same-seed runs must emit byte-identical traces.

use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use serde::ser::{Serialize, SerializeMap, Serializer};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Source of monotonic timestamps for the tracer.
pub trait Clock: Send + Sync {
    /// Current timestamp in nanoseconds (or logical ticks).
    fn now_ns(&self) -> u64;
    /// Advance the clock by `ns` (no-op for wall clocks). The pool uses this
    /// to fold simulated transport seconds into logical traces.
    fn advance_ns(&self, _ns: u64) {}
    /// Rewind to zero if the clock supports it (no-op for wall clocks).
    fn reset(&self) {}
}

/// Wall-clock time relative to clock creation.
pub struct WallClock {
    base: Instant,
}

impl Default for WallClock {
    fn default() -> Self {
        Self {
            base: Instant::now(),
        }
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        self.base.elapsed().as_nanos() as u64
    }
}

/// Deterministic clock: every `now_ns` call returns the next tick, and
/// `advance_ns` jumps forward, so identical call sequences yield identical
/// timestamps regardless of host speed.
#[derive(Default)]
pub struct LogicalClock {
    ticks: AtomicU64,
}

impl Clock for LogicalClock {
    fn now_ns(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::Relaxed)
    }

    fn advance_ns(&self, ns: u64) {
        self.ticks.fetch_add(ns, Ordering::Relaxed);
    }

    fn reset(&self) {
        self.ticks.store(0, Ordering::Relaxed);
    }
}

/// A field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

macro_rules! value_from {
    ($($ty:ty => $variant:ident as $conv:ty),+ $(,)?) => {
        $(impl From<$ty> for Value {
            fn from(v: $ty) -> Self {
                Value::$variant(v as $conv)
            }
        })+
    };
}

value_from!(
    u8 => U64 as u64,
    u16 => U64 as u64,
    u32 => U64 as u64,
    u64 => U64 as u64,
    usize => U64 as u64,
    i32 => I64 as i64,
    i64 => I64 as i64,
    f32 => F64 as f64,
    f64 => F64 as f64,
);

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Value::U64(v) => serializer.serialize_u64(*v),
            Value::I64(v) => serializer.serialize_i64(*v),
            Value::F64(v) => serializer.serialize_f64(*v),
            Value::Bool(v) => serializer.serialize_bool(*v),
            Value::Str(v) => serializer.serialize_str(v),
        }
    }
}

/// What a trace record represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// Closed span: `ts` is the start, `dur` the elapsed ticks/ns.
    Span,
    /// Instantaneous point event; `dur` is absent.
    Event,
}

impl EventKind {
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Event => "event",
        }
    }
}

/// One trace record. Serialized with a fixed key order
/// (`seq, ts, kind, name, dur?, f`) so byte-identical traces are a matter of
/// identical event sequences, not serializer luck.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Global emission order (assigned when the record lands in the buffer).
    pub seq: u64,
    /// Start timestamp from the recorder's clock.
    pub ts: u64,
    pub kind: EventKind,
    pub name: String,
    /// Elapsed ticks/ns for spans, `None` for point events.
    pub dur: Option<u64>,
    pub fields: Vec<(String, Value)>,
}

impl Serialize for Event {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(None)?;
        map.serialize_key("seq")?;
        map.serialize_value(&self.seq)?;
        map.serialize_key("ts")?;
        map.serialize_value(&self.ts)?;
        map.serialize_key("kind")?;
        map.serialize_value(self.kind.label())?;
        map.serialize_key("name")?;
        map.serialize_value(&self.name)?;
        if let Some(dur) = self.dur {
            map.serialize_key("dur")?;
            map.serialize_value(&dur)?;
        }
        map.serialize_key("f")?;
        map.serialize_value(&FieldMap(&self.fields))?;
        map.end()
    }
}

struct FieldMap<'a>(&'a [(String, Value)]);

impl Serialize for FieldMap<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.0.len()))?;
        for (k, v) in self.0 {
            map.serialize_key(k.as_str())?;
            map.serialize_value(v)?;
        }
        map.end()
    }
}

/// Append-only event buffer with a global sequence counter.
#[derive(Default)]
struct Tracer {
    seq: AtomicU64,
    events: Mutex<Vec<Event>>,
}

impl Tracer {
    fn record(
        &self,
        ts: u64,
        kind: EventKind,
        name: &str,
        dur: Option<u64>,
        fields: Vec<(String, Value)>,
    ) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.events.lock().unwrap().push(Event {
            seq,
            ts,
            kind,
            name: name.to_string(),
            dur,
            fields,
        });
    }
}

/// The top-level observability handle: an on/off switch, a clock, a metrics
/// registry, and a trace buffer. Everything in the workspace records through
/// one of these — either an explicitly threaded `Arc<Recorder>` (pool,
/// manager, verifier, transport) or the process-wide [`crate::global`]
/// recorder (GEMM/NN counters, CLI).
pub struct Recorder {
    enabled: AtomicBool,
    /// A permanently disabled recorder (see [`crate::noop`]) ignores
    /// `enable()` so that code holding the shared no-op handle can never
    /// switch on instrumentation for unrelated components.
    locked_off: bool,
    clock: Box<dyn Clock>,
    metrics: MetricsRegistry,
    tracer: Tracer,
}

impl Recorder {
    /// Recorder with the given clock, enabled.
    pub fn new(clock: Box<dyn Clock>) -> Self {
        Self {
            enabled: AtomicBool::new(true),
            locked_off: false,
            clock,
            metrics: MetricsRegistry::new(),
            tracer: Tracer::default(),
        }
    }

    /// Deterministic recorder (logical clock), enabled. The right choice for
    /// tests and reproducible exports.
    pub fn logical() -> Self {
        Self::new(Box::new(LogicalClock::default()))
    }

    /// Wall-clock recorder, enabled.
    pub fn wall() -> Self {
        Self::new(Box::new(WallClock::default()))
    }

    pub(crate) fn new_noop() -> Self {
        let mut r = Self::logical();
        r.enabled = AtomicBool::new(false);
        r.locked_off = true;
        r
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn enable(&self) {
        if !self.locked_off {
            self.enabled.store(true, Ordering::Relaxed);
        }
    }

    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Advance the clock (logical clocks only; wall clocks ignore it).
    pub fn advance_ns(&self, ns: u64) {
        if self.enabled() {
            self.clock.advance_ns(ns);
        }
    }

    // ---- metrics ----

    #[inline]
    pub fn counter_add(&self, name: &str, n: u64) {
        if self.enabled() {
            self.metrics.counter_add(name, n);
        }
    }

    #[inline]
    pub fn gauge_set(&self, name: &str, v: f64) {
        if self.enabled() {
            self.metrics.gauge_set(name, v);
        }
    }

    #[inline]
    pub fn gauge_add(&self, name: &str, v: f64) {
        if self.enabled() {
            self.metrics.gauge_add(name, v);
        }
    }

    #[inline]
    pub fn observe(&self, name: &str, v: u64) {
        if self.enabled() {
            self.metrics.observe(name, v);
        }
    }

    /// Direct registry access (for caching metric handles or custom buckets).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    // ---- tracing ----

    /// Record a point event.
    pub fn event(&self, name: &str, fields: &[(&str, Value)]) {
        if !self.enabled() {
            return;
        }
        let ts = self.clock.now_ns();
        self.tracer
            .record(ts, EventKind::Event, name, None, own_fields(fields));
    }

    /// Open a span; the returned guard records it (with duration) on drop.
    /// When the recorder is disabled the guard is inert and free.
    pub fn span(&self, name: &str, fields: &[(&str, Value)]) -> SpanGuard<'_> {
        if !self.enabled() {
            return SpanGuard(None);
        }
        let start = self.clock.now_ns();
        SpanGuard(Some(OpenSpan {
            rec: self,
            name: name.to_string(),
            fields: own_fields(fields),
            start,
        }))
    }

    /// Copy of the trace buffer, in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.tracer.events.lock().unwrap().clone()
    }

    /// Take the trace buffer, leaving it empty (sequence numbers keep
    /// counting).
    pub fn drain_events(&self) -> Vec<Event> {
        std::mem::take(&mut *self.tracer.events.lock().unwrap())
    }

    /// Clear all state: metrics to zero, trace buffer emptied, sequence and
    /// clock rewound. Used by the CLI so every command run starts from a
    /// clean, reproducible recorder.
    pub fn reset(&self) {
        self.metrics.reset();
        self.tracer.events.lock().unwrap().clear();
        self.tracer.seq.store(0, Ordering::Relaxed);
        self.clock.reset();
    }
}

fn own_fields(fields: &[(&str, Value)]) -> Vec<(String, Value)> {
    fields
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

struct OpenSpan<'a> {
    rec: &'a Recorder,
    name: String,
    fields: Vec<(String, Value)>,
    start: u64,
}

/// RAII guard returned by [`Recorder::span`]; records the closed span when
/// dropped.
pub struct SpanGuard<'a>(Option<OpenSpan<'a>>);

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(open) = self.0.take() {
            let end = open.rec.clock.now_ns();
            open.rec.tracer.record(
                open.start,
                EventKind::Span,
                &open.name,
                Some(end.saturating_sub(open.start)),
                open.fields,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_clock_is_deterministic() {
        let a = LogicalClock::default();
        let b = LogicalClock::default();
        for _ in 0..5 {
            assert_eq!(a.now_ns(), b.now_ns());
        }
        a.advance_ns(100);
        assert_eq!(a.now_ns(), 105);
    }

    #[test]
    fn span_records_on_drop_with_duration() {
        let rec = Recorder::logical();
        {
            let _g = rec.span("t.outer", &[("epoch", Value::U64(3))]);
            rec.event("t.inner", &[]);
        }
        let ev = rec.events();
        assert_eq!(ev.len(), 2);
        // Inner event lands first (span closes after it).
        assert_eq!(ev[0].name, "t.inner");
        assert_eq!(ev[0].kind, EventKind::Event);
        assert_eq!(ev[1].name, "t.outer");
        assert_eq!(ev[1].kind, EventKind::Span);
        assert_eq!(ev[1].ts, 0);
        assert_eq!(ev[1].dur, Some(2)); // inner now() + closing now()
        assert_eq!(ev[1].fields, vec![("epoch".to_string(), Value::U64(3))]);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::logical();
        rec.disable();
        {
            let _g = rec.span("t.s", &[]);
            rec.event("t.e", &[]);
            rec.counter_add("t.c", 1);
        }
        assert!(rec.events().is_empty());
        assert_eq!(rec.snapshot().counter("t.c"), 0);
    }

    #[test]
    fn noop_recorder_cannot_be_enabled() {
        let rec = Recorder::new_noop();
        rec.enable();
        assert!(!rec.enabled());
    }

    #[test]
    fn event_json_shape_is_fixed() {
        let rec = Recorder::logical();
        rec.event(
            "t.e",
            &[("worker", Value::U64(2)), ("ok", Value::Bool(true))],
        );
        let ev = rec.events();
        let line = rpol_json::to_string(&ev[0]).unwrap();
        assert_eq!(
            line,
            r#"{"seq":0,"ts":0,"kind":"event","name":"t.e","f":{"worker":2,"ok":true}}"#
        );
    }

    #[test]
    fn reset_rewinds_seq_and_clock() {
        let rec = Recorder::logical();
        rec.event("a", &[]);
        rec.event("b", &[]);
        rec.reset();
        rec.event("a", &[]);
        let ev = rec.events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].seq, 0);
        assert_eq!(ev[0].ts, 0);
    }
}
