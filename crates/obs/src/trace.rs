//! Structured span/event tracer with a pluggable clock.
//!
//! Every record is an [`Event`]: a named point (`kind: "event"`) or a closed
//! span (`kind: "span"`, with `ts` = start and `dur` = elapsed). Spans are
//! recorded when their guard drops, so the trace never needs back-patching
//! and a single append-only buffer suffices. Timestamps come from a [`Clock`]
//! implementation: [`WallClock`] in production, [`LogicalClock`] in tests and
//! exports where same-seed runs must emit byte-identical traces.

use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use serde::ser::{Serialize, SerializeMap, Serializer};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Source of monotonic timestamps for the tracer.
pub trait Clock: Send + Sync {
    /// Current timestamp in nanoseconds (or logical ticks).
    fn now_ns(&self) -> u64;
    /// Advance the clock by `ns` (no-op for wall clocks). The pool uses this
    /// to fold simulated transport seconds into logical traces.
    fn advance_ns(&self, _ns: u64) {}
    /// Adopt a remote watermark: after `witness(ts)` every later `now_ns`
    /// must return a value `> ts` (Lamport merge). No-op for wall clocks,
    /// which are already monotone against any sane peer.
    fn witness(&self, _ts: u64) {}
    /// Rewind to zero if the clock supports it (no-op for wall clocks).
    fn reset(&self) {}
}

/// Wall-clock time relative to clock creation.
pub struct WallClock {
    base: Instant,
}

impl Default for WallClock {
    fn default() -> Self {
        Self {
            base: Instant::now(),
        }
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        self.base.elapsed().as_nanos() as u64
    }
}

/// Deterministic clock: every `now_ns` call returns the next tick, and
/// `advance_ns` jumps forward, so identical call sequences yield identical
/// timestamps regardless of host speed.
#[derive(Default)]
pub struct LogicalClock {
    ticks: AtomicU64,
}

impl Clock for LogicalClock {
    fn now_ns(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::Relaxed)
    }

    fn advance_ns(&self, ns: u64) {
        self.ticks.fetch_add(ns, Ordering::Relaxed);
    }

    fn witness(&self, ts: u64) {
        // Lamport: local time jumps past the remote watermark so events that
        // causally follow the message stamp later than its send.
        self.ticks
            .fetch_max(ts.saturating_add(1), Ordering::Relaxed);
    }

    fn reset(&self) {
        self.ticks.store(0, Ordering::Relaxed);
    }
}

/// Causal context carried across process boundaries (DESIGN.md §16): which
/// trace a remote span belongs to, which span caused it, and the sender's
/// clock watermark at send time. The receiver `witness`es the watermark
/// before opening a child span, so stitched timelines order cause before
/// effect even across independently ticking logical clocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceContext {
    /// Identifier of the distributed trace (one per pool run).
    pub trace_id: u64,
    /// Span id of the remote parent, or 0 for a root context.
    pub parent_span: u64,
    /// Sender's clock reading at send time.
    pub watermark: u64,
}

impl TraceContext {
    /// Encoded size on the wire: three little-endian u64s.
    pub const WIRE_BYTES: usize = 24;

    pub fn to_bytes(self) -> [u8; Self::WIRE_BYTES] {
        let mut out = [0u8; Self::WIRE_BYTES];
        out[0..8].copy_from_slice(&self.trace_id.to_le_bytes());
        out[8..16].copy_from_slice(&self.parent_span.to_le_bytes());
        out[16..24].copy_from_slice(&self.watermark.to_le_bytes());
        out
    }

    pub fn from_bytes(b: &[u8]) -> Option<Self> {
        if b.len() != Self::WIRE_BYTES {
            return None;
        }
        let word = |i: usize| u64::from_le_bytes(b[i..i + 8].try_into().unwrap());
        Some(Self {
            trace_id: word(0),
            parent_span: word(8),
            watermark: word(16),
        })
    }
}

/// A field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

macro_rules! value_from {
    ($($ty:ty => $variant:ident as $conv:ty),+ $(,)?) => {
        $(impl From<$ty> for Value {
            fn from(v: $ty) -> Self {
                Value::$variant(v as $conv)
            }
        })+
    };
}

value_from!(
    u8 => U64 as u64,
    u16 => U64 as u64,
    u32 => U64 as u64,
    u64 => U64 as u64,
    usize => U64 as u64,
    i32 => I64 as i64,
    i64 => I64 as i64,
    f32 => F64 as f64,
    f64 => F64 as f64,
);

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Value::U64(v) => serializer.serialize_u64(*v),
            Value::I64(v) => serializer.serialize_i64(*v),
            Value::F64(v) => serializer.serialize_f64(*v),
            Value::Bool(v) => serializer.serialize_bool(*v),
            Value::Str(v) => serializer.serialize_str(v),
        }
    }
}

/// What a trace record represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// Closed span: `ts` is the start, `dur` the elapsed ticks/ns.
    Span,
    /// Instantaneous point event; `dur` is absent.
    Event,
}

impl EventKind {
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Event => "event",
        }
    }
}

/// One trace record. Serialized with a fixed key order
/// (`seq, ts, kind, name, dur?, f`) so byte-identical traces are a matter of
/// identical event sequences, not serializer luck.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Global emission order (assigned when the record lands in the buffer).
    pub seq: u64,
    /// Start timestamp from the recorder's clock.
    pub ts: u64,
    pub kind: EventKind,
    pub name: String,
    /// Elapsed ticks/ns for spans, `None` for point events.
    pub dur: Option<u64>,
    pub fields: Vec<(String, Value)>,
}

impl Serialize for Event {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(None)?;
        map.serialize_key("seq")?;
        map.serialize_value(&self.seq)?;
        map.serialize_key("ts")?;
        map.serialize_value(&self.ts)?;
        map.serialize_key("kind")?;
        map.serialize_value(self.kind.label())?;
        map.serialize_key("name")?;
        map.serialize_value(&self.name)?;
        if let Some(dur) = self.dur {
            map.serialize_key("dur")?;
            map.serialize_value(&dur)?;
        }
        map.serialize_key("f")?;
        map.serialize_value(&FieldMap(&self.fields))?;
        map.end()
    }
}

struct FieldMap<'a>(&'a [(String, Value)]);

impl Serialize for FieldMap<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.0.len()))?;
        for (k, v) in self.0 {
            map.serialize_key(k.as_str())?;
            map.serialize_value(v)?;
        }
        map.end()
    }
}

/// Append-only event buffer with a global sequence counter.
#[derive(Default)]
struct Tracer {
    seq: AtomicU64,
    events: Mutex<Vec<Event>>,
}

impl Tracer {
    fn record(
        &self,
        ts: u64,
        kind: EventKind,
        name: &str,
        dur: Option<u64>,
        fields: Vec<(String, Value)>,
    ) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.events.lock().unwrap().push(Event {
            seq,
            ts,
            kind,
            name: name.to_string(),
            dur,
            fields,
        });
    }
}

/// The top-level observability handle: an on/off switch, a clock, a metrics
/// registry, and a trace buffer. Everything in the workspace records through
/// one of these — either an explicitly threaded `Arc<Recorder>` (pool,
/// manager, verifier, transport) or the process-wide [`crate::global`]
/// recorder (GEMM/NN counters, CLI).
pub struct Recorder {
    enabled: AtomicBool,
    /// A permanently disabled recorder (see [`crate::noop`]) ignores
    /// `enable()` so that code holding the shared no-op handle can never
    /// switch on instrumentation for unrelated components.
    locked_off: bool,
    clock: Box<dyn Clock>,
    metrics: MetricsRegistry,
    tracer: Tracer,
    /// Next span id handed out by [`Recorder::child_span`]; 0 means "no
    /// parent", so ids start at 1.
    span_seq: AtomicU64,
    /// Aggregated span self-times keyed by `;`-joined stack path
    /// (flamegraph-folded form, see [`Recorder::folded_profile`]).
    profile: Mutex<BTreeMap<String, u64>>,
}

/// Per-thread stack of open spans, used to attribute self-time to stack
/// paths without touching the clock. Entries are tagged with the owning
/// recorder's address so interleaved spans from different recorders on one
/// thread never contaminate each other's paths.
struct StackEntry {
    rec: usize,
    name: String,
    /// Ticks spent in already-closed child spans (same recorder).
    child_ticks: u64,
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<StackEntry>> = const { RefCell::new(Vec::new()) };
}

impl Recorder {
    /// Recorder with the given clock, enabled.
    pub fn new(clock: Box<dyn Clock>) -> Self {
        Self {
            enabled: AtomicBool::new(true),
            locked_off: false,
            clock,
            metrics: MetricsRegistry::new(),
            tracer: Tracer::default(),
            span_seq: AtomicU64::new(0),
            profile: Mutex::new(BTreeMap::new()),
        }
    }

    /// Deterministic recorder (logical clock), enabled. The right choice for
    /// tests and reproducible exports.
    pub fn logical() -> Self {
        Self::new(Box::new(LogicalClock::default()))
    }

    /// Wall-clock recorder, enabled.
    pub fn wall() -> Self {
        Self::new(Box::new(WallClock::default()))
    }

    pub(crate) fn new_noop() -> Self {
        let mut r = Self::logical();
        r.enabled = AtomicBool::new(false);
        r.locked_off = true;
        r
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn enable(&self) {
        if !self.locked_off {
            self.enabled.store(true, Ordering::Relaxed);
        }
    }

    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Advance the clock (logical clocks only; wall clocks ignore it).
    pub fn advance_ns(&self, ns: u64) {
        if self.enabled() {
            self.clock.advance_ns(ns);
        }
    }

    /// Adopt a remote clock watermark (Lamport merge; see
    /// [`Clock::witness`]). No-op when disabled or on wall clocks.
    pub fn witness(&self, watermark: u64) {
        if self.enabled() {
            self.clock.witness(watermark);
        }
    }

    /// Allocate a fresh span id (1-based; 0 means "no parent").
    pub fn next_span_id(&self) -> u64 {
        self.span_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    // ---- metrics ----

    #[inline]
    pub fn counter_add(&self, name: &str, n: u64) {
        if self.enabled() {
            self.metrics.counter_add(name, n);
        }
    }

    #[inline]
    pub fn gauge_set(&self, name: &str, v: f64) {
        if self.enabled() {
            self.metrics.gauge_set(name, v);
        }
    }

    #[inline]
    pub fn gauge_add(&self, name: &str, v: f64) {
        if self.enabled() {
            self.metrics.gauge_add(name, v);
        }
    }

    #[inline]
    pub fn observe(&self, name: &str, v: u64) {
        if self.enabled() {
            self.metrics.observe(name, v);
        }
    }

    /// Observe into a log-bucketed latency histogram (see
    /// [`MetricsRegistry::observe_log`]).
    #[inline]
    pub fn observe_log(&self, name: &str, v: u64) {
        if self.enabled() {
            self.metrics.observe_log(name, v);
        }
    }

    /// Observe into a fine-grained latency histogram (see
    /// [`MetricsRegistry::observe_latency`]).
    #[inline]
    pub fn observe_latency(&self, name: &str, v: u64) {
        if self.enabled() {
            self.metrics.observe_latency(name, v);
        }
    }

    /// Direct registry access (for caching metric handles or custom buckets).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    // ---- tracing ----

    /// Record a point event.
    pub fn event(&self, name: &str, fields: &[(&str, Value)]) {
        if !self.enabled() {
            return;
        }
        let ts = self.clock.now_ns();
        self.tracer
            .record(ts, EventKind::Event, name, None, own_fields(fields));
    }

    /// Open a span; the returned guard records it (with duration) on drop.
    /// When the recorder is disabled the guard is inert and free.
    pub fn span(&self, name: &str, fields: &[(&str, Value)]) -> SpanGuard<'_> {
        self.open_span(name, own_fields(fields))
    }

    /// Open a span as the child of a (possibly remote) [`TraceContext`]:
    /// witnesses the context watermark first, allocates a local span id, and
    /// records `trace`/`parent`/`span` as ordinary fields so the event JSON
    /// shape is unchanged. Returns the guard plus the new span's id, which
    /// callers embed in downstream contexts
    /// (`TraceContext { trace_id, parent_span: id, watermark: rec.now_ns() }`).
    pub fn child_span(
        &self,
        name: &str,
        ctx: TraceContext,
        fields: &[(&str, Value)],
    ) -> (SpanGuard<'_>, u64) {
        if !self.enabled() {
            return (SpanGuard(None), 0);
        }
        self.clock.witness(ctx.watermark);
        let id = self.next_span_id();
        let mut owned = own_fields(fields);
        owned.push(("trace".to_string(), Value::U64(ctx.trace_id)));
        owned.push(("parent".to_string(), Value::U64(ctx.parent_span)));
        owned.push(("span".to_string(), Value::U64(id)));
        (self.open_span(name, owned), id)
    }

    /// Record a point event as the child of a (possibly remote)
    /// [`TraceContext`]: witnesses the watermark, then records the event with
    /// `trace`/`parent` appended as ordinary fields. Used for ingest points
    /// where the causal link matters but no duration does.
    pub fn child_event(&self, name: &str, ctx: TraceContext, fields: &[(&str, Value)]) {
        if !self.enabled() {
            return;
        }
        self.clock.witness(ctx.watermark);
        let ts = self.clock.now_ns();
        let mut owned = own_fields(fields);
        owned.push(("trace".to_string(), Value::U64(ctx.trace_id)));
        owned.push(("parent".to_string(), Value::U64(ctx.parent_span)));
        self.tracer.record(ts, EventKind::Event, name, None, owned);
    }

    fn open_span(&self, name: &str, fields: Vec<(String, Value)>) -> SpanGuard<'_> {
        if !self.enabled() {
            return SpanGuard(None);
        }
        let start = self.clock.now_ns();
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().push(StackEntry {
                rec: self as *const Recorder as usize,
                name: name.to_string(),
                child_ticks: 0,
            });
        });
        SpanGuard(Some(OpenSpan {
            rec: self,
            name: name.to_string(),
            fields,
            start,
        }))
    }

    /// Copy of the trace buffer, in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.tracer.events.lock().unwrap().clone()
    }

    /// Take the trace buffer, leaving it empty (sequence numbers keep
    /// counting).
    pub fn drain_events(&self) -> Vec<Event> {
        std::mem::take(&mut *self.tracer.events.lock().unwrap())
    }

    /// Aggregated span self-times in collapsed-stack ("flamegraph folded")
    /// form: one `path;to;span <self_ticks>` line per distinct stack path,
    /// sorted by path. Feed straight into `flamegraph.pl` / `inferno`.
    /// Self-time excludes ticks spent in child spans of the same recorder,
    /// so the column sums equal total traced time without double-counting.
    pub fn folded_profile(&self) -> String {
        let mut out = String::new();
        for (path, ticks) in self.profile.lock().unwrap().iter() {
            out.push_str(path);
            out.push(' ');
            out.push_str(&ticks.to_string());
            out.push('\n');
        }
        out
    }

    /// Clear all state: metrics to zero, trace buffer emptied, sequence and
    /// clock rewound. Used by the CLI so every command run starts from a
    /// clean, reproducible recorder.
    pub fn reset(&self) {
        self.metrics.reset();
        self.tracer.events.lock().unwrap().clear();
        self.tracer.seq.store(0, Ordering::Relaxed);
        self.span_seq.store(0, Ordering::Relaxed);
        self.profile.lock().unwrap().clear();
        self.clock.reset();
    }
}

fn own_fields(fields: &[(&str, Value)]) -> Vec<(String, Value)> {
    fields
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

struct OpenSpan<'a> {
    rec: &'a Recorder,
    name: String,
    fields: Vec<(String, Value)>,
    start: u64,
}

/// RAII guard returned by [`Recorder::span`]; records the closed span when
/// dropped.
pub struct SpanGuard<'a>(Option<OpenSpan<'a>>);

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(open) = self.0.take() {
            let end = open.rec.clock.now_ns();
            let dur = end.saturating_sub(open.start);
            let rec_key = open.rec as *const Recorder as usize;
            // Attribute self-time to the current stack path and credit the
            // whole duration to the nearest same-recorder parent, so nested
            // spans never double-count in the folded profile.
            SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                let Some(pos) = stack
                    .iter()
                    .rposition(|e| e.rec == rec_key && e.name == open.name)
                else {
                    return;
                };
                let entry = stack.remove(pos);
                let mut path = String::new();
                for e in stack.iter().filter(|e| e.rec == rec_key) {
                    path.push_str(&e.name);
                    path.push(';');
                }
                path.push_str(&entry.name);
                if let Some(parent) = stack.iter_mut().rev().find(|e| e.rec == rec_key) {
                    parent.child_ticks = parent.child_ticks.saturating_add(dur);
                }
                let self_ticks = dur.saturating_sub(entry.child_ticks);
                *open.rec.profile.lock().unwrap().entry(path).or_insert(0) += self_ticks;
            });
            open.rec.tracer.record(
                open.start,
                EventKind::Span,
                &open.name,
                Some(dur),
                open.fields,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_clock_is_deterministic() {
        let a = LogicalClock::default();
        let b = LogicalClock::default();
        for _ in 0..5 {
            assert_eq!(a.now_ns(), b.now_ns());
        }
        a.advance_ns(100);
        assert_eq!(a.now_ns(), 105);
    }

    #[test]
    fn span_records_on_drop_with_duration() {
        let rec = Recorder::logical();
        {
            let _g = rec.span("t.outer", &[("epoch", Value::U64(3))]);
            rec.event("t.inner", &[]);
        }
        let ev = rec.events();
        assert_eq!(ev.len(), 2);
        // Inner event lands first (span closes after it).
        assert_eq!(ev[0].name, "t.inner");
        assert_eq!(ev[0].kind, EventKind::Event);
        assert_eq!(ev[1].name, "t.outer");
        assert_eq!(ev[1].kind, EventKind::Span);
        assert_eq!(ev[1].ts, 0);
        assert_eq!(ev[1].dur, Some(2)); // inner now() + closing now()
        assert_eq!(ev[1].fields, vec![("epoch".to_string(), Value::U64(3))]);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::logical();
        rec.disable();
        {
            let _g = rec.span("t.s", &[]);
            rec.event("t.e", &[]);
            rec.counter_add("t.c", 1);
        }
        assert!(rec.events().is_empty());
        assert_eq!(rec.snapshot().counter("t.c"), 0);
    }

    #[test]
    fn noop_recorder_cannot_be_enabled() {
        let rec = Recorder::new_noop();
        rec.enable();
        assert!(!rec.enabled());
    }

    #[test]
    fn event_json_shape_is_fixed() {
        let rec = Recorder::logical();
        rec.event(
            "t.e",
            &[("worker", Value::U64(2)), ("ok", Value::Bool(true))],
        );
        let ev = rec.events();
        let line = rpol_json::to_string(&ev[0]).unwrap();
        assert_eq!(
            line,
            r#"{"seq":0,"ts":0,"kind":"event","name":"t.e","f":{"worker":2,"ok":true}}"#
        );
    }

    #[test]
    fn trace_context_roundtrips_through_bytes() {
        let ctx = TraceContext {
            trace_id: 0xDEAD_BEEF_0BAD_F00D,
            parent_span: 42,
            watermark: u64::MAX - 1,
        };
        let bytes = ctx.to_bytes();
        assert_eq!(bytes.len(), TraceContext::WIRE_BYTES);
        assert_eq!(TraceContext::from_bytes(&bytes), Some(ctx));
        assert_eq!(TraceContext::from_bytes(&bytes[..23]), None);
    }

    #[test]
    fn witness_merges_lamport_style() {
        let clock = LogicalClock::default();
        clock.witness(100);
        assert_eq!(clock.now_ns(), 101, "local time jumps past the watermark");
        clock.witness(5); // stale watermark must not rewind
        assert_eq!(clock.now_ns(), 102);
    }

    #[test]
    fn child_span_witnesses_and_tags_context_fields() {
        let rec = Recorder::logical();
        let ctx = TraceContext {
            trace_id: 7,
            parent_span: 3,
            watermark: 500,
        };
        let id = {
            let (_g, id) = rec.child_span("t.child", ctx, &[("epoch", Value::U64(1))]);
            id
        };
        assert_eq!(id, 1);
        let ev = rec.events();
        assert_eq!(ev.len(), 1);
        assert!(ev[0].ts > 500, "span must start after the witnessed mark");
        assert_eq!(
            ev[0].fields,
            vec![
                ("epoch".to_string(), Value::U64(1)),
                ("trace".to_string(), Value::U64(7)),
                ("parent".to_string(), Value::U64(3)),
                ("span".to_string(), Value::U64(1)),
            ]
        );
        // Disabled recorders hand back id 0 and record nothing.
        rec.disable();
        let (_g, id) = rec.child_span("t.child", ctx, &[]);
        assert_eq!(id, 0);
    }

    #[test]
    fn folded_profile_attributes_self_time_without_double_counting() {
        let rec = Recorder::logical();
        {
            let _outer = rec.span("outer", &[]);
            rec.advance_ns(10); // outer self-time
            {
                let _inner = rec.span("inner", &[]);
                rec.advance_ns(100); // inner self-time
            }
            rec.advance_ns(10); // more outer self-time
        }
        let folded = rec.folded_profile();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 2);
        // Exact tick math: each now_ns() call also ticks the logical clock,
        // but what matters is inner's whole duration is excluded from outer.
        let get = |prefix: &str| {
            lines
                .iter()
                .find(|l| l.starts_with(prefix))
                .and_then(|l| l.rsplit(' ').next())
                .and_then(|n| n.parse::<u64>().ok())
                .unwrap()
        };
        let inner = get("outer;inner ");
        let outer = get("outer ");
        assert!(inner >= 100, "inner self-time covers its advance");
        assert!((20..100).contains(&outer), "outer excludes inner's ticks");
        // Same call sequence → same folded bytes.
        let rec2 = Recorder::logical();
        {
            let _o = rec2.span("outer", &[]);
            rec2.advance_ns(10);
            {
                let _i = rec2.span("inner", &[]);
                rec2.advance_ns(100);
            }
            rec2.advance_ns(10);
        }
        assert_eq!(folded, rec2.folded_profile());
    }

    #[test]
    fn reset_rewinds_seq_and_clock() {
        let rec = Recorder::logical();
        rec.event("a", &[]);
        rec.event("b", &[]);
        rec.reset();
        rec.event("a", &[]);
        let ev = rec.events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].seq, 0);
        assert_eq!(ev[0].ts, 0);
    }
}
