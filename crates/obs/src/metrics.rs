//! Lock-cheap metrics registry: named counters, gauges, and fixed-bucket
//! histograms.
//!
//! Counters are striped across cache-line-padded atomic cells indexed by a
//! per-thread stripe id, so concurrent increments from verifier threads never
//! contend on the same line. Gauges are single f64 cells (bit-cast into an
//! `AtomicU64`); `add` uses a CAS loop and is therefore only deterministic
//! when called from one thread at a time — the pool publishes all f64 sums at
//! serial epoch-merge points for exactly this reason (see DESIGN.md §11).
//! Snapshots copy everything into `BTreeMap`s so exports iterate in a
//! deterministic (lexicographic) order regardless of registration order.

use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, LazyLock, RwLock};

/// Number of independent cells a counter is striped over. Eight covers the
/// verifier thread counts we shard over without making `value()` expensive.
const STRIPES: usize = 8;

#[repr(align(64))]
#[derive(Default)]
struct PaddedCell(AtomicU64);

static STRIPE_SEQ: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STRIPE: usize = STRIPE_SEQ.fetch_add(1, Ordering::Relaxed) % STRIPES;
}

#[inline]
fn stripe_index() -> usize {
    STRIPE.with(|s| *s)
}

/// Monotonically increasing u64 counter. Increments are relaxed atomic adds
/// on a per-thread stripe; `value()` sums the stripes. Because u64 addition
/// is commutative and associative, the summed value is independent of thread
/// scheduling — counters are safe to bump from parallel verification.
#[derive(Default)]
pub struct Counter {
    cells: [PaddedCell; STRIPES],
}

impl Counter {
    #[inline]
    pub fn add(&self, n: u64) {
        self.cells[stripe_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn value(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }

    fn reset(&self) {
        for c in &self.cells {
            c.0.store(0, Ordering::Relaxed);
        }
    }
}

/// An f64 gauge stored as raw bits in an `AtomicU64`.
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Accumulate into the gauge. Deterministic only under single-threaded
    /// use (f64 addition does not commute bitwise); hot parallel paths should
    /// publish merged sums via `set` instead.
    pub fn add(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Default histogram bucket upper bounds (inclusive); the overflow bucket is
/// implicit. Tuned for small discrete quantities like retry attempts.
pub const DEFAULT_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32];

/// Power-of-two bucket bounds `1, 2, 4, …, 2^62` for HDR-style log-bucketed
/// histograms: ~50% worst-case relative quantile error over the full u64
/// range at 63 buckets, which is what latency recording wants — cheap,
/// bounded memory, and deterministic quantiles independent of sample order.
pub fn log2_bounds() -> &'static [u64] {
    static BOUNDS: LazyLock<Vec<u64>> = LazyLock::new(|| (0..63).map(|e| 1u64 << e).collect());
    &BOUNDS
}

/// Fine-grained geometric bucket bounds for latency histograms: exact
/// integers `1..=16`, then 16 geometric steps per octave (`17..=32`
/// shifted left), up to `32 · 2^57 > 2^62`. Worst-case relative quantile
/// error is the largest step ratio, `18/17 ≈ 5.9%` — against ~50% for
/// [`log2_bounds`], whose one-bucket-per-octave resolution collapses
/// sub-second epoch latencies onto a single bound (p50 == p99).
/// Still fixed-bucket, so quantiles stay deterministic and order-free.
pub fn latency_bounds() -> &'static [u64] {
    static BOUNDS: LazyLock<Vec<u64>> = LazyLock::new(|| {
        let mut v: Vec<u64> = (1..=16).collect();
        for scale in 0..=57u32 {
            v.extend((17..=32u64).map(|m| m << scale));
        }
        v
    });
    &BOUNDS
}

/// Fixed-bucket u64 histogram. Bucket `i` counts observations `v` with
/// `v <= bounds[i]` (and `> bounds[i-1]`); one extra overflow bucket catches
/// the rest. All cells are relaxed atomics, so like counters the merged
/// totals are scheduling-independent.
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    total: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }

    pub fn observe(&self, v: u64) {
        // Bounds are strictly increasing (asserted in `new`), so the first
        // bucket with `v <= bound` is a binary search — the fine-grained
        // latency bounds would make a linear scan a hot-path cost.
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.total.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.total.store(0, Ordering::Relaxed);
    }
}

/// Immutable copy of one histogram, suitable for JSON export.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HistogramSnapshot {
    pub bounds: Vec<u64>,
    pub counts: Vec<u64>,
    pub sum: u64,
    pub count: u64,
}

impl HistogramSnapshot {
    /// Deterministic quantile estimate: the upper bound of the bucket holding
    /// the `ceil(q·count)`-th observation. Because buckets are fixed, the
    /// answer depends only on the observed multiset — never on insertion
    /// order or thread interleaving — which is what lets benches report
    /// p50/p90/p99 without keeping raw samples. Returns 0 for an empty
    /// histogram; observations in the overflow bucket report the last bound
    /// (the estimate saturates rather than invents a value).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return self.bounds.get(i).copied().unwrap_or_else(|| {
                    // Overflow bucket: saturate at the largest bound.
                    self.bounds.last().copied().unwrap_or(u64::MAX)
                });
            }
        }
        self.bounds.last().copied().unwrap_or(u64::MAX)
    }
}

/// Registry of named metrics. Lookup takes a read lock on the fast path and
/// upgrades to a write lock only on first registration of a name; the handles
/// themselves are `Arc`s so hot paths can cache them and skip the map
/// entirely.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

fn get_or_insert<T, F: FnOnce() -> T>(
    map: &RwLock<BTreeMap<String, Arc<T>>>,
    name: &str,
    make: F,
) -> Arc<T> {
    if let Some(v) = map.read().unwrap().get(name) {
        return Arc::clone(v);
    }
    let mut w = map.write().unwrap();
    Arc::clone(
        w.entry(name.to_string())
            .or_insert_with(|| Arc::new(make())),
    )
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name, Counter::default)
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name, Gauge::default)
    }

    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name, || Histogram::new(bounds))
    }

    pub fn counter_add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    pub fn gauge_set(&self, name: &str, v: f64) {
        self.gauge(name).set(v);
    }

    pub fn gauge_add(&self, name: &str, v: f64) {
        self.gauge(name).add(v);
    }

    pub fn observe(&self, name: &str, v: u64) {
        self.histogram(name, DEFAULT_BOUNDS).observe(v);
    }

    /// Observe into a log-bucketed (power-of-two bounds) histogram — the
    /// right shape for latencies, where values span orders of magnitude and
    /// deterministic p50/p90/p99 matter more than exact means.
    pub fn observe_log(&self, name: &str, v: u64) {
        self.histogram(name, log2_bounds()).observe(v);
    }

    /// Observe into a fine-grained latency histogram ([`latency_bounds`]):
    /// ~6% worst-case quantile error instead of `observe_log`'s ~50%, so
    /// sub-second latencies resolve into distinct p50/p90/p99 instead of
    /// collapsing onto one power-of-two bound.
    pub fn observe_latency(&self, name: &str, v: u64) {
        self.histogram(name, latency_bounds()).observe(v);
    }

    /// Copy every metric into sorted maps. The snapshot is the only way out
    /// of the registry, so all exports share one deterministic ordering.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.value()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.value()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Zero every registered metric (names stay registered).
    pub fn reset(&self) {
        for c in self.counters.read().unwrap().values() {
            c.reset();
        }
        for g in self.gauges.read().unwrap().values() {
            g.set(0.0);
        }
        for h in self.histograms.read().unwrap().values() {
            h.reset();
        }
    }
}

/// Point-in-time view of a registry, ordered lexicographically by name.
#[derive(Debug, Clone, PartialEq, Serialize, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// All counters whose name starts with `prefix`, in name order —
    /// the shape invariant tests use to compare a whole metric family
    /// (e.g. `net.*`) against a report's own totals.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        self.counters
            .range(prefix.to_string()..)
            .take_while(|(name, _)| name.starts_with(prefix))
            .map(|(name, v)| (name.clone(), *v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("t.c");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.add(3);
                    }
                });
            }
        });
        assert_eq!(c.value(), 12_000);
        assert_eq!(reg.snapshot().counter("t.c"), 12_000);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = Gauge::default();
        g.set(1.5);
        g.add(0.25);
        assert_eq!(g.value(), 1.75);
    }

    #[test]
    fn histogram_buckets() {
        let h = Histogram::new(&[1, 2, 4]);
        for v in [0, 1, 2, 3, 4, 5, 100] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 2, 2]); // <=1: {0,1}; <=2: {2}; <=4: {3,4}; over: {5,100}
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 115);
    }

    #[test]
    fn log_histogram_quantiles_are_deterministic_and_order_free() {
        let reg = MetricsRegistry::new();
        // Insert the same multiset in two different orders into two
        // histograms: quantiles must agree exactly.
        let mut vals: Vec<u64> = (1..=1000).collect();
        for v in &vals {
            reg.observe_log("lat.a", *v);
        }
        vals.reverse();
        for v in &vals {
            reg.observe_log("lat.b", *v);
        }
        let snap = reg.snapshot();
        let a = &snap.histograms["lat.a"];
        let b = &snap.histograms["lat.b"];
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), b.quantile(q));
        }
        // Estimates are bucket upper bounds: p50 of 1..=1000 lands in the
        // (256, 512] bucket, p99 in (512, 1024].
        assert_eq!(a.quantile(0.5), 512);
        assert_eq!(a.quantile(0.99), 1024);
        assert_eq!(a.count, 1000);
        assert_eq!(a.sum, 500_500);
    }

    #[test]
    fn quantile_edge_cases() {
        let reg = MetricsRegistry::new();
        let empty = reg.histogram("h.empty", &[1, 2]).snapshot();
        assert_eq!(empty.quantile(0.5), 0);
        let h = reg.histogram("h.one", &[1, 2]);
        h.observe(100); // overflow bucket
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 2, "overflow saturates at the last bound");
        assert_eq!(s.quantile(0.0), 2);
        assert_eq!(s.quantile(1.0), 2);
        // log2 bounds cover the u64 range without overflow in practice.
        let reg2 = MetricsRegistry::new();
        reg2.observe_log("h.big", u64::MAX);
        let big = &reg2.snapshot().histograms["h.big"];
        assert_eq!(big.quantile(0.5), 1 << 62);
    }

    #[test]
    fn latency_bounds_are_fine_grained_and_cover_u64() {
        let bounds = latency_bounds();
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "strictly increasing"
        );
        assert_eq!(bounds[0], 1);
        assert!(*bounds.last().unwrap() >= 1 << 62);
        // Worst-case quantile error is the largest adjacent-bound ratio:
        // at most 17/16 past the exact-integer prefix (the 32 → 34 octave
        // hand-off, ~6%), against the 2x (≈50%) steps of log2_bounds.
        for w in bounds.windows(2).skip(16) {
            assert!(
                (w[1] as u128) * 16 <= (w[0] as u128) * 17,
                "step {} -> {} too coarse",
                w[0],
                w[1]
            );
        }
        // The failure this fixes: sub-second latencies (µs-scale values)
        // must resolve p50 vs p99 instead of sharing one log2 bucket.
        let reg = MetricsRegistry::new();
        for v in [110_000u64, 120_000, 131_000] {
            reg.observe_latency("lat.fine", v);
            reg.observe_log("lat.coarse", v);
        }
        let snap = reg.snapshot();
        let fine = &snap.histograms["lat.fine"];
        let coarse = &snap.histograms["lat.coarse"];
        assert_eq!(coarse.quantile(0.5), coarse.quantile(0.99));
        assert!(fine.quantile(0.5) < fine.quantile(0.99));
        for q in [0.5, 0.99] {
            let est = fine.quantile(q) as f64;
            let truth = if q == 0.5 { 120_000.0 } else { 131_000.0 };
            assert!((est - truth).abs() / truth < 0.07, "q{q}: {est} vs {truth}");
        }
    }

    #[test]
    fn counters_with_prefix_selects_a_family_in_name_order() {
        let reg = MetricsRegistry::new();
        reg.counter_add("net.accepted", 3);
        reg.counter_add("net.bytes_in", 100);
        reg.counter_add("network.other", 7); // prefix "net." must not match
        reg.counter_add("exec.tasks", 9);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters_with_prefix("net."),
            vec![
                ("net.accepted".to_string(), 3),
                ("net.bytes_in".to_string(), 100),
            ]
        );
        assert!(snap.counters_with_prefix("zzz.").is_empty());
    }

    #[test]
    fn snapshot_order_is_name_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter_add("z.last", 1);
        reg.counter_add("a.first", 1);
        reg.counter_add("m.mid", 1);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.keys().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["a.first", "m.mid", "z.last"]);
    }

    #[test]
    fn reset_zeroes_but_keeps_names() {
        let reg = MetricsRegistry::new();
        reg.counter_add("x", 5);
        reg.gauge_set("y", 2.0);
        reg.observe("h", 3);
        reg.reset();
        let s = reg.snapshot();
        assert_eq!(s.counter("x"), 0);
        assert_eq!(s.gauge("y"), 0.0);
        assert_eq!(s.histograms["h"].count, 0);
        assert!(s.counters.contains_key("x"));
    }
}
