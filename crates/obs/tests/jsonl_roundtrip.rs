//! JSONL exporter robustness: event names, field keys, and string values
//! drawn from a hostile character palette (quotes, backslashes, control
//! characters, DEL, non-ASCII) must export to valid JSON Lines and
//! round-trip bit-exactly through `rpol_json::parse`.

use proptest::prelude::*;
use rpol_obs::export::events_to_jsonl;
use rpol_obs::{Recorder, Value};

/// Every character class the JSON string grammar treats specially, plus
/// benign filler so escapes land mid-string, not only at the edges.
const PALETTE: &[char] = &[
    '"', '\\', '/', '\n', '\r', '\t', '\u{0}', '\u{1}', '\u{8}', '\u{c}', '\u{1f}', '\u{7f}', ' ',
    'a', 'z', '0', '.', 'é', 'λ', '→', '🔍',
];

fn build_string(raw: &[u8]) -> String {
    raw.iter()
        .map(|b| PALETTE[*b as usize % PALETTE.len()])
        .collect()
}

proptest! {
    #[test]
    fn hostile_names_keys_and_values_roundtrip(
        name_raw in proptest::collection::vec(any::<u8>(), 1..24),
        key_raw in proptest::collection::vec(any::<u8>(), 1..16),
        val_raw in proptest::collection::vec(any::<u8>(), 0..48),
        // `rpol_json::parse` stores numbers as f64, so only integers up to
        // 2^53 survive a parse round-trip exactly; the exporter itself
        // prints the full u64.
        num in 0u64..(1 << 53),
    ) {
        let name = build_string(&name_raw);
        let key = build_string(&key_raw);
        let sval = build_string(&val_raw);

        let rec = Recorder::logical();
        rec.event(&name, &[(key.as_str(), Value::Str(sval.clone()))]);
        rec.event(&name, &[("n", Value::U64(num))]);

        let jsonl = events_to_jsonl(&rec.events()).expect("export");
        let mut lines = jsonl.lines();
        let first = rpol_json::parse(lines.next().expect("line 1"))
            .expect("exporter output must be valid JSON");
        let second = rpol_json::parse(lines.next().expect("line 2"))
            .expect("exporter output must be valid JSON");
        prop_assert!(lines.next().is_none());

        prop_assert_eq!(first.get("name").and_then(|n| n.as_str()), Some(name.as_str()));
        prop_assert_eq!(second.get("name").and_then(|n| n.as_str()), Some(name.as_str()));
        let f = first.get("f").expect("fields");
        prop_assert_eq!(f.get(&key).and_then(|s| s.as_str()), Some(sval.as_str()));
        let g = second.get("f").expect("fields");
        prop_assert_eq!(g.get("n").and_then(|s| s.as_u64()), Some(num));
    }
}
