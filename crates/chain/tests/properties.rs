//! Property-based tests for the PoUW chain substrate.

use proptest::prelude::*;
use rpol_chain::block::Block;
use rpol_chain::escrow::Escrow;
use rpol_chain::rewards::ContributionLedger;
use rpol_chain::Ledger;
use rpol_crypto::sha256::sha256;
use rpol_crypto::Address;

proptest! {
    #[test]
    fn ledger_accepts_exactly_well_linked_chains(n in 2usize..15, tamper in 0usize..15) {
        let mut ledger = Ledger::new();
        for i in 0..n {
            let block = Block::new(
                ledger.height() + 1,
                ledger.tip_hash(),
                i as u64,
                Address::from_seed(i as u64),
                &[i as f32],
                0.5,
            );
            ledger.append(block).expect("valid chain extension");
        }
        prop_assert!(ledger.validate());
        prop_assert_eq!(ledger.height(), n as u64);
        // Any tamper of a *non-tip* block breaks validation (the tip has
        // no child link to protect it; consensus agreement covers it).
        let tamper = tamper % (n - 1);
        let mut forked = ledger.clone();
        forked_tamper(&mut forked, tamper + 1);
        prop_assert!(!forked.validate());
    }

    #[test]
    fn contribution_split_conserves_and_orders(
        credits in proptest::collection::vec(0u64..20, 1..10),
        reward in 0.1f64..10_000.0
    ) {
        let mut ledger = ContributionLedger::new();
        for (i, &c) in credits.iter().enumerate() {
            for _ in 0..c {
                ledger.credit(Address::from_seed(i as u64));
            }
        }
        let payout = ledger.distribute(reward);
        let total: f64 = payout.iter().map(|(_, v)| v).sum();
        if ledger.total() > 0 {
            prop_assert!((total - reward).abs() < 1e-6 * reward);
            // Shares order like credits.
            for (i, &ci) in credits.iter().enumerate() {
                for (j, &cj) in credits.iter().enumerate() {
                    if ci > cj {
                        let share = |ix: usize| {
                            payout
                                .iter()
                                .find(|(a, _)| *a == Address::from_seed(ix as u64))
                                .map(|(_, v)| *v)
                                .unwrap_or(0.0)
                        };
                        prop_assert!(share(i) > share(j) - 1e-9);
                    }
                }
            }
        } else {
            prop_assert!(payout.is_empty());
        }
    }

    #[test]
    fn escrow_settlement_conserves_funds(
        attested in proptest::collection::vec((0usize..4, any::<bool>()), 1..20),
        amount in 0.1f64..1000.0
    ) {
        let manager = Address::from_seed(0xAA);
        let workers: Vec<Address> = (0..4).map(|i| Address::from_seed(i as u64)).collect();
        let mut escrow = Escrow::fund(manager, workers.clone(), amount, 100);
        for (epoch, &(w, ok)) in attested.iter().enumerate() {
            escrow
                .attest(workers[w], epoch as u64, ok, sha256(&[epoch as u8]))
                .expect("unique (worker, epoch)");
        }
        let payout = escrow.settle().expect("settles once");
        let total: f64 = payout.iter().map(|(_, v)| v).sum();
        prop_assert!((total - amount).abs() < 1e-9 * amount.max(1.0));
    }
}

/// Tamper helper: flips a field in block `index` (1-based past genesis).
fn forked_tamper(ledger: &mut Ledger, index: usize) {
    // Safety: test-only access through a rebuild.
    let mut blocks = ledger.blocks().to_vec();
    blocks[index].task_id ^= 0xFFFF;
    *ledger = rebuild_unchecked(blocks);
}

/// Rebuilds a ledger bypassing append validation (to host tampered data).
fn rebuild_unchecked(blocks: Vec<Block>) -> Ledger {
    // The public API validates on append, so reconstruct by serializing
    // the tampered chain through Ledger's Debug-independent path: start
    // fresh and push valid blocks until the tamper point, then force the
    // tampered suffix via append of *re-linked* blocks... Instead, rely on
    // `Ledger::validate` being a pure function of `blocks()`: emulate a
    // received-from-network chain with a dedicated constructor.
    Ledger::from_blocks_unchecked(blocks)
}
