//! The chain of agreed blocks.

use crate::block::Block;
use rpol_crypto::Digest;

/// An append-only chain with parent-hash validation.
///
/// # Examples
///
/// ```
/// use rpol_chain::Ledger;
///
/// let ledger = Ledger::new();
/// assert_eq!(ledger.height(), 0);
/// assert_eq!(ledger.tip().height, 0); // genesis
/// ```
#[derive(Debug, Clone)]
pub struct Ledger {
    blocks: Vec<Block>,
}

impl Default for Ledger {
    fn default() -> Self {
        Self::new()
    }
}

impl Ledger {
    /// Creates a ledger containing only the genesis block.
    pub fn new() -> Self {
        Self {
            blocks: vec![Block::genesis()],
        }
    }

    /// The tip (latest agreed block).
    pub fn tip(&self) -> &Block {
        self.blocks.last().expect("genesis always present")
    }

    /// Height of the tip.
    pub fn height(&self) -> u64 {
        self.tip().height
    }

    /// Hash that the next block must use as parent.
    pub fn tip_hash(&self) -> Digest {
        self.tip().header_hash()
    }

    /// Appends an agreed block.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant when the block's
    /// height or parent hash do not extend the tip.
    pub fn append(&mut self, block: Block) -> Result<(), String> {
        if block.height != self.height() + 1 {
            return Err(format!(
                "height {} does not extend tip height {}",
                block.height,
                self.height()
            ));
        }
        if block.parent != self.tip_hash() {
            return Err("parent hash does not match tip".to_string());
        }
        self.blocks.push(block);
        Ok(())
    }

    /// All blocks, genesis first.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Reconstructs a ledger from blocks received off the network
    /// **without** link validation — callers must run
    /// [`Ledger::validate`] before trusting it.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty (a chain always has its genesis).
    pub fn from_blocks_unchecked(blocks: Vec<Block>) -> Self {
        assert!(!blocks.is_empty(), "a chain always contains genesis");
        Self { blocks }
    }

    /// Verifies the whole chain's hash links.
    pub fn validate(&self) -> bool {
        self.blocks
            .windows(2)
            .all(|w| w[1].parent == w[0].header_hash() && w[1].height == w[0].height + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpol_crypto::Address;

    fn child_of(ledger: &Ledger, task_id: u64) -> Block {
        Block::new(
            ledger.height() + 1,
            ledger.tip_hash(),
            task_id,
            Address::from_seed(task_id),
            &[task_id as f32],
            0.5,
        )
    }

    #[test]
    fn append_and_validate() {
        let mut ledger = Ledger::new();
        for task in 1..=5 {
            let block = child_of(&ledger, task);
            ledger.append(block).expect("valid extension");
        }
        assert_eq!(ledger.height(), 5);
        assert!(ledger.validate());
        assert_eq!(ledger.blocks().len(), 6);
    }

    #[test]
    fn wrong_height_rejected() {
        let mut ledger = Ledger::new();
        let mut block = child_of(&ledger, 1);
        block.height = 5;
        assert!(ledger.append(block).is_err());
    }

    #[test]
    fn wrong_parent_rejected() {
        let mut ledger = Ledger::new();
        let mut block = child_of(&ledger, 1);
        block.parent = Digest::ZERO;
        assert!(ledger.append(block).is_err());
    }

    #[test]
    fn tamper_detected_by_validate() {
        let mut ledger = Ledger::new();
        ledger.append(child_of(&ledger, 1)).expect("ok");
        ledger.append(child_of(&ledger, 2)).expect("ok");
        assert!(ledger.validate());
        // Tamper with a historical block (the §III-B double-spend threat
        // addressed by PoUW consensus; the ledger detects it structurally).
        ledger.blocks[1].task_id = 99;
        assert!(!ledger.validate());
    }
}
