//! Blocks of the PoUW chain.

use rpol_crypto::sha256::{sha256_f32, Digest, Sha256};
use rpol_crypto::Address;
use serde::{Deserialize, Serialize};

/// A block proposed by a consensus node (stage C of §III-A).
///
/// The block binds the proposer's address, the task it solves, and the
/// digest of the submitted model weights; the winning model's rewards are
/// sent to the *address encoded inside the model* (via the AMLayer), which
/// consensus checks against `proposer`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Height in the chain (genesis = 0).
    pub height: u64,
    /// Hash of the parent block header.
    pub parent: Digest,
    /// The task this block solves.
    pub task_id: u64,
    /// The proposing consensus node (pool manager or solo miner).
    pub proposer: Address,
    /// SHA-256 of the submitted model's flattened weights.
    pub model_digest: Digest,
    /// Test accuracy as scored by consensus (set when the round closes).
    pub test_accuracy: f32,
    /// AMLayer Lipschitz coefficient `c` submitted with the model (§V-A);
    /// consensus nodes need it to re-derive the AMLayer.
    pub lipschitz_c: f32,
}

impl Block {
    /// Assembles a proposal block (accuracy filled by consensus later).
    pub fn new(
        height: u64,
        parent: Digest,
        task_id: u64,
        proposer: Address,
        model_weights: &[f32],
        lipschitz_c: f32,
    ) -> Self {
        Self {
            height,
            parent,
            task_id,
            proposer,
            model_digest: sha256_f32(model_weights),
            test_accuracy: 0.0,
            lipschitz_c,
        }
    }

    /// The genesis block.
    pub fn genesis() -> Self {
        Self {
            height: 0,
            parent: Digest::ZERO,
            task_id: 0,
            proposer: Address::from_seed(0),
            model_digest: Digest::ZERO,
            test_accuracy: 0.0,
            lipschitz_c: 0.0,
        }
    }

    /// The header hash linking children to this block. Accuracy is part of
    /// the header since consensus agreed on it.
    pub fn header_hash(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(&self.height.to_be_bytes());
        h.update(self.parent.as_bytes());
        h.update(&self.task_id.to_be_bytes());
        h.update(self.proposer.as_bytes());
        h.update(self.model_digest.as_bytes());
        h.update(&self.test_accuracy.to_le_bytes());
        h.update(&self.lipschitz_c.to_le_bytes());
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_hash_binds_fields() {
        let weights = vec![0.5f32; 10];
        let base = Block::new(1, Digest::ZERO, 7, Address::from_seed(1), &weights, 0.5);
        let mut other = base.clone();
        other.task_id = 8;
        assert_ne!(base.header_hash(), other.header_hash());
        let mut other = base.clone();
        other.test_accuracy = 0.9;
        assert_ne!(base.header_hash(), other.header_hash());
    }

    #[test]
    fn model_digest_binds_weights() {
        let a = Block::new(1, Digest::ZERO, 7, Address::from_seed(1), &[1.0, 2.0], 0.5);
        let b = Block::new(1, Digest::ZERO, 7, Address::from_seed(1), &[1.0, 2.1], 0.5);
        assert_ne!(a.model_digest, b.model_digest);
    }

    #[test]
    fn genesis_is_height_zero() {
        let g = Block::genesis();
        assert_eq!(g.height, 0);
        assert_eq!(g.parent, Digest::ZERO);
    }
}
