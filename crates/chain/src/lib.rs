//! PoUW blockchain substrate (§III-A system setting).
//!
//! RPoL operates *inside* a mining pool; the pool itself is one consensus
//! node of a proof-of-useful-work blockchain where nodes compete to train
//! the best model for a task pulled from an on-chain task pool. This crate
//! provides that surrounding machinery:
//!
//! * [`task`] — the on-chain task pool: DNN training tasks with seeded
//!   datasets and a delayed test-set release (the test set only becomes
//!   visible once enough proposals arrived, preventing test-set training),
//! * [`block`] — blocks carrying the proposer's address and the digest of
//!   the trained model,
//! * [`consensus`] — the mining round: proposals are collected, the test
//!   set is released, every model is scored, the owner encoding (AMLayer)
//!   is checked, and the best-generalizing valid model wins,
//! * [`rewards`] — pool-side reward distribution proportional to verified
//!   worker contributions,
//! * [`ledger`] — the chain itself with parent-hash validation.
//!
//! The crate is model-agnostic: scoring and owner verification are
//! injected via the [`consensus::ModelJudge`] trait, implemented by the
//! `rpol` crate (which knows about AMLayers).

pub mod block;
pub mod consensus;
pub mod escrow;
pub mod ledger;
pub mod rewards;
pub mod task;

pub use block::Block;
pub use consensus::{ConsensusRound, ModelJudge, Proposal, RoundOutcome};
pub use ledger::Ledger;
pub use task::{TaskPool, TrainingTask};
