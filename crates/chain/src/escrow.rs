//! Smart-contract fair exchange between the pool manager and workers.
//!
//! The paper's future work proposes "smart contracts to achieve fair
//! exchange between the manager and workers inside the mining pool": the
//! manager cannot stiff verified workers, and workers cannot claim pay
//! without verified submissions. This module implements that contract as
//! an explicit state machine:
//!
//! 1. the manager **funds** the escrow with the expected block reward and
//!    registers the participating workers;
//! 2. each epoch the manager posts **attestations** — per-worker verified
//!    flags bound to the epoch's commitment digests (so a later audit can
//!    tie pay to the on-chain commitments);
//! 3. once the round closes the contract **settles**, splitting the funds
//!    proportionally to attested contributions;
//! 4. if the manager disappears, workers can **reclaim** after the round's
//!    deadline: funds split equally among registered workers, so a
//!    malicious manager's only power is to burn its own deposit's surplus.

use rpol_crypto::sha256::Digest;
use rpol_crypto::Address;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Contract lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EscrowState {
    /// Funded and accepting attestations.
    Active,
    /// Settled by the manager; payouts fixed.
    Settled,
    /// Deadline passed without settlement; workers reclaimed.
    Reclaimed,
}

/// Errors raised by contract calls.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EscrowError {
    /// The caller is not a registered party.
    UnknownWorker(Address),
    /// The contract is not in the state the call requires.
    WrongState,
    /// Attestation for this (epoch, worker) already posted.
    DuplicateAttestation,
    /// The deadline has not yet passed.
    DeadlineNotReached,
}

impl std::fmt::Display for EscrowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EscrowError::UnknownWorker(a) => write!(f, "unknown worker {a}"),
            EscrowError::WrongState => f.write_str("contract in wrong state"),
            EscrowError::DuplicateAttestation => f.write_str("attestation already posted"),
            EscrowError::DeadlineNotReached => f.write_str("deadline not reached"),
        }
    }
}

impl std::error::Error for EscrowError {}

/// One epoch's verification attestation for one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attestation {
    /// The epoch attested.
    pub epoch: u64,
    /// Whether the worker's submission verified.
    pub verified: bool,
    /// Digest of the worker's epoch commitment, binding pay to proofs.
    pub commitment: Digest,
}

/// The fair-exchange escrow contract.
///
/// # Examples
///
/// ```
/// use rpol_chain::escrow::Escrow;
/// use rpol_crypto::{sha256::sha256, Address};
///
/// let manager = Address::from_seed(1);
/// let workers = vec![Address::from_seed(2), Address::from_seed(3)];
/// let mut escrow = Escrow::fund(manager, workers.clone(), 10.0, 100);
/// escrow.attest(workers[0], 0, true, sha256(b"c0")).unwrap();
/// escrow.attest(workers[1], 0, false, sha256(b"c1")).unwrap();
/// let payout = escrow.settle().unwrap();
/// assert_eq!(payout, vec![(workers[0], 10.0)]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Escrow {
    manager: Address,
    state: EscrowState,
    balance: f64,
    deadline_height: u64,
    /// Attestations per worker, keyed by epoch.
    attestations: BTreeMap<Address, BTreeMap<u64, Attestation>>,
}

impl Escrow {
    /// Funds the contract and registers the worker set.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is empty or `amount` is not positive-finite.
    pub fn fund(
        manager: Address,
        workers: Vec<Address>,
        amount: f64,
        deadline_height: u64,
    ) -> Self {
        assert!(!workers.is_empty(), "escrow needs registered workers");
        assert!(amount.is_finite() && amount > 0.0, "invalid escrow amount");
        Self {
            manager,
            state: EscrowState::Active,
            balance: amount,
            deadline_height,
            attestations: workers.into_iter().map(|w| (w, BTreeMap::new())).collect(),
        }
    }

    /// The contract state.
    pub fn state(&self) -> EscrowState {
        self.state
    }

    /// The escrowed balance.
    pub fn balance(&self) -> f64 {
        self.balance
    }

    /// The funding manager.
    pub fn manager(&self) -> &Address {
        &self.manager
    }

    /// Posts a per-epoch verification attestation for `worker`.
    ///
    /// # Errors
    ///
    /// Fails when the contract is not active, the worker is unknown, or
    /// the (worker, epoch) pair was already attested — attestations are
    /// immutable once posted, which is what prevents the manager from
    /// retroactively un-verifying work.
    pub fn attest(
        &mut self,
        worker: Address,
        epoch: u64,
        verified: bool,
        commitment: Digest,
    ) -> Result<(), EscrowError> {
        if self.state != EscrowState::Active {
            return Err(EscrowError::WrongState);
        }
        let slots = self
            .attestations
            .get_mut(&worker)
            .ok_or(EscrowError::UnknownWorker(worker))?;
        if slots.contains_key(&epoch) {
            return Err(EscrowError::DuplicateAttestation);
        }
        slots.insert(
            epoch,
            Attestation {
                epoch,
                verified,
                commitment,
            },
        );
        Ok(())
    }

    /// Verified-epoch count for `worker`.
    pub fn verified_epochs(&self, worker: &Address) -> u64 {
        self.attestations
            .get(worker)
            .map(|slots| slots.values().filter(|a| a.verified).count() as u64)
            .unwrap_or(0)
    }

    /// Settles the contract: splits the balance proportionally to
    /// verified-epoch counts. Workers with zero verified epochs receive
    /// nothing; with no verified work at all the full balance refunds to
    /// the manager.
    ///
    /// # Errors
    ///
    /// Fails when the contract is not active.
    pub fn settle(&mut self) -> Result<Vec<(Address, f64)>, EscrowError> {
        if self.state != EscrowState::Active {
            return Err(EscrowError::WrongState);
        }
        self.state = EscrowState::Settled;
        let total: u64 = self
            .attestations
            .keys()
            .copied()
            .collect::<Vec<_>>()
            .iter()
            .map(|w| self.verified_epochs(w))
            .sum();
        let balance = self.balance;
        self.balance = 0.0;
        if total == 0 {
            return Ok(vec![(self.manager, balance)]);
        }
        Ok(self
            .attestations
            .keys()
            .copied()
            .collect::<Vec<_>>()
            .into_iter()
            .filter_map(|w| {
                let credits = self.verified_epochs(&w);
                (credits > 0).then(|| (w, balance * credits as f64 / total as f64))
            })
            .collect())
    }

    /// Worker-side escape hatch: after `current_height` passes the
    /// deadline with the contract still active, the balance splits equally
    /// among all registered workers.
    ///
    /// # Errors
    ///
    /// Fails before the deadline or when the contract is not active.
    pub fn reclaim(&mut self, current_height: u64) -> Result<Vec<(Address, f64)>, EscrowError> {
        if self.state != EscrowState::Active {
            return Err(EscrowError::WrongState);
        }
        if current_height < self.deadline_height {
            return Err(EscrowError::DeadlineNotReached);
        }
        self.state = EscrowState::Reclaimed;
        let balance = self.balance;
        self.balance = 0.0;
        let n = self.attestations.len() as f64;
        Ok(self
            .attestations
            .keys()
            .map(|w| (*w, balance / n))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpol_crypto::sha256::sha256;

    fn setup() -> (Escrow, Vec<Address>) {
        let manager = Address::from_seed(0);
        let workers: Vec<Address> = (1..=3).map(Address::from_seed).collect();
        (Escrow::fund(manager, workers.clone(), 9.0, 50), workers)
    }

    #[test]
    fn proportional_settlement() {
        let (mut escrow, w) = setup();
        // w0 verified twice, w1 once, w2 never.
        escrow.attest(w[0], 0, true, sha256(b"a")).unwrap();
        escrow.attest(w[0], 1, true, sha256(b"b")).unwrap();
        escrow.attest(w[1], 0, true, sha256(b"c")).unwrap();
        escrow.attest(w[2], 0, false, sha256(b"d")).unwrap();
        let payout = escrow.settle().expect("settles");
        assert_eq!(payout.len(), 2);
        let get = |a: &Address| payout.iter().find(|(x, _)| x == a).map(|(_, v)| *v);
        assert_eq!(get(&w[0]), Some(6.0));
        assert_eq!(get(&w[1]), Some(3.0));
        assert_eq!(get(&w[2]), None);
        assert_eq!(escrow.state(), EscrowState::Settled);
        assert_eq!(escrow.balance(), 0.0);
    }

    #[test]
    fn no_verified_work_refunds_manager() {
        let (mut escrow, w) = setup();
        escrow.attest(w[0], 0, false, sha256(b"x")).unwrap();
        let payout = escrow.settle().expect("settles");
        assert_eq!(payout, vec![(*escrow.manager(), 9.0)]);
    }

    #[test]
    fn attestations_are_immutable() {
        let (mut escrow, w) = setup();
        escrow.attest(w[0], 0, true, sha256(b"a")).unwrap();
        // The manager cannot retroactively flip verified → unverified.
        assert_eq!(
            escrow.attest(w[0], 0, false, sha256(b"a")),
            Err(EscrowError::DuplicateAttestation)
        );
        assert_eq!(escrow.verified_epochs(&w[0]), 1);
    }

    #[test]
    fn unknown_worker_rejected() {
        let (mut escrow, _) = setup();
        let stranger = Address::from_seed(99);
        assert_eq!(
            escrow.attest(stranger, 0, true, sha256(b"s")),
            Err(EscrowError::UnknownWorker(stranger))
        );
    }

    #[test]
    fn reclaim_after_deadline_splits_equally() {
        let (mut escrow, w) = setup();
        assert_eq!(escrow.reclaim(49), Err(EscrowError::DeadlineNotReached));
        let payout = escrow.reclaim(50).expect("reclaims");
        assert_eq!(payout.len(), 3);
        for (addr, v) in &payout {
            assert!((v - 3.0).abs() < 1e-9);
            assert!(w.contains(addr));
        }
        assert_eq!(escrow.state(), EscrowState::Reclaimed);
        // No double spend.
        assert_eq!(escrow.settle(), Err(EscrowError::WrongState));
    }

    #[test]
    fn settle_twice_rejected() {
        let (mut escrow, w) = setup();
        escrow.attest(w[0], 0, true, sha256(b"a")).unwrap();
        escrow.settle().expect("first settle");
        assert_eq!(escrow.settle(), Err(EscrowError::WrongState));
        assert_eq!(
            escrow.attest(w[0], 1, true, sha256(b"b")),
            Err(EscrowError::WrongState)
        );
    }

    #[test]
    fn payouts_conserve_balance() {
        let (mut escrow, w) = setup();
        for (e, worker) in [(0u64, 0usize), (1, 1), (2, 2), (3, 0), (4, 1)] {
            escrow
                .attest(w[worker], e, true, sha256(&[e as u8]))
                .unwrap();
        }
        let payout = escrow.settle().expect("settles");
        let sum: f64 = payout.iter().map(|(_, v)| v).sum();
        assert!((sum - 9.0).abs() < 1e-9);
    }
}
