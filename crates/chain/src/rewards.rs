//! Pool-side reward distribution.
//!
//! Once the pool's block is agreed, the mining reward arrives at the pool
//! manager's address and is redistributed to workers *proportionally to
//! their verified contributions* (§III-A). Workers whose submissions
//! failed verification earn nothing for those epochs — the economic teeth
//! of RPoL.

use rpol_crypto::Address;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Tracks per-worker verified contributions across an entire mining round.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ContributionLedger {
    /// Verified work units (e.g. accepted epoch submissions) per worker.
    credits: BTreeMap<Address, u64>,
}

impl ContributionLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Credits one verified work unit to `worker`.
    pub fn credit(&mut self, worker: Address) {
        *self.credits.entry(worker).or_insert(0) += 1;
    }

    /// Verified units for `worker`.
    pub fn credits(&self, worker: &Address) -> u64 {
        self.credits.get(worker).copied().unwrap_or(0)
    }

    /// Total verified units.
    pub fn total(&self) -> u64 {
        self.credits.values().sum()
    }

    /// Splits `reward` proportionally to credits. Workers with zero
    /// credits receive nothing; an empty ledger returns an empty payout.
    ///
    /// # Panics
    ///
    /// Panics if `reward` is negative or non-finite.
    pub fn distribute(&self, reward: f64) -> Vec<(Address, f64)> {
        assert!(
            reward.is_finite() && reward >= 0.0,
            "invalid reward {reward}"
        );
        let total = self.total();
        if total == 0 {
            return Vec::new();
        }
        self.credits
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(addr, &c)| (*addr, reward * c as f64 / total as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_split() {
        let mut ledger = ContributionLedger::new();
        let a = Address::from_seed(1);
        let b = Address::from_seed(2);
        ledger.credit(a);
        ledger.credit(a);
        ledger.credit(b);
        let payout = ledger.distribute(9.0);
        let get = |addr: Address| {
            payout
                .iter()
                .find(|(x, _)| *x == addr)
                .map(|(_, v)| *v)
                .unwrap_or(0.0)
        };
        assert!((get(a) - 6.0).abs() < 1e-9);
        assert!((get(b) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn payout_conserves_reward() {
        let mut ledger = ContributionLedger::new();
        for i in 0..7 {
            for _ in 0..=i {
                ledger.credit(Address::from_seed(i));
            }
        }
        let payout = ledger.distribute(100.0);
        let sum: f64 = payout.iter().map(|(_, v)| v).sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn unverified_workers_get_nothing() {
        let mut ledger = ContributionLedger::new();
        let honest = Address::from_seed(1);
        let cheater = Address::from_seed(2);
        ledger.credit(honest);
        let payout = ledger.distribute(10.0);
        assert_eq!(payout.len(), 1);
        assert_eq!(payout[0].0, honest);
        assert_eq!(ledger.credits(&cheater), 0);
    }

    #[test]
    fn empty_ledger_empty_payout() {
        assert!(ContributionLedger::new().distribute(5.0).is_empty());
    }
}
