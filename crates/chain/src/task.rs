//! The on-chain task pool (§III-A, stage A).

use rpol_nn::data::{ImageSpec, SyntheticImages};
use rpol_tensor::rng::Pcg32;
use serde::{Deserialize, Serialize};

/// A DNN training task published on chain.
///
/// The task fixes the data distribution (via `spec` and seeds) but the
/// *test* dataset seed is withheld until the consensus round releases it —
/// consensus nodes cannot train on the test set (§III-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingTask {
    /// Unique task id.
    pub id: u64,
    /// Dataset geometry and difficulty.
    pub spec: ImageSpec,
    /// Number of training samples each consensus node draws.
    pub train_samples: usize,
    /// Number of held-out test samples drawn at release time.
    pub test_samples: usize,
    /// Seed for the public training data.
    pub train_seed: u64,
    /// Seed for the withheld test data (on a real chain this would be a
    /// commitment opened later; here the pool simply must not use it).
    test_seed: u64,
    /// Epoch budget for one mining round (the paper's block time limit).
    pub epoch_limit: usize,
}

impl TrainingTask {
    /// Creates a task.
    ///
    /// # Panics
    ///
    /// Panics if sample counts are zero or the spec is invalid.
    pub fn new(
        id: u64,
        spec: ImageSpec,
        train_samples: usize,
        test_samples: usize,
        seed: u64,
        epoch_limit: usize,
    ) -> Self {
        spec.validate();
        assert!(train_samples > 0 && test_samples > 0, "empty task");
        assert!(epoch_limit > 0, "zero epoch limit");
        Self {
            id,
            spec,
            train_samples,
            test_samples,
            train_seed: seed,
            test_seed: seed ^ 0x7E57_DA7A,
            epoch_limit,
        }
    }

    /// Materializes the public training dataset (anyone may call this).
    pub fn training_data(&self) -> SyntheticImages {
        let mut rng = Pcg32::seed_from(self.train_seed);
        SyntheticImages::generate(&self.spec, self.train_samples, &mut rng)
    }

    /// Materializes the withheld test dataset. Only the consensus layer
    /// calls this, and only after the release condition is met.
    pub(crate) fn test_data(&self) -> SyntheticImages {
        let mut rng = Pcg32::seed_from(self.test_seed);
        SyntheticImages::generate(&self.spec, self.test_samples, &mut rng)
    }
}

/// The on-chain queue of open training tasks.
#[derive(Debug, Clone, Default)]
pub struct TaskPool {
    tasks: Vec<TrainingTask>,
}

impl TaskPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a task.
    ///
    /// # Panics
    ///
    /// Panics if a task with the same id already exists.
    pub fn publish(&mut self, task: TrainingTask) {
        assert!(
            self.tasks.iter().all(|t| t.id != task.id),
            "duplicate task id {}",
            task.id
        );
        self.tasks.push(task);
    }

    /// Number of open tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Pulls (without removing) the task with the given id.
    pub fn get(&self, id: u64) -> Option<&TrainingTask> {
        self.tasks.iter().find(|t| t.id == id)
    }

    /// Pulls the oldest open task, the default miner behaviour.
    pub fn front(&self) -> Option<&TrainingTask> {
        self.tasks.first()
    }

    /// Removes a completed task.
    pub fn close(&mut self, id: u64) -> Option<TrainingTask> {
        let ix = self.tasks.iter().position(|t| t.id == id)?;
        Some(self.tasks.remove(ix))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(id: u64) -> TrainingTask {
        TrainingTask::new(id, ImageSpec::tiny(), 40, 16, 99, 5)
    }

    #[test]
    fn training_data_is_reproducible() {
        let t = task(1);
        let a = t.training_data();
        let b = t.training_data();
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.len(), 40);
    }

    #[test]
    fn test_data_differs_from_training_data() {
        let t = task(1);
        let train = t.training_data();
        let test = t.test_data();
        assert_eq!(test.len(), 16);
        // Same distribution but different draws.
        let (xa, _) = train.batch(&[0]);
        let (xb, _) = test.batch(&[0]);
        assert_ne!(xa, xb);
    }

    #[test]
    fn pool_publish_get_close() {
        let mut pool = TaskPool::new();
        pool.publish(task(1));
        pool.publish(task(2));
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.front().expect("front").id, 1);
        assert!(pool.get(2).is_some());
        assert!(pool.close(1).is_some());
        assert_eq!(pool.front().expect("front").id, 2);
        assert!(pool.close(1).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate task id")]
    fn duplicate_ids_rejected() {
        let mut pool = TaskPool::new();
        pool.publish(task(1));
        pool.publish(task(1));
    }
}
