//! The mining round: proposal collection, delayed test-set release,
//! scoring, owner verification, winner selection (§III-A stages B–C).

use crate::block::Block;
use crate::task::TrainingTask;
use rpol_crypto::{sha256::sha256_f32, Address, Digest};
use rpol_nn::data::SyntheticImages;

/// Judges submitted models on behalf of consensus.
///
/// Implemented by the `rpol` crate, which knows how to rebuild the task's
/// architecture from flat weights and how to recompute an AMLayer from a
/// blockchain address. Keeping this behind a trait lets the chain layer
/// stay independent of model architecture.
pub trait ModelJudge {
    /// Test accuracy of `weights` on the released test set.
    fn score(&self, weights: &[f32], test: &SyntheticImages) -> f32;

    /// Whether the model's embedded address encoding matches `claimed`
    /// (AMLayer re-derivation, §V-A). `lipschitz_c` is the scaling
    /// coefficient submitted with the block.
    fn verify_owner(&self, weights: &[f32], claimed: &Address, lipschitz_c: f32) -> bool;
}

/// A model proposal entering a consensus round.
#[derive(Debug, Clone)]
pub struct Proposal {
    /// The proposed block (accuracy not yet scored).
    pub block: Block,
    /// Flattened model weights (on a real chain: fetched off-chain and
    /// checked against `block.model_digest`).
    pub weights: Vec<f32>,
}

/// Outcome of a closed round.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// The winning block, with `test_accuracy` filled in.
    pub winner: Block,
    /// Scored accuracy of every *valid* proposal, in submission order.
    pub scores: Vec<(Address, f32)>,
    /// Proposals rejected because owner verification failed (model-stealing
    /// attempts) or the weight digest mismatched.
    pub rejected: Vec<Address>,
}

/// A consensus round for one task.
///
/// The round holds the task's withheld test set hostage: it is only
/// materialized once `min_proposals` distinct proposers submitted, then
/// every proposal is scored and the best valid one wins.
pub struct ConsensusRound<'a> {
    task: &'a TrainingTask,
    parent: Digest,
    height: u64,
    min_proposals: usize,
    proposals: Vec<Proposal>,
}

impl<'a> ConsensusRound<'a> {
    /// Opens a round for `task` extending the block with hash `parent` at
    /// `height - 1`.
    ///
    /// # Panics
    ///
    /// Panics if `min_proposals == 0`.
    pub fn open(task: &'a TrainingTask, parent: Digest, height: u64, min_proposals: usize) -> Self {
        assert!(min_proposals > 0, "need at least one proposal to close");
        Self {
            task,
            parent,
            height,
            min_proposals,
            proposals: Vec::new(),
        }
    }

    /// Submits a proposal.
    ///
    /// # Panics
    ///
    /// Panics if the block targets a different task, height, or parent —
    /// those are programming errors in the miner, not adversarial inputs
    /// (an adversarial chain fork is out of scope per §III-B: consensus
    ///-level attacks are handled by existing PoUW work).
    pub fn submit(&mut self, proposal: Proposal) {
        assert_eq!(proposal.block.task_id, self.task.id, "wrong task");
        assert_eq!(proposal.block.height, self.height, "wrong height");
        assert_eq!(proposal.block.parent, self.parent, "wrong parent");
        self.proposals.push(proposal);
    }

    /// Number of proposals so far.
    pub fn proposal_count(&self) -> usize {
        self.proposals.len()
    }

    /// Whether the test set may be released.
    pub fn can_close(&self) -> bool {
        self.proposals.len() >= self.min_proposals
    }

    /// Releases the test set, scores all proposals, verifies ownership and
    /// returns the winner.
    ///
    /// Returns `None` when no valid proposal exists.
    ///
    /// # Panics
    ///
    /// Panics if called before [`ConsensusRound::can_close`] — the test set
    /// must stay hidden until enough independent proposals arrived.
    pub fn close(self, judge: &dyn ModelJudge) -> Option<RoundOutcome> {
        assert!(
            self.can_close(),
            "test set release requires {} proposals, have {}",
            self.min_proposals,
            self.proposals.len()
        );
        let test = self.task.test_data();
        let mut scores = Vec::new();
        let mut rejected = Vec::new();
        let mut best: Option<Block> = None;
        for p in &self.proposals {
            // Integrity: off-chain weights must match the on-chain digest.
            if sha256_f32(&p.weights) != p.block.model_digest {
                rejected.push(p.block.proposer);
                continue;
            }
            // Ownership: the model must encode the proposer's address.
            if !judge.verify_owner(&p.weights, &p.block.proposer, p.block.lipschitz_c) {
                rejected.push(p.block.proposer);
                continue;
            }
            let acc = judge.score(&p.weights, &test);
            scores.push((p.block.proposer, acc));
            let mut scored = p.block.clone();
            scored.test_accuracy = acc;
            match &best {
                Some(b) if b.test_accuracy >= acc => {}
                _ => best = Some(scored),
            }
        }
        best.map(|winner| RoundOutcome {
            winner,
            scores,
            rejected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpol_nn::data::ImageSpec;

    /// A toy judge: score = first weight clamped to [0,1]; owner valid when
    /// the second weight equals the first byte of the address.
    struct ToyJudge;

    impl ModelJudge for ToyJudge {
        fn score(&self, weights: &[f32], _test: &SyntheticImages) -> f32 {
            weights[0].clamp(0.0, 1.0)
        }

        fn verify_owner(&self, weights: &[f32], claimed: &Address, _c: f32) -> bool {
            weights[1] as u8 == claimed.as_bytes()[0]
        }
    }

    fn task() -> TrainingTask {
        TrainingTask::new(1, ImageSpec::tiny(), 40, 16, 5, 5)
    }

    fn proposal(task: &TrainingTask, seed: u64, score: f32, honest: bool) -> Proposal {
        let addr = Address::from_seed(seed);
        let w1 = if honest {
            addr.as_bytes()[0] as f32
        } else {
            // Claim someone else's model: encoding does not match.
            Address::from_seed(seed + 1000).as_bytes()[0] as f32
        };
        let weights = vec![score, w1, 0.0];
        Proposal {
            block: Block::new(1, Digest::ZERO, task.id, addr, &weights, 0.5),
            weights,
        }
    }

    #[test]
    fn best_valid_model_wins() {
        let t = task();
        let mut round = ConsensusRound::open(&t, Digest::ZERO, 1, 2);
        round.submit(proposal(&t, 1, 0.6, true));
        round.submit(proposal(&t, 2, 0.8, true));
        round.submit(proposal(&t, 3, 0.7, true));
        let outcome = round.close(&ToyJudge).expect("winner");
        assert_eq!(outcome.winner.proposer, Address::from_seed(2));
        assert!((outcome.winner.test_accuracy - 0.8).abs() < 1e-6);
        assert_eq!(outcome.scores.len(), 3);
        assert!(outcome.rejected.is_empty());
    }

    #[test]
    fn stolen_models_rejected() {
        let t = task();
        let mut round = ConsensusRound::open(&t, Digest::ZERO, 1, 2);
        round.submit(proposal(&t, 1, 0.9, false)); // thief with best score
        round.submit(proposal(&t, 2, 0.5, true));
        let outcome = round.close(&ToyJudge).expect("winner");
        assert_eq!(outcome.winner.proposer, Address::from_seed(2));
        assert_eq!(outcome.rejected, vec![Address::from_seed(1)]);
    }

    #[test]
    fn tampered_weights_rejected() {
        let t = task();
        let mut round = ConsensusRound::open(&t, Digest::ZERO, 1, 1);
        let mut p = proposal(&t, 1, 0.9, true);
        p.weights[0] = 0.99; // diverge from committed digest
        round.submit(p);
        assert!(round.close(&ToyJudge).is_none());
    }

    #[test]
    #[should_panic(expected = "test set release requires")]
    fn early_close_panics() {
        let t = task();
        let round = ConsensusRound::open(&t, Digest::ZERO, 1, 3);
        let _ = round.close(&ToyJudge);
    }

    #[test]
    #[should_panic(expected = "wrong task")]
    fn wrong_task_rejected() {
        let t = task();
        let t2 = TrainingTask::new(2, ImageSpec::tiny(), 40, 16, 6, 5);
        let mut round = ConsensusRound::open(&t, Digest::ZERO, 1, 1);
        round.submit(proposal(&t2, 1, 0.5, true));
    }
}
