//! A minimal JSON parser producing a dynamic [`Value`] tree.
//!
//! Added for the observability tooling: the `rpol trace-check` command and
//! the trace-determinism tests must confirm that exported `trace.jsonl` /
//! `metrics.json` files are well-formed without any external JSON crate.
//! It is a strict recursive-descent parser over the JSON grammar (RFC 8259):
//! no trailing commas, no comments, one value per input.

use std::fmt;

/// Parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// A parsed JSON value. Objects preserve source key order (important for the
/// byte-determinism checks, which care about layout, not just content).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// First value for `key` if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn entries(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }
}

/// Nesting depth cap: parsing is recursive, so deeply nested inputs would
/// otherwise overflow the stack.
const MAX_DEPTH: usize = 128;

/// Parse a complete JSON document (exactly one value plus whitespace).
///
/// # Errors
///
/// Returns a [`ParseError`] (with byte offset) on any grammar violation,
/// invalid escape, unpaired surrogate, malformed number, trailing garbage,
/// or nesting deeper than 128 levels.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("unescaped control character")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (d as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = v * 16 + digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let first = self.hex4()?;
        let code = if (0xD800..0xDC00).contains(&first) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let low = self.hex4()?;
                if !(0xDC00..0xE000).contains(&low) {
                    return Err(self.err("invalid low surrogate"));
                }
                0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
            } else {
                return Err(self.err("unpaired high surrogate"));
            }
        } else if (0xDC00..0xE000).contains(&first) {
            return Err(self.err("unpaired low surrogate"));
        } else {
            first
        };
        char::from_u32(code).ok_or_else(|| self.err("invalid unicode scalar"))
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-42").unwrap(), Value::Num(-42.0));
        assert_eq!(parse("1.5e2").unwrap(), Value::Num(150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn containers_preserve_order() {
        let v = parse(r#"{"z":1,"a":[true,null],"m":{"k":2.5}}"#).unwrap();
        let entries = v.entries().unwrap();
        assert_eq!(entries[0].0, "z");
        assert_eq!(entries[1].0, "a");
        assert_eq!(entries[2].0, "m");
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("m").unwrap().get("k").unwrap().as_f64(), Some(2.5));
    }

    #[test]
    fn escapes_and_unicode() {
        assert_eq!(
            parse(r#""a\n\t\"\\A""#).unwrap(),
            Value::Str("a\n\t\"\\A".into())
        );
        // Surrogate pair: U+1F600.
        assert_eq!(parse(r#""😀""#).unwrap(), Value::Str("\u{1F600}".into()));
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\udc00""#).is_err());
        assert!(parse(r#""\q""#).is_err());
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "[1,]",
            r#"{"a":}"#,
            r#"{"a" 1}"#,
            "01",
            "1.",
            "1e",
            "tru",
            "\"unterminated",
            "[1] extra",
            "{\"a\":1,}",
            "nan",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_excessive_depth() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn roundtrips_serializer_output() {
        use serde::Serialize;
        use std::collections::BTreeMap;

        #[derive(Serialize)]
        struct Doc {
            id: u64,
            ratio: f64,
            tags: Vec<String>,
            meta: BTreeMap<String, f64>,
        }
        let mut meta = BTreeMap::new();
        meta.insert("x".to_string(), 0.1 + 0.2);
        meta.insert("y".to_string(), 3.0);
        let doc = Doc {
            id: 9,
            ratio: 0.362,
            tags: vec!["a\"b".into(), "c\\d".into()],
            meta,
        };
        for text in [
            crate::to_string(&doc).unwrap(),
            crate::to_string_pretty(&doc).unwrap(),
        ] {
            let v = parse(&text).unwrap();
            assert_eq!(v.get("id").unwrap().as_u64(), Some(9));
            // f64 values survive exactly: the serializer prints shortest
            // round-trip representations.
            assert_eq!(v.get("ratio").unwrap().as_f64(), Some(0.362));
            assert_eq!(
                v.get("meta").unwrap().get("x").unwrap().as_f64(),
                Some(0.1 + 0.2)
            );
            assert_eq!(
                v.get("tags").unwrap().as_array().unwrap()[0].as_str(),
                Some("a\"b")
            );
        }
    }
}
