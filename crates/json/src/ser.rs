//! The serde `Serializer` implementation.

use serde::ser::{self, Serialize};
use std::fmt;

/// Serialization errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Returns an error for values JSON cannot represent (non-finite floats,
/// non-string map keys).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut serializer = Serializer {
        out: String::new(),
        indent: None,
        depth: 0,
    };
    value.serialize(&mut serializer)?;
    Ok(serializer.out)
}

/// Serializes `value` to JSON indented with two spaces per level.
///
/// # Errors
///
/// Same conditions as [`to_string`].
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut serializer = Serializer {
        out: String::new(),
        indent: Some("  "),
        depth: 0,
    };
    value.serialize(&mut serializer)?;
    Ok(serializer.out)
}

struct Serializer {
    out: String,
    indent: Option<&'static str>,
    depth: usize,
}

impl Serializer {
    fn newline(&mut self) {
        if let Some(unit) = self.indent {
            self.out.push('\n');
            for _ in 0..self.depth {
                self.out.push_str(unit);
            }
        }
    }

    fn push_string(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    fn push_f64(&mut self, v: f64) -> Result<(), Error> {
        if !v.is_finite() {
            return Err(Error(format!("non-finite float {v} is not valid JSON")));
        }
        if v == v.trunc() && v.abs() < 1e15 {
            // Keep a decimal point so the value round-trips as a float.
            self.out.push_str(&format!("{v:.1}"));
        } else {
            self.out.push_str(&format!("{v}"));
        }
        Ok(())
    }
}

/// Comma/indent bookkeeping shared by all compound states.
struct Compound<'a> {
    ser: &'a mut Serializer,
    first: bool,
}

impl<'a> Compound<'a> {
    fn element_gap(&mut self) {
        if !self.first {
            self.ser.out.push(',');
        }
        self.first = false;
        self.ser.newline();
    }

    fn close(self, bracket: char) {
        let had_elements = !self.first;
        self.ser.depth -= 1;
        if had_elements {
            self.ser.newline();
        }
        self.ser.out.push(bracket);
    }
}

impl<'a> ser::Serializer for &'a mut Serializer {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<(), Error> {
        self.serialize_i64(v as i64)
    }

    fn serialize_i16(self, v: i16) -> Result<(), Error> {
        self.serialize_i64(v as i64)
    }

    fn serialize_i32(self, v: i32) -> Result<(), Error> {
        self.serialize_i64(v as i64)
    }

    fn serialize_i64(self, v: i64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_u8(self, v: u8) -> Result<(), Error> {
        self.serialize_u64(v as u64)
    }

    fn serialize_u16(self, v: u16) -> Result<(), Error> {
        self.serialize_u64(v as u64)
    }

    fn serialize_u32(self, v: u32) -> Result<(), Error> {
        self.serialize_u64(v as u64)
    }

    fn serialize_u64(self, v: u64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<(), Error> {
        self.push_f64(v as f64)
    }

    fn serialize_f64(self, v: f64) -> Result<(), Error> {
        self.push_f64(v)
    }

    fn serialize_char(self, v: char) -> Result<(), Error> {
        self.push_string(&v.to_string());
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), Error> {
        self.push_string(v);
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), Error> {
        // Encode as an array of numbers (rare in this workspace).
        use serde::ser::SerializeSeq as _;
        let mut seq = self.serialize_seq(Some(v.len()))?;
        for b in v {
            seq.serialize_element(b)?;
        }
        seq.end()
    }

    fn serialize_none(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), Error> {
        self.serialize_unit()
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
    ) -> Result<(), Error> {
        self.push_string(variant);
        Ok(())
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.out.push('{');
        self.depth += 1;
        self.newline();
        self.push_string(variant);
        self.out.push(':');
        value.serialize(&mut *self)?;
        self.depth -= 1;
        self.newline();
        self.out.push('}');
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Compound<'a>, Error> {
        self.out.push('[');
        self.depth += 1;
        Ok(Compound {
            ser: self,
            first: true,
        })
    }

    fn serialize_tuple(self, len: usize) -> Result<Compound<'a>, Error> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<Compound<'a>, Error> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Compound<'a>, Error> {
        self.out.push('{');
        self.depth += 1;
        self.newline();
        self.push_string(variant);
        self.out.push(':');
        self.serialize_seq(Some(len))
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<Compound<'a>, Error> {
        self.out.push('{');
        self.depth += 1;
        Ok(Compound {
            ser: self,
            first: true,
        })
    }

    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<Compound<'a>, Error> {
        self.serialize_map(Some(len))
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Compound<'a>, Error> {
        self.out.push('{');
        self.depth += 1;
        self.newline();
        self.push_string(variant);
        self.out.push(':');
        self.serialize_map(Some(len))
    }
}

impl ser::SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.element_gap();
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), Error> {
        self.close(']');
        Ok(())
    }
}

impl ser::SerializeTuple for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        ser::SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<(), Error> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeTupleStruct for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        ser::SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<(), Error> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeTupleVariant for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        ser::SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<(), Error> {
        let had_elements = !self.first;
        self.ser.depth -= 1;
        if had_elements {
            self.ser.newline();
        }
        self.ser.out.push(']');
        // Close the wrapping variant object.
        self.ser.newline();
        self.ser.out.push('}');
        Ok(())
    }
}

impl ser::SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Error> {
        self.element_gap();
        // JSON keys must be strings; serialize the key and require that it
        // produced a string literal.
        let before = self.ser.out.len();
        key.serialize(&mut *self.ser)?;
        if !self.ser.out[before..].starts_with('"') {
            return Err(Error("JSON object keys must be strings".to_string()));
        }
        Ok(())
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.ser.out.push(':');
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), Error> {
        self.close('}');
        Ok(())
    }
}

impl ser::SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.element_gap();
        self.ser.push_string(key);
        self.ser.out.push(':');
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), Error> {
        self.close('}');
        Ok(())
    }
}

impl ser::SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        ser::SerializeStruct::serialize_field(self, key, value)
    }

    fn end(self) -> Result<(), Error> {
        let had_elements = !self.first;
        self.ser.depth -= 1;
        if had_elements {
            self.ser.newline();
        }
        self.ser.out.push('}');
        // Close the wrapping variant object.
        self.ser.newline();
        self.ser.out.push('}');
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;
    use std::collections::BTreeMap;

    #[derive(Serialize)]
    struct Nested {
        id: u32,
        values: Vec<f32>,
        tag: Option<String>,
    }

    #[derive(Serialize)]
    enum Kind {
        Unit,
        Newtype(u8),
        Tuple(u8, u8),
        Struct { a: bool },
    }

    #[test]
    fn scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&-42i32).unwrap(), "-42");
        assert_eq!(to_string(&7u64).unwrap(), "7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f32).unwrap(), "2.0");
        assert_eq!(to_string(&'x').unwrap(), "\"x\"");
        assert_eq!(to_string(&()).unwrap(), "null");
        assert_eq!(to_string(&Option::<u8>::None).unwrap(), "null");
        assert_eq!(to_string(&Some(3u8)).unwrap(), "3");
    }

    #[test]
    fn string_escaping() {
        let escaped = to_string(&"line\nquote\"back\\tab\tctl\u{1}").unwrap();
        assert_eq!(escaped, "\"line\\nquote\\\"back\\\\tab\\tctl\\u0001\"");
    }

    #[test]
    fn non_finite_floats_rejected() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f32::INFINITY).is_err());
    }

    #[test]
    fn structs_and_sequences() {
        let n = Nested {
            id: 9,
            values: vec![1.0, 2.5],
            tag: None,
        };
        assert_eq!(
            to_string(&n).unwrap(),
            r#"{"id":9,"values":[1.0,2.5],"tag":null}"#
        );
        assert_eq!(to_string(&Vec::<u8>::new()).unwrap(), "[]");
        assert_eq!(to_string(&(1u8, "a")).unwrap(), r#"[1,"a"]"#);
    }

    #[test]
    fn enums() {
        assert_eq!(to_string(&Kind::Unit).unwrap(), "\"Unit\"");
        assert_eq!(to_string(&Kind::Newtype(3)).unwrap(), r#"{"Newtype":3}"#);
        assert_eq!(to_string(&Kind::Tuple(1, 2)).unwrap(), r#"{"Tuple":[1,2]}"#);
        assert_eq!(
            to_string(&Kind::Struct { a: true }).unwrap(),
            r#"{"Struct":{"a":true}}"#
        );
    }

    #[test]
    fn maps_require_string_keys() {
        let mut good = BTreeMap::new();
        good.insert("k".to_string(), 1u8);
        assert_eq!(to_string(&good).unwrap(), r#"{"k":1}"#);
        let mut bad = BTreeMap::new();
        bad.insert(1u8, 2u8);
        assert!(to_string(&bad).is_err());
    }

    #[test]
    fn pretty_is_indented_and_compact_is_not() {
        let n = Nested {
            id: 1,
            values: vec![0.5],
            tag: Some("t".into()),
        };
        let compact = to_string(&n).unwrap();
        assert!(!compact.contains('\n'));
        let pretty = to_string_pretty(&n).unwrap();
        assert!(pretty.contains("\n  \"id\": 1") || pretty.contains("\n  \"id\":1"));
        assert!(pretty.ends_with('}'));
    }

    #[test]
    fn empty_containers_stay_tight_in_pretty_mode() {
        assert_eq!(to_string_pretty(&Vec::<u8>::new()).unwrap(), "[]");
        let empty: BTreeMap<String, u8> = BTreeMap::new();
        assert_eq!(to_string_pretty(&empty).unwrap(), "{}");
    }
}
