//! A minimal JSON *serializer* backend for serde.
//!
//! The workspace's run reports ([`rpol::pool::PoolReport`] and friends)
//! derive `serde::Serialize`; this crate turns them into JSON text so the
//! CLI and harnesses can export machine-readable results — without pulling
//! a JSON dependency beyond `serde` itself (the workspace's allowed set).
//!
//! A deliberately small parser ([`parse`]) rides along for tooling that must
//! re-read our own exports (the `rpol trace-check` command and the
//! trace-determinism tests); it is strict RFC 8259 and produces a dynamic
//! [`Value`] tree that preserves object key order.
//!
//! # Examples
//!
//! ```
//! use serde::Serialize;
//!
//! #[derive(Serialize)]
//! struct Point { x: f32, y: f32, label: String }
//!
//! let p = Point { x: 1.0, y: -2.5, label: "a\"b".into() };
//! assert_eq!(
//!     rpol_json::to_string(&p).unwrap(),
//!     r#"{"x":1.0,"y":-2.5,"label":"a\"b"}"#
//! );
//! ```
//!
//! [`rpol::pool::PoolReport`]: https://docs.rs/rpol

mod de;
mod ser;

pub use de::{parse, ParseError, Value};
pub use ser::{to_string, to_string_pretty, Error};
