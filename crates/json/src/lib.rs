//! A minimal JSON *serializer* backend for serde.
//!
//! The workspace's run reports ([`rpol::pool::PoolReport`] and friends)
//! derive `serde::Serialize`; this crate turns them into JSON text so the
//! CLI and harnesses can export machine-readable results — without pulling
//! a JSON dependency beyond `serde` itself (the workspace's allowed set).
//!
//! Serialization only: the workspace never needs to parse JSON.
//!
//! # Examples
//!
//! ```
//! use serde::Serialize;
//!
//! #[derive(Serialize)]
//! struct Point { x: f32, y: f32, label: String }
//!
//! let p = Point { x: 1.0, y: -2.5, label: "a\"b".into() };
//! assert_eq!(
//!     rpol_json::to_string(&p).unwrap(),
//!     r#"{"x":1.0,"y":-2.5,"label":"a\"b"}"#
//! );
//! ```
//!
//! [`rpol::pool::PoolReport`]: https://docs.rs/rpol

mod ser;

pub use ser::{to_string, to_string_pretty, Error};
